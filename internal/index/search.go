package index

import (
	"context"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/trace"
)

// Query is the low-level query tree evaluated directly against the index.
// The SIAPI layer compiles its richer surface syntax into this algebra.
type Query interface{ isQuery() }

// TermQuery matches documents containing Term in Field. Term must already be
// normalized with the index analyzer (or with KeywordTerm for keyword
// fields).
type TermQuery struct {
	Field string
	Term  string
}

// PhraseQuery matches documents where Terms occur at consecutive token
// positions within Field.
type PhraseQuery struct {
	Field string
	Terms []string
}

// BoolQuery combines sub-queries: all Must and at least one Should (when
// Should is non-empty) must match, and no MustNot may match. Scores sum over
// matching Must and Should clauses.
type BoolQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

// AllQuery matches every live document with a constant score of 1.
type AllQuery struct{}

func (TermQuery) isQuery()   {}
func (PhraseQuery) isQuery() {}
func (BoolQuery) isQuery()   {}
func (AllQuery) isQuery()    {}

// Hit is a scored search result.
type Hit struct {
	Doc   DocID
	Score float64
}

// BM25 constants — conventional values.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// phraseBoost multiplies the score of phrase matches; adjacency is stronger
// evidence of relevance than bag-of-words co-occurrence.
const phraseBoost = 1.2

// acc is a reusable per-query scoring accumulator: a dense score table plus
// the list of matched documents, replacing the map[DocID]float64 the
// evaluator used to allocate per query. ids may retain entries whose member
// flag has since been cleared by a removal; iterations check member. Members
// are only ever added while an accumulator is being filled (term/phrase/all/
// union), never after removals start, so ids holds no duplicates.
type acc struct {
	scores []float64
	member []bool
	ids    []DocID
	n      int // live member count
}

// grow sizes the dense tables for n documents. Pooled accumulators keep
// their backing arrays zeroed (reset clears every touched slot), so
// re-slicing within capacity exposes only zeroes.
func (a *acc) grow(n int) {
	if cap(a.scores) < n {
		a.scores = make([]float64, n)
		a.member = make([]bool, n)
		return
	}
	a.scores = a.scores[:n]
	a.member = a.member[:n]
}

// add inserts or score-accumulates one document.
func (a *acc) add(id DocID, s float64) {
	if a.member[id] {
		a.scores[id] += s
		return
	}
	a.member[id] = true
	a.scores[id] = s
	a.ids = append(a.ids, id)
	a.n++
}

// addMax inserts or keeps the maximum score (fuzzy/prefix disjunctions).
func (a *acc) addMax(id DocID, s float64) {
	if a.member[id] {
		if s > a.scores[id] {
			a.scores[id] = s
		}
		return
	}
	a.member[id] = true
	a.scores[id] = s
	a.ids = append(a.ids, id)
	a.n++
}

// remove clears one document's membership; its id stays in ids as a stale
// entry that later iterations skip.
func (a *acc) remove(id DocID) {
	if a.member[id] {
		a.member[id] = false
		a.scores[id] = 0
		a.n--
	}
}

// reset clears every touched slot so the accumulator can return to the pool
// with all-zero backing arrays.
func (a *acc) reset() {
	for _, id := range a.ids {
		a.scores[id] = 0
		a.member[id] = false
	}
	a.ids = a.ids[:0]
	a.n = 0
}

// getAcc leases an accumulator sized for the current document space.
// Callers must hold at least a read lock (len(ix.docs) must be stable).
func (ix *Index) getAcc() *acc {
	a, _ := ix.accPool.Get().(*acc)
	if a == nil {
		a = &acc{}
	}
	a.grow(len(ix.docs))
	return a
}

// putAcc resets and returns an accumulator to the pool.
func (ix *Index) putAcc(a *acc) {
	a.reset()
	ix.accPool.Put(a)
}

// Search evaluates q and returns hits sorted by descending score (ties broken
// by ascending DocID for determinism). limit <= 0 returns all hits; a
// positive limit selects the top-k through a bounded min-heap without
// materializing or sorting the full result set.
func (ix *Index) Search(q Query, limit int) []Hit {
	return ix.SearchCtx(context.Background(), q, limit)
}

// SearchCtx is Search recording a trace span when ctx carries one: the
// candidate count before top-k selection, the returned count, and whether
// the bounded heap truncated the result set. Untraced contexts cost one
// context lookup.
func (ix *Index) SearchCtx(ctx context.Context, q Query, limit int) []Hit {
	return ix.SearchStatsCtx(ctx, q, limit, nil)
}

// SearchStatsCtx is SearchCtx scoring against externally supplied global
// statistics instead of this index's own: document frequencies, corpus
// size, average field lengths, and fuzzy/prefix expansions come from st
// where collected, so a shard of a partitioned corpus produces exactly
// the scores the monolithic index would. st == nil scores locally.
func (ix *Index) SearchStatsCtx(ctx context.Context, q Query, limit int, st *Stats) []Hit {
	_, sp := trace.StartSpan(ctx, "index.search")
	// Fault-injection boundary (site "index.search"): the index cannot
	// surface errors, so injected faults here model a degraded — not dead —
	// backend: added latency/hang (bounded by the caller's deadline) and
	// partial harvest. A caller whose deadline already expired gets nothing,
	// matching a scan that was cut off.
	if err := fault.Delay(ctx, fault.SiteIndexSearch); err != nil {
		if sp != nil {
			sp.Set("error", err.Error())
			sp.End()
		}
		return nil
	}
	ix.mu.RLock()
	a := ix.evalAcc(q, st)
	ix.mu.RUnlock()
	hits := collectHits(a, limit)
	if keep := fault.Keep(ctx, fault.SiteIndexSearch, len(hits)); keep < len(hits) {
		hits = hits[:keep]
	}
	if sp != nil {
		sp.SetInt("candidates", a.n)
		sp.SetInt("returned", len(hits))
		sp.SetBool("heap_truncated", limit > 0 && a.n > limit)
		sp.End()
	}
	ix.putAcc(a)
	return hits
}

// Count evaluates q and returns only the number of matching documents.
// AllQuery short-circuits to the maintained live-document count.
func (ix *Index) Count(q Query) int {
	ix.mu.RLock()
	if _, ok := q.(AllQuery); ok {
		n := ix.liveDocs
		ix.mu.RUnlock()
		return n
	}
	a := ix.evalAcc(q, nil)
	ix.mu.RUnlock()
	n := a.n
	ix.putAcc(a)
	return n
}

// hitWorse reports whether a ranks strictly below b: lower score, or equal
// score and higher DocID. It is the strict total order behind both the final
// sort and the top-k heap, so bounded and unbounded search agree exactly.
func hitWorse(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// collectHits turns an accumulator into a ranked hit list.
func collectHits(a *acc, limit int) []Hit {
	if limit <= 0 || a.n <= limit {
		hits := make([]Hit, 0, a.n)
		for _, id := range a.ids {
			if a.member[id] {
				hits = append(hits, Hit{Doc: id, Score: a.scores[id]})
			}
		}
		sort.Slice(hits, func(i, j int) bool { return hitWorse(hits[j], hits[i]) })
		return hits
	}
	// Bounded selection: a min-heap of size limit ordered worst-at-root.
	h := make([]Hit, 0, limit)
	for _, id := range a.ids {
		if !a.member[id] {
			continue
		}
		cand := Hit{Doc: id, Score: a.scores[id]}
		if len(h) < limit {
			h = append(h, cand)
			siftUp(h, len(h)-1)
			continue
		}
		if hitWorse(h[0], cand) {
			h[0] = cand
			siftDown(h, 0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return hitWorse(h[j], h[i]) })
	return h
}

// siftUp restores the worst-at-root heap property after appending at i.
func siftUp(h []Hit, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !hitWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the heap property after replacing the root.
func siftDown(h []Hit, i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && hitWorse(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && hitWorse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// evalAcc computes the scored match set for q, scoring against st when
// non-nil. Callers must hold at least a read lock and must return the
// accumulator to the pool.
func (ix *Index) evalAcc(q Query, st *Stats) *acc {
	switch t := q.(type) {
	case TermQuery:
		return ix.evalTerm(t.Field, t.Term, st)
	case PhraseQuery:
		return ix.evalPhrase(t.Field, t.Terms, st)
	case BoolQuery:
		return ix.evalBool(t, st)
	case FuzzyQuery:
		return ix.evalFuzzy(t, st)
	case PrefixQuery:
		return ix.evalPrefix(t, st)
	case AllQuery:
		a := ix.getAcc()
		for id := range ix.docs {
			if !ix.deleted[id] {
				a.add(DocID(id), 1)
			}
		}
		return a
	default:
		return ix.getAcc()
	}
}

// bm25 computes the BM25 contribution of a term occurring tf times in a
// field of length fieldLen, given the field's average length and the term's
// document frequency df over n live documents.
func bm25(tf, df, n, fieldLen int, avgLen float64) float64 {
	if tf == 0 || df == 0 || n == 0 {
		return 0
	}
	idf := math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
	norm := float64(fieldLen)
	if avgLen > 0 {
		norm = float64(fieldLen) / avgLen
	}
	tfc := float64(tf) * (bm25K1 + 1) / (float64(tf) + bm25K1*(1-bm25B+bm25B*norm))
	return idf * tfc
}

func (ix *Index) fieldStats(field string) (avgLen float64, docs int) {
	docs = ix.fieldDocs[field]
	if docs > 0 {
		avgLen = float64(ix.fieldTotals[field]) / float64(docs)
	}
	return avgLen, docs
}

func (ix *Index) evalTerm(field, term string, st *Stats) *acc {
	a := ix.getAcc()
	pl := ix.postings[fieldTerm{field, term}]
	if pl == nil || pl.live == 0 {
		return a
	}
	avgLen, _ := ix.fieldStats(field)
	df := pl.live
	n := ix.liveDocs
	if st != nil {
		df = st.termDF(field, term, df)
		n = st.LiveDocs
		avgLen = st.fieldAvg(field)
	}
	fd := ix.fieldLens[field]
	for i := range pl.entries {
		p := &pl.entries[i]
		if ix.deleted[p.doc] {
			continue
		}
		fl, w := fd.at(p.doc)
		a.add(p.doc, w*bm25(len(p.positions), df, n, fl, avgLen))
	}
	return a
}

func (ix *Index) evalPhrase(field string, terms []string, st *Stats) *acc {
	switch len(terms) {
	case 0:
		return ix.getAcc()
	case 1:
		return ix.evalTerm(field, terms[0], st)
	}
	a := ix.evalPhraseCounts(field, terms)
	if a.n == 0 {
		return a
	}
	avgLen, _ := ix.fieldStats(field)
	n := ix.liveDocs
	df := a.n
	if st != nil {
		df = st.phraseDF(field, terms, df)
		n = st.LiveDocs
		avgLen = st.fieldAvg(field)
	}
	fd := ix.fieldLens[field]
	for _, id := range a.ids {
		tf := int(a.scores[id])
		fl, w := fd.at(id)
		a.scores[id] = phraseBoost * w * bm25(tf, df, n, fl, avgLen)
	}
	return a
}

// evalPhraseCounts runs the intersection pass of phrase evaluation: the
// returned accumulator holds each matching document's phrase occurrence
// count (not yet a score), and its n is the local phrase document
// frequency. Callers rescale counts into BM25 or just read n.
func (ix *Index) evalPhraseCounts(field string, terms []string) *acc {
	a := ix.getAcc()
	lists := make([]*postingList, len(terms))
	for i, term := range terms {
		lists[i] = ix.postings[fieldTerm{field, term}]
		if lists[i] == nil {
			return a
		}
	}
	// Document-at-a-time intersection driven by the first term's postings.
	// First pass stores each matching document's phrase occurrence count in
	// the accumulator; the second rescales counts into BM25 scores once the
	// phrase document frequency (a.n) is known.
	rest := make([][]uint32, len(terms)-1)
	for i := range lists[0].entries {
		p0 := &lists[0].entries[i]
		if ix.deleted[p0.doc] {
			continue
		}
		ok := true
		for i := 1; i < len(terms); i++ {
			p := findPosting(lists[i], p0.doc)
			if p == nil {
				ok = false
				break
			}
			rest[i-1] = p.positions
		}
		if !ok {
			continue
		}
		if count := countPhrase(p0.positions, rest); count > 0 {
			a.add(p0.doc, float64(count))
		}
	}
	return a
}

// findPosting binary-searches a posting list for a document.
func findPosting(pl *postingList, id DocID) *posting {
	e := pl.entries
	i := sort.Search(len(e), func(i int) bool { return e[i].doc >= id })
	if i < len(e) && e[i].doc == id {
		return &e[i]
	}
	return nil
}

// countPhrase counts starting positions p in first such that for every
// following term i, p+i+1 is present in rest[i]. Positions are ascending.
func countPhrase(first []uint32, rest [][]uint32) int {
	count := 0
	for _, p := range first {
		if p == keywordPos {
			continue
		}
		ok := true
		for i, positions := range rest {
			want := p + uint32(i) + 1
			if !containsPos(positions, want) {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

func containsPos(positions []uint32, want uint32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= want })
	return i < len(positions) && positions[i] == want
}

func (ix *Index) evalBool(q BoolQuery, st *Stats) *acc {
	var a *acc
	// Must clauses: intersection with score accumulation.
	for _, sub := range q.Must {
		m := ix.evalAcc(sub, st)
		if a == nil {
			a = m
			continue
		}
		for _, id := range a.ids {
			if !a.member[id] {
				continue
			}
			if m.member[id] {
				a.scores[id] += m.scores[id]
			} else {
				a.remove(id)
			}
		}
		ix.putAcc(m)
		if a.n == 0 {
			return a
		}
	}
	// Should clauses: union among themselves; if Must is present they only
	// contribute score plus act as a filter when there are no Must clauses.
	if len(q.Should) > 0 {
		union := ix.getAcc()
		for _, sub := range q.Should {
			m := ix.evalAcc(sub, st)
			for _, id := range m.ids {
				if m.member[id] {
					union.add(id, m.scores[id])
				}
			}
			ix.putAcc(m)
		}
		if a == nil {
			a = union
		} else {
			for _, id := range a.ids {
				if a.member[id] && union.member[id] {
					a.scores[id] += union.scores[id]
				}
			}
			ix.putAcc(union)
		}
	}
	if a == nil {
		// Only MustNot clauses: interpret as AllQuery minus exclusions.
		a = ix.evalAcc(AllQuery{}, st)
	}
	for _, sub := range q.MustNot {
		m := ix.evalAcc(sub, st)
		for _, id := range m.ids {
			if m.member[id] {
				a.remove(id)
			}
		}
		ix.putAcc(m)
	}
	return a
}
