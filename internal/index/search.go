package index

import (
	"math"
	"sort"
)

// Query is the low-level query tree evaluated directly against the index.
// The SIAPI layer compiles its richer surface syntax into this algebra.
type Query interface{ isQuery() }

// TermQuery matches documents containing Term in Field. Term must already be
// normalized with the index analyzer (or with KeywordTerm for keyword
// fields).
type TermQuery struct {
	Field string
	Term  string
}

// PhraseQuery matches documents where Terms occur at consecutive token
// positions within Field.
type PhraseQuery struct {
	Field string
	Terms []string
}

// BoolQuery combines sub-queries: all Must and at least one Should (when
// Should is non-empty) must match, and no MustNot may match. Scores sum over
// matching Must and Should clauses.
type BoolQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

// AllQuery matches every live document with a constant score of 1.
type AllQuery struct{}

func (TermQuery) isQuery()   {}
func (PhraseQuery) isQuery() {}
func (BoolQuery) isQuery()   {}
func (AllQuery) isQuery()    {}

// Hit is a scored search result.
type Hit struct {
	Doc   DocID
	Score float64
}

// BM25 constants — conventional values.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// phraseBoost multiplies the score of phrase matches; adjacency is stronger
// evidence of relevance than bag-of-words co-occurrence.
const phraseBoost = 1.2

// Search evaluates q and returns hits sorted by descending score (ties broken
// by ascending DocID for determinism). limit <= 0 returns all hits.
func (ix *Index) Search(q Query, limit int) []Hit {
	ix.mu.RLock()
	scores := ix.eval(q)
	ix.mu.RUnlock()

	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{Doc: id, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Count evaluates q and returns only the number of matching documents.
func (ix *Index) Count(q Query) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.eval(q))
}

// eval computes the score map for q. Callers must hold at least a read lock.
func (ix *Index) eval(q Query) map[DocID]float64 {
	switch t := q.(type) {
	case TermQuery:
		return ix.evalTerm(t.Field, t.Term)
	case PhraseQuery:
		return ix.evalPhrase(t.Field, t.Terms)
	case BoolQuery:
		return ix.evalBool(t)
	case FuzzyQuery:
		return ix.evalFuzzy(t)
	case PrefixQuery:
		return ix.evalPrefix(t)
	case AllQuery:
		out := make(map[DocID]float64, ix.liveDocs)
		for id := range ix.docs {
			if !ix.docs[id].deleted {
				out[DocID(id)] = 1
			}
		}
		return out
	default:
		return nil
	}
}

// bm25 computes the BM25 contribution of a term occurring tf times in a
// field of length fieldLen, given the field's average length and the term's
// document frequency df over n live documents.
func bm25(tf, df, n, fieldLen int, avgLen float64) float64 {
	if tf == 0 || df == 0 || n == 0 {
		return 0
	}
	idf := math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
	norm := float64(fieldLen)
	if avgLen > 0 {
		norm = float64(fieldLen) / avgLen
	}
	tfc := float64(tf) * (bm25K1 + 1) / (float64(tf) + bm25K1*(1-bm25B+bm25B*norm))
	return idf * tfc
}

func (ix *Index) fieldStats(field string) (avgLen float64, docs int) {
	docs = ix.fieldDocs[field]
	if docs > 0 {
		avgLen = float64(ix.fieldTotals[field]) / float64(docs)
	}
	return avgLen, docs
}

func (ix *Index) fieldLen(id DocID, field string) (length int, weight float64) {
	for _, f := range ix.docs[id].fields {
		if f.name == field {
			return f.length, f.weight
		}
	}
	return 0, 1
}

func (ix *Index) evalTerm(field, term string) map[DocID]float64 {
	pl := ix.postings[fieldTerm{field, term}]
	if pl == nil {
		return map[DocID]float64{}
	}
	avgLen, _ := ix.fieldStats(field)
	df := 0
	for _, p := range pl.entries {
		if !ix.docs[p.doc].deleted {
			df++
		}
	}
	out := make(map[DocID]float64, df)
	for _, p := range pl.entries {
		if ix.docs[p.doc].deleted {
			continue
		}
		fl, w := ix.fieldLen(p.doc, field)
		out[p.doc] = w * bm25(len(p.positions), df, ix.liveDocs, fl, avgLen)
	}
	return out
}

func (ix *Index) evalPhrase(field string, terms []string) map[DocID]float64 {
	switch len(terms) {
	case 0:
		return map[DocID]float64{}
	case 1:
		return ix.evalTerm(field, terms[0])
	}
	lists := make([]*postingList, len(terms))
	for i, term := range terms {
		lists[i] = ix.postings[fieldTerm{field, term}]
		if lists[i] == nil {
			return map[DocID]float64{}
		}
	}
	// Document-at-a-time intersection driven by the first term's postings.
	avgLen, _ := ix.fieldStats(field)
	matches := make(map[DocID]int) // doc -> phrase occurrence count
	for _, p0 := range lists[0].entries {
		if ix.docs[p0.doc].deleted {
			continue
		}
		rest := make([][]uint32, len(terms)-1)
		ok := true
		for i := 1; i < len(terms); i++ {
			p := findPosting(lists[i], p0.doc)
			if p == nil {
				ok = false
				break
			}
			rest[i-1] = p.positions
		}
		if !ok {
			continue
		}
		count := countPhrase(p0.positions, rest)
		if count > 0 {
			matches[p0.doc] = count
		}
	}
	if len(matches) == 0 {
		return map[DocID]float64{}
	}
	df := len(matches)
	out := make(map[DocID]float64, df)
	for id, tf := range matches {
		fl, w := ix.fieldLen(id, field)
		out[id] = phraseBoost * w * bm25(tf, df, ix.liveDocs, fl, avgLen)
	}
	return out
}

// findPosting binary-searches a posting list for a document.
func findPosting(pl *postingList, id DocID) *posting {
	e := pl.entries
	i := sort.Search(len(e), func(i int) bool { return e[i].doc >= id })
	if i < len(e) && e[i].doc == id {
		return &e[i]
	}
	return nil
}

// countPhrase counts starting positions p in first such that for every
// following term i, p+i+1 is present in rest[i]. Positions are ascending.
func countPhrase(first []uint32, rest [][]uint32) int {
	count := 0
	for _, p := range first {
		if p == keywordPos {
			continue
		}
		ok := true
		for i, positions := range rest {
			want := p + uint32(i) + 1
			if !containsPos(positions, want) {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

func containsPos(positions []uint32, want uint32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= want })
	return i < len(positions) && positions[i] == want
}

func (ix *Index) evalBool(q BoolQuery) map[DocID]float64 {
	var acc map[DocID]float64
	// Must clauses: intersection with score accumulation.
	for _, sub := range q.Must {
		m := ix.eval(sub)
		if acc == nil {
			acc = m
			continue
		}
		for id := range acc {
			if s, ok := m[id]; ok {
				acc[id] += s
			} else {
				delete(acc, id)
			}
		}
		if len(acc) == 0 {
			return acc
		}
	}
	// Should clauses: union among themselves; if Must is present they only
	// contribute score plus act as a filter when there are no Must clauses.
	if len(q.Should) > 0 {
		union := make(map[DocID]float64)
		for _, sub := range q.Should {
			for id, s := range ix.eval(sub) {
				union[id] += s
			}
		}
		if acc == nil {
			acc = union
		} else {
			for id := range acc {
				if s, ok := union[id]; ok {
					acc[id] += s
				}
			}
		}
	}
	if acc == nil {
		// Only MustNot clauses: interpret as AllQuery minus exclusions.
		acc = ix.eval(AllQuery{})
	}
	for _, sub := range q.MustNot {
		for id := range ix.eval(sub) {
			delete(acc, id)
		}
	}
	return acc
}
