package index

// Reference-model property test: the inverted index must agree, query for
// query, with a brute-force matcher over the same documents. This is the
// strongest correctness evidence the package has — any disagreement in
// matching or ranking-set semantics fails here.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/textproc"
)

// refModel stores documents as token slices and evaluates queries naively.
type refModel struct {
	docs map[string][]string // extID -> body terms (in order)
}

func (m *refModel) matchTerm(terms []string, want string) bool {
	for _, t := range terms {
		if t == want {
			return true
		}
	}
	return false
}

func (m *refModel) matchPhrase(terms []string, phrase []string) bool {
	if len(phrase) == 0 {
		return false
	}
outer:
	for i := 0; i+len(phrase) <= len(terms); i++ {
		for j, p := range phrase {
			if terms[i+j] != p {
				continue outer
			}
		}
		return true
	}
	return false
}

// eval returns the set of matching extIDs for the restricted query algebra
// used in this test (terms, phrases, bool combinations over field "body").
func (m *refModel) eval(q Query) map[string]bool {
	out := map[string]bool{}
	switch t := q.(type) {
	case TermQuery:
		for id, terms := range m.docs {
			if m.matchTerm(terms, t.Term) {
				out[id] = true
			}
		}
	case PhraseQuery:
		for id, terms := range m.docs {
			if m.matchPhrase(terms, t.Terms) {
				out[id] = true
			}
		}
	case AllQuery:
		for id := range m.docs {
			out[id] = true
		}
	case BoolQuery:
		var acc map[string]bool
		for _, sub := range t.Must {
			s := m.eval(sub)
			if acc == nil {
				acc = s
				continue
			}
			for id := range acc {
				if !s[id] {
					delete(acc, id)
				}
			}
		}
		if len(t.Should) > 0 {
			union := map[string]bool{}
			for _, sub := range t.Should {
				for id := range m.eval(sub) {
					union[id] = true
				}
			}
			if acc == nil {
				acc = union
			}
			// With Must present, Should only boosts scores: no filtering.
		}
		if acc == nil {
			acc = m.eval(AllQuery{})
		}
		for _, sub := range t.MustNot {
			for id := range m.eval(sub) {
				delete(acc, id)
			}
		}
		out = acc
	}
	return out
}

func TestIndexAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Analyzer without stemming/stopwords keeps the model trivially exact:
	// the model stores the same normalized terms the index sees.
	analyzer := textproc.Analyzer{}
	ix := New(analyzer)
	model := &refModel{docs: map[string][]string{}}
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"}

	for i := 0; i < 150; i++ {
		n := 3 + rng.Intn(25)
		words := make([]string, n)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		id := fmt.Sprintf("doc%03d", i)
		body := strings.Join(words, " ")
		if _, err := ix.Add(Document{ExtID: id, Fields: []Field{{Name: "body", Text: body}}}); err != nil {
			t.Fatal(err)
		}
		model.docs[id] = words
	}
	// Tombstone a random subset in both.
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("doc%03d", rng.Intn(150))
		if _, ok := model.docs[id]; !ok {
			continue
		}
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(model.docs, id)
	}

	randTerm := func() string { return vocab[rng.Intn(len(vocab))] }
	randQuery := func() Query {
		switch rng.Intn(5) {
		case 0:
			return TermQuery{Field: "body", Term: randTerm()}
		case 1:
			n := 2 + rng.Intn(2)
			terms := make([]string, n)
			for i := range terms {
				terms[i] = randTerm()
			}
			return PhraseQuery{Field: "body", Terms: terms}
		case 2:
			return BoolQuery{
				Must: []Query{
					TermQuery{Field: "body", Term: randTerm()},
					TermQuery{Field: "body", Term: randTerm()},
				},
			}
		case 3:
			return BoolQuery{
				Should: []Query{
					TermQuery{Field: "body", Term: randTerm()},
					PhraseQuery{Field: "body", Terms: []string{randTerm(), randTerm()}},
				},
				MustNot: []Query{TermQuery{Field: "body", Term: randTerm()}},
			}
		default:
			return BoolQuery{
				Must:    []Query{TermQuery{Field: "body", Term: randTerm()}},
				Should:  []Query{TermQuery{Field: "body", Term: randTerm()}},
				MustNot: []Query{PhraseQuery{Field: "body", Terms: []string{randTerm(), randTerm(), randTerm()}}},
			}
		}
	}

	for trial := 0; trial < 500; trial++ {
		q := randQuery()
		want := model.eval(q)
		got := map[string]bool{}
		for _, h := range ix.Search(q, 0) {
			id, err := ix.ExtID(h.Doc)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got[id] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d query %+v: %d hits vs model %d", trial, q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d query %+v: model matched %s, index did not", trial, q, id)
			}
		}
	}
}
