package index

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/textproc"
)

// TestConcurrentAddSearch exercises the index under simultaneous writers
// and readers; run with -race to verify the locking discipline.
func TestConcurrentAddSearch(t *testing.T) {
	ix := New(textproc.DefaultAnalyzer)
	const writers, readers, docsPer = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPer; i++ {
				_, err := ix.Add(Document{
					ExtID: fmt.Sprintf("w%d-d%d", w, i),
					Fields: []Field{
						{Name: "body", Text: "storage replication network recovery services"},
						{Name: "deal", Text: fmt.Sprintf("DEAL %d", w), Keyword: true},
					},
					Meta: map[string]string{"deal": fmt.Sprintf("DEAL %d", w)},
				})
				if err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(w)
	}
	q := TermQuery{Field: "body", Term: textproc.DefaultAnalyzer.NormalizeTerm("replication")}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				hits := ix.Search(q, 10)
				for _, h := range hits {
					if h.Score <= 0 {
						t.Error("non-positive score under concurrency")
						return
					}
				}
				ix.Count(q)
				ix.DocCount()
			}
		}()
	}
	wg.Wait()
	if got := ix.DocCount(); got != writers*docsPer {
		t.Fatalf("DocCount = %d, want %d", got, writers*docsPer)
	}
	if n := ix.Count(q); n != writers*docsPer {
		t.Fatalf("final count = %d", n)
	}
}

// TestConcurrentDeleteSearch mixes tombstoning with searching.
func TestConcurrentDeleteSearch(t *testing.T) {
	ix := New(textproc.DefaultAnalyzer)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := ix.Add(Document{
			ExtID:  fmt.Sprintf("d%d", i),
			Fields: []Field{{Name: "body", Text: "shared term content"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 2 {
			if err := ix.Delete(fmt.Sprintf("d%d", i)); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	q := TermQuery{Field: "body", Term: "share"} // stemmed "shared"
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			hits := ix.Search(q, 0)
			if len(hits) > n {
				t.Errorf("impossible hit count %d", len(hits))
				return
			}
		}
	}()
	wg.Wait()
	if got := ix.DocCount(); got != n/2 {
		t.Fatalf("DocCount = %d, want %d", got, n/2)
	}
}

// TestConcurrentAddBatchSearch exercises the parallel segment path under
// concurrent readers, deleters, and competing batch writers; run with -race
// to verify that tokenization really is lock-free and the merge is not.
func TestConcurrentAddBatchSearch(t *testing.T) {
	ix := New(textproc.DefaultAnalyzer)
	const batches, perBatch = 8, 50
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			docs := make([]Document, perBatch)
			for i := range docs {
				docs[i] = Document{
					ExtID: fmt.Sprintf("b%d-d%d", b, i),
					Fields: []Field{
						{Name: "body", Text: "shared storage migration plan"},
						{Name: "tower", Text: "Storage", Keyword: true},
					},
				}
			}
			if _, err := ix.AddBatch(docs, 3); err != nil {
				t.Errorf("batch %d: %v", b, err)
			}
		}(b)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		q := BoolQuery{
			Must:    []Query{TermQuery{Field: "body", Term: "storag"}},
			MustNot: []Query{TermQuery{Field: "body", Term: "absent"}},
		}
		for i := 0; i < 300; i++ {
			hits := ix.Search(q, 10)
			if len(hits) > 10 {
				t.Errorf("limit overrun: %d", len(hits))
				return
			}
			_ = ix.Count(AllQuery{})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < perBatch; i++ {
			// Deletes race the batches; miss errors are expected.
			_ = ix.Delete(fmt.Sprintf("b0-d%d", i))
		}
	}()
	wg.Wait()
	total := batches * perBatch
	if got := ix.DocCount(); got > total || got < total-perBatch {
		t.Fatalf("DocCount = %d, want within [%d, %d]", got, total-perBatch, total)
	}
}
