package index

import (
	"strings"
)

// Snippet extracts a highlight window from a stored field of a document. It
// scans the field text with the index analyzer, scores fixed-size token
// windows by the number of distinct query terms they contain, and returns
// the best window's surface text with matched surfaces wrapped in
// "<em>...</em>". terms must be analyzer-normalized. maxTokens bounds the
// window size (<= 0 means 30).
func (ix *Index) Snippet(id DocID, field string, terms []string, maxTokens int) string {
	if maxTokens <= 0 {
		maxTokens = 30
	}
	text := ix.FieldText(id, field)
	if text == "" {
		return ""
	}
	want := make(map[string]bool, len(terms))
	for _, t := range terms {
		if t != "" {
			want[t] = true
		}
	}
	toks := ix.analyzer.Tokenize(text)
	if len(toks) == 0 {
		return ""
	}
	if len(want) == 0 {
		// No terms to highlight: lead of the field.
		end := len(toks)
		if end > maxTokens {
			end = maxTokens
		}
		return strings.TrimSpace(text[toks[0].Start:toks[end-1].End])
	}

	// Find the window [i, i+maxTokens) with the most distinct query terms,
	// preferring earlier windows on ties.
	bestStart, bestScore := 0, -1
	for i := 0; i < len(toks); i += maxTokens / 2 {
		end := i + maxTokens
		if end > len(toks) {
			end = len(toks)
		}
		distinct := map[string]bool{}
		for _, tok := range toks[i:end] {
			if want[tok.Term] {
				distinct[tok.Term] = true
			}
		}
		if len(distinct) > bestScore {
			bestScore = len(distinct)
			bestStart = i
		}
		if end == len(toks) {
			break
		}
	}
	end := bestStart + maxTokens
	if end > len(toks) {
		end = len(toks)
	}
	window := toks[bestStart:end]

	var b strings.Builder
	if bestStart > 0 {
		b.WriteString("... ")
	}
	cursor := window[0].Start
	for _, tok := range window {
		b.WriteString(text[cursor:tok.Start])
		if want[tok.Term] {
			b.WriteString("<em>")
			b.WriteString(tok.Surface)
			b.WriteString("</em>")
		} else {
			b.WriteString(tok.Surface)
		}
		cursor = tok.End
	}
	if end < len(toks) {
		b.WriteString(" ...")
	}
	return textCompact(b.String())
}

// textCompact trims the snippet and collapses newlines into spaces so the
// result renders on one line.
func textCompact(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\r", " ")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	return strings.TrimSpace(s)
}
