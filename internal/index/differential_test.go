package index

// Differential ranking tests: the optimized accumulator/top-k search path
// must return byte-identical results — same hits, same float64 scores, same
// tie-break order — as the original map-then-full-sort implementation. The
// original algorithm is reimplemented here, verbatim in structure, reading
// the same index internals, and both are run over randomized corpora with
// deletions, keyword fields, phrases, fuzzy and prefix expansion, and every
// limit regime (unbounded, top-k smaller and larger than the result set).

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/textproc"
)

// --- seed implementation, preserved for comparison ---

func seedFieldLen(ix *Index, id DocID, field string) (length int, weight float64) {
	for _, f := range ix.docs[id].fields {
		if f.name == field {
			return f.length, f.weight
		}
	}
	return 0, 1
}

func seedEvalTerm(ix *Index, field, term string) map[DocID]float64 {
	pl := ix.postings[fieldTerm{field, term}]
	if pl == nil {
		return map[DocID]float64{}
	}
	avgLen, _ := ix.fieldStats(field)
	df := 0
	for _, p := range pl.entries {
		if !ix.deleted[p.doc] {
			df++
		}
	}
	out := make(map[DocID]float64, df)
	for _, p := range pl.entries {
		if ix.deleted[p.doc] {
			continue
		}
		fl, w := seedFieldLen(ix, p.doc, field)
		out[p.doc] = w * bm25(len(p.positions), df, ix.liveDocs, fl, avgLen)
	}
	return out
}

func seedEvalPhrase(ix *Index, field string, terms []string) map[DocID]float64 {
	switch len(terms) {
	case 0:
		return map[DocID]float64{}
	case 1:
		return seedEvalTerm(ix, field, terms[0])
	}
	lists := make([]*postingList, len(terms))
	for i, term := range terms {
		lists[i] = ix.postings[fieldTerm{field, term}]
		if lists[i] == nil {
			return map[DocID]float64{}
		}
	}
	avgLen, _ := ix.fieldStats(field)
	matches := make(map[DocID]int)
	for _, p0 := range lists[0].entries {
		if ix.deleted[p0.doc] {
			continue
		}
		rest := make([][]uint32, len(terms)-1)
		ok := true
		for i := 1; i < len(terms); i++ {
			p := findPosting(lists[i], p0.doc)
			if p == nil {
				ok = false
				break
			}
			rest[i-1] = p.positions
		}
		if !ok {
			continue
		}
		if count := countPhrase(p0.positions, rest); count > 0 {
			matches[p0.doc] = count
		}
	}
	if len(matches) == 0 {
		return map[DocID]float64{}
	}
	df := len(matches)
	out := make(map[DocID]float64, df)
	for id, tf := range matches {
		fl, w := seedFieldLen(ix, id, field)
		out[id] = phraseBoost * w * bm25(tf, df, ix.liveDocs, fl, avgLen)
	}
	return out
}

func seedEvalFuzzy(ix *Index, q FuzzyQuery) map[DocID]float64 {
	maxDist := q.MaxDist
	if maxDist <= 0 {
		maxDist = 1
	}
	type cand struct {
		term string
		dist int
	}
	var cands []cand
	for key := range ix.postings {
		if key.field != q.Field {
			continue
		}
		if len(key.term) > 0 && key.term[0] == '\x00' {
			continue
		}
		d, ok := editDistanceAtMost(q.Term, key.term, maxDist)
		if !ok {
			continue
		}
		cands = append(cands, cand{term: key.term, dist: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].term < cands[j].term
	})
	if len(cands) > maxFuzzyExpansions {
		cands = cands[:maxFuzzyExpansions]
	}
	out := map[DocID]float64{}
	for _, c := range cands {
		scale := 1.0
		switch c.dist {
		case 1:
			scale = 0.6
		case 2:
			scale = 0.35
		}
		for id, s := range seedEvalTerm(ix, q.Field, c.term) {
			if v := s * scale; v > out[id] {
				out[id] = v
			}
		}
	}
	return out
}

func seedEvalPrefix(ix *Index, q PrefixQuery) map[DocID]float64 {
	if q.Prefix == "" {
		return map[DocID]float64{}
	}
	var terms []string
	for key := range ix.postings {
		if key.field != q.Field {
			continue
		}
		if len(key.term) > 0 && key.term[0] == '\x00' {
			continue
		}
		if len(key.term) >= len(q.Prefix) && key.term[:len(q.Prefix)] == q.Prefix {
			terms = append(terms, key.term)
		}
	}
	sort.Slice(terms, func(i, j int) bool {
		if len(terms[i]) != len(terms[j]) {
			return len(terms[i]) < len(terms[j])
		}
		return terms[i] < terms[j]
	})
	if len(terms) > maxPrefixExpansions {
		terms = terms[:maxPrefixExpansions]
	}
	out := map[DocID]float64{}
	for _, term := range terms {
		for id, s := range seedEvalTerm(ix, q.Field, term) {
			if s > out[id] {
				out[id] = s
			}
		}
	}
	return out
}

func seedEval(ix *Index, q Query) map[DocID]float64 {
	switch t := q.(type) {
	case TermQuery:
		return seedEvalTerm(ix, t.Field, t.Term)
	case PhraseQuery:
		return seedEvalPhrase(ix, t.Field, t.Terms)
	case BoolQuery:
		return seedEvalBool(ix, t)
	case FuzzyQuery:
		return seedEvalFuzzy(ix, t)
	case PrefixQuery:
		return seedEvalPrefix(ix, t)
	case AllQuery:
		out := make(map[DocID]float64, ix.liveDocs)
		for id := range ix.docs {
			if !ix.deleted[id] {
				out[DocID(id)] = 1
			}
		}
		return out
	default:
		return nil
	}
}

func seedEvalBool(ix *Index, q BoolQuery) map[DocID]float64 {
	var acc map[DocID]float64
	for _, sub := range q.Must {
		m := seedEval(ix, sub)
		if acc == nil {
			acc = m
			continue
		}
		for id := range acc {
			if s, ok := m[id]; ok {
				acc[id] += s
			} else {
				delete(acc, id)
			}
		}
		if len(acc) == 0 {
			return acc
		}
	}
	if len(q.Should) > 0 {
		union := make(map[DocID]float64)
		for _, sub := range q.Should {
			for id, s := range seedEval(ix, sub) {
				union[id] += s
			}
		}
		if acc == nil {
			acc = union
		} else {
			for id := range acc {
				if s, ok := union[id]; ok {
					acc[id] += s
				}
			}
		}
	}
	if acc == nil {
		acc = seedEval(ix, AllQuery{})
	}
	for _, sub := range q.MustNot {
		for id := range seedEval(ix, sub) {
			delete(acc, id)
		}
	}
	return acc
}

func seedSearch(ix *Index, q Query, limit int) []Hit {
	ix.mu.RLock()
	scores := seedEval(ix, q)
	ix.mu.RUnlock()
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{Doc: id, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// --- randomized corpus generation ---

var diffVocab = []string{
	"storage", "network", "desktop", "server", "helpdesk", "migration",
	"contract", "tower", "pricing", "client", "strategy", "telecom",
	"finance", "banking", "outsourcing", "transition", "datacenter",
	"mainframe", "backup", "security", "alpha", "beta", "gamma", "delta",
}

func randText(rng *rand.Rand, n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = diffVocab[rng.Intn(len(diffVocab))]
	}
	return joinWords(words)
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

func buildRandomIndex(t *testing.T, rng *rand.Rand, docs, deletions int) *Index {
	t.Helper()
	ix := New(textproc.DefaultAnalyzer)
	towers := []string{"End User Services", "Réseau Globale", "Storage", "Help Desk"}
	for i := 0; i < docs; i++ {
		doc := Document{
			ExtID: fmt.Sprintf("doc-%d", i),
			Fields: []Field{
				{Name: "title", Text: randText(rng, 2+rng.Intn(4)), Weight: 2},
				{Name: "body", Text: randText(rng, 5+rng.Intn(40))},
			},
			Meta: map[string]string{"deal": fmt.Sprintf("deal-%d", i%7)},
		}
		if rng.Intn(2) == 0 {
			doc.Fields = append(doc.Fields, Field{Name: "tower", Text: towers[rng.Intn(len(towers))], Keyword: true})
		}
		if _, err := ix.Add(doc); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	for i := 0; i < deletions; i++ {
		ext := fmt.Sprintf("doc-%d", rng.Intn(docs))
		// Ignore double-deletes; the point is a random tombstone pattern.
		_ = ix.Delete(ext)
	}
	return ix
}

func randomQuery(rng *rand.Rand, depth int) Query {
	word := func() string { return diffVocab[rng.Intn(len(diffVocab))] }
	switch rng.Intn(8) {
	case 0:
		return TermQuery{Field: "body", Term: word()}
	case 1:
		return TermQuery{Field: "title", Term: word()}
	case 2:
		return PhraseQuery{Field: "body", Terms: []string{word(), word()}}
	case 3:
		return FuzzyQuery{Field: "body", Term: word(), MaxDist: 1 + rng.Intn(2)}
	case 4:
		return PrefixQuery{Field: "body", Prefix: word()[:2]}
	case 5:
		return TermQuery{Field: "tower", Term: KeywordTerm("storage")}
	case 6:
		return AllQuery{}
	default:
		if depth >= 2 {
			return TermQuery{Field: "body", Term: word()}
		}
		var b BoolQuery
		for i := rng.Intn(3); i > 0; i-- {
			b.Must = append(b.Must, randomQuery(rng, depth+1))
		}
		for i := rng.Intn(3); i > 0; i-- {
			b.Should = append(b.Should, randomQuery(rng, depth+1))
		}
		for i := rng.Intn(2); i > 0; i-- {
			b.MustNot = append(b.MustNot, randomQuery(rng, depth+1))
		}
		return b
	}
}

// TestDifferentialRanking is the equivalence proof: across randomized
// corpora (with deletions and keyword fields) and query shapes, the
// optimized path returns exactly the seed implementation's hits.
func TestDifferentialRanking(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		docs := 30 + rng.Intn(120)
		ix := buildRandomIndex(t, rng, docs, rng.Intn(docs/2))
		for qi := 0; qi < 60; qi++ {
			q := randomQuery(rng, 0)
			for _, limit := range []int{0, 1, 3, 10, docs * 2} {
				want := seedSearch(ix, q, limit)
				got := ix.Search(q, limit)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d query=%#v limit=%d:\nwant %v\ngot  %v", seed, q, limit, want, got)
				}
			}
			ix.mu.RLock()
			wantN := len(seedEval(ix, q))
			ix.mu.RUnlock()
			if gotN := ix.Count(q); gotN != wantN {
				t.Fatalf("seed=%d query=%#v: count want %d got %d", seed, q, wantN, gotN)
			}
		}
	}
}

// TestDifferentialAfterBatch checks equivalence on an index built through
// the parallel batch path rather than serial Adds.
func TestDifferentialAfterBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := make([]Document, 200)
	for i := range docs {
		docs[i] = Document{
			ExtID: fmt.Sprintf("doc-%d", i),
			Fields: []Field{
				{Name: "title", Text: randText(rng, 3), Weight: 2},
				{Name: "body", Text: randText(rng, 10+rng.Intn(30))},
			},
		}
	}
	ix := New(textproc.DefaultAnalyzer)
	if _, err := ix.AddBatch(docs, 4); err != nil {
		t.Fatalf("add batch: %v", err)
	}
	for i := 0; i < 40; i++ {
		_ = ix.Delete(fmt.Sprintf("doc-%d", rng.Intn(len(docs))))
	}
	for qi := 0; qi < 80; qi++ {
		q := randomQuery(rng, 0)
		for _, limit := range []int{0, 5, 25} {
			want := seedSearch(ix, q, limit)
			got := ix.Search(q, limit)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query=%#v limit=%d:\nwant %v\ngot  %v", q, limit, want, got)
			}
		}
	}
}

// TestBatchMatchesSerial proves AddBatch assigns the same DocIDs and
// produces the same search behavior as a serial Add loop.
func TestBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := make([]Document, 97) // odd count: uneven final chunk
	for i := range docs {
		docs[i] = Document{
			ExtID: fmt.Sprintf("doc-%d", i),
			Fields: []Field{
				{Name: "title", Text: randText(rng, 3), Weight: 2},
				{Name: "body", Text: randText(rng, 20)},
				{Name: "tower", Text: "Storage Services", Keyword: true},
			},
		}
	}
	serial := New(textproc.DefaultAnalyzer)
	var serialIDs []DocID
	for _, d := range docs {
		id, err := serial.Add(d)
		if err != nil {
			t.Fatalf("serial add: %v", err)
		}
		serialIDs = append(serialIDs, id)
	}
	for _, workers := range []int{1, 2, 3, 8, 97, 200} {
		batch := New(textproc.DefaultAnalyzer)
		ids, err := batch.AddBatch(docs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ids, serialIDs) {
			t.Fatalf("workers=%d: ids diverge: %v vs %v", workers, ids, serialIDs)
		}
		for qi := 0; qi < 30; qi++ {
			q := randomQuery(rng, 0)
			want := serial.Search(q, 0)
			got := batch.Search(q, 0)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d query=%#v:\nwant %v\ngot  %v", workers, q, want, got)
			}
		}
		if batch.DocCount() != serial.DocCount() || batch.TermCount() != serial.TermCount() {
			t.Fatalf("workers=%d: stats diverge", workers)
		}
	}
}

// TestAddBatchDuplicateAtomic: a duplicate anywhere in the batch rejects the
// whole batch without partial application.
func TestAddBatchDuplicateAtomic(t *testing.T) {
	ix := New(textproc.DefaultAnalyzer)
	if _, err := ix.Add(Document{ExtID: "existing", Fields: []Field{{Name: "body", Text: "storage"}}}); err != nil {
		t.Fatal(err)
	}
	docs := []Document{
		{ExtID: "fresh-1", Fields: []Field{{Name: "body", Text: "network"}}},
		{ExtID: "existing", Fields: []Field{{Name: "body", Text: "desktop"}}},
	}
	if _, err := ix.AddBatch(docs, 2); err == nil {
		t.Fatal("expected duplicate error")
	}
	if ix.DocCount() != 1 {
		t.Fatalf("batch partially applied: %d docs", ix.DocCount())
	}
	if _, ok := ix.Lookup("fresh-1"); ok {
		t.Fatal("fresh-1 leaked into index from failed batch")
	}
	// In-batch duplicates are also rejected.
	dup := []Document{
		{ExtID: "x", Fields: []Field{{Name: "body", Text: "alpha"}}},
		{ExtID: "x", Fields: []Field{{Name: "body", Text: "beta"}}},
	}
	if _, err := ix.AddBatch(dup, 1); err == nil {
		t.Fatal("expected in-batch duplicate error")
	}
}

// TestKeywordTermNonASCII: keyword values with non-ASCII letters must
// lowercase through Unicode, so accented client names match exactly
// regardless of case.
func TestKeywordTermNonASCII(t *testing.T) {
	if got, want := KeywordTerm("MÜLLER Ag"), KeywordTerm("müller ag"); got != want {
		t.Fatalf("non-ASCII keyword terms diverge: %q vs %q", got, want)
	}
	ix := New(textproc.DefaultAnalyzer)
	if _, err := ix.Add(Document{
		ExtID:  "d1",
		Fields: []Field{{Name: "client", Text: "MÜLLER Aktiengesellschaft", Keyword: true}},
	}); err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(TermQuery{Field: "client", Term: KeywordTerm("müller aktiengesellschaft")}, 0)
	if len(hits) != 1 {
		t.Fatalf("case-folded non-ASCII keyword query missed: %v", hits)
	}
}

// TestSearchAfterSnapshotRoundTrip: derived statistics (live doc frequency,
// dense field lengths, tombstone bitmap) must be rebuilt on Load so a
// restored index ranks identically.
func TestSearchAfterSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := buildRandomIndex(t, rng, 60, 15)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 50; qi++ {
		q := randomQuery(rng, 0)
		want := ix.Search(q, 0)
		got := loaded.Search(q, 0)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query=%#v:\nwant %v\ngot  %v", q, want, got)
		}
	}
}
