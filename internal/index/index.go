// Package index implements the EIL full-text engine: an in-memory inverted
// index with positional postings, per-field statistics, BM25 relevance
// scoring, phrase matching, and snippet extraction. It is the substitute for
// the OmniFind enterprise search platform the paper builds on; the SIAPI
// query layer (package siapi) compiles its query AST down to the primitives
// exposed here.
//
// The index is safe for concurrent use: writes take an exclusive lock,
// searches take a shared lock.
package index

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/textproc"
)

// DocID identifies a document inside one Index. IDs are dense and assigned
// in insertion order; deleted documents leave a tombstone.
type DocID uint32

// Field is one named region of a document. Body text, titles, and extracted
// concept values are all fields; queries may target any subset.
type Field struct {
	Name string
	Text string
	// Keyword marks the field as an exact-value concept field: the whole
	// (whitespace-folded, lowercased) value is indexed as a single term, in
	// addition to its individual tokens. EIL uses keyword fields for
	// annotation-derived concepts such as towers and roles.
	Keyword bool
	// Weight scales this field's BM25 contribution. Zero means 1.0.
	Weight float64
}

// Document is the unit of indexing. ExtID is the caller's stable identifier
// (for EIL, the repository path); Meta carries stored metadata returned with
// hits, most importantly the business-activity ID.
type Document struct {
	ExtID  string
	Fields []Field
	Meta   map[string]string
}

// ErrNotFound is returned when a document lookup misses.
var ErrNotFound = errors.New("index: document not found")

// ErrDuplicate is returned when adding a document whose ExtID is already
// present and live.
var ErrDuplicate = errors.New("index: duplicate external id")

// posting records one document's occurrences of a term within one field.
type posting struct {
	doc       DocID
	positions []uint32 // token positions, ascending
}

// postingList is the per-(field,term) list, kept in ascending DocID order.
type postingList struct {
	entries []posting
}

type fieldTerm struct {
	field string
	term  string
}

type docEntry struct {
	extID   string
	meta    map[string]string
	fields  []storedField
	deleted bool
}

type storedField struct {
	name   string
	text   string
	length int // token count, for BM25 normalization
	weight float64
}

// Index is the inverted index. Create one with New.
type Index struct {
	mu       sync.RWMutex
	analyzer textproc.Analyzer
	docs     []docEntry
	byExt    map[string]DocID
	postings map[fieldTerm]*postingList
	// fieldTotals tracks the sum of token lengths per field for average
	// length in BM25; fieldDocs counts docs that have the field.
	fieldTotals map[string]int
	fieldDocs   map[string]int
	liveDocs    int
}

// New returns an empty index using the given analyzer. Pass
// textproc.DefaultAnalyzer for the standard EIL configuration.
func New(a textproc.Analyzer) *Index {
	return &Index{
		analyzer:    a,
		byExt:       make(map[string]DocID),
		postings:    make(map[fieldTerm]*postingList),
		fieldTotals: make(map[string]int),
		fieldDocs:   make(map[string]int),
	}
}

// Analyzer returns the analyzer the index was built with. Query layers must
// use it so query terms normalize identically to indexed terms.
func (ix *Index) Analyzer() textproc.Analyzer { return ix.analyzer }

// Add indexes one document and returns its DocID. Adding an ExtID that is
// already live returns ErrDuplicate.
func (ix *Index) Add(doc Document) (DocID, error) {
	if doc.ExtID == "" {
		return 0, fmt.Errorf("index: empty external id")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.byExt[doc.ExtID]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicate, doc.ExtID)
	}
	id := DocID(len(ix.docs))
	entry := docEntry{extID: doc.ExtID, meta: doc.Meta}
	for _, f := range doc.Fields {
		w := f.Weight
		if w == 0 {
			w = 1
		}
		toks := ix.analyzer.Tokenize(f.Text)
		for _, tok := range toks {
			ix.addPosting(f.Name, tok.Term, id, uint32(tok.Pos))
		}
		if f.Keyword {
			kw := keywordTerm(f.Text)
			if kw != "" {
				ix.addPosting(f.Name, kw, id, keywordPos)
			}
		}
		entry.fields = append(entry.fields, storedField{name: f.Name, text: f.Text, length: len(toks), weight: w})
		ix.fieldTotals[f.Name] += len(toks)
		ix.fieldDocs[f.Name]++
	}
	ix.docs = append(ix.docs, entry)
	ix.byExt[doc.ExtID] = id
	ix.liveDocs++
	return id, nil
}

// keywordPos is the sentinel position used for whole-value keyword terms so
// they never participate in phrase adjacency.
const keywordPos = ^uint32(0)

// keywordTerm normalizes a whole field value into a single exact-match term.
func keywordTerm(value string) string {
	v := textproc.FoldWhitespace(value)
	if v == "" {
		return ""
	}
	return "\x00" + lowerASCII(v)
}

// KeywordTerm exposes the keyword-term normalization for query compilers.
func KeywordTerm(value string) string { return keywordTerm(value) }

func lowerASCII(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

func (ix *Index) addPosting(field, term string, id DocID, pos uint32) {
	key := fieldTerm{field, term}
	pl := ix.postings[key]
	if pl == nil {
		pl = &postingList{}
		ix.postings[key] = pl
	}
	n := len(pl.entries)
	if n > 0 && pl.entries[n-1].doc == id {
		pl.entries[n-1].positions = append(pl.entries[n-1].positions, pos)
		return
	}
	pl.entries = append(pl.entries, posting{doc: id, positions: []uint32{pos}})
}

// Delete tombstones the document with the given external ID. Postings are
// retained but filtered at read time; EIL re-ingests rather than compacting.
func (ix *Index) Delete(extID string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byExt[extID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, extID)
	}
	e := &ix.docs[id]
	if e.deleted {
		return fmt.Errorf("%w: %s", ErrNotFound, extID)
	}
	e.deleted = true
	delete(ix.byExt, extID)
	for _, f := range e.fields {
		ix.fieldTotals[f.name] -= f.length
		ix.fieldDocs[f.name]--
	}
	ix.liveDocs--
	return nil
}

// DocCount reports the number of live documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// TermCount reports the number of distinct (field, term) postings lists;
// useful for diagnostics and tests.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// ExtID resolves a DocID back to the caller's identifier.
func (ix *Index) ExtID(id DocID) (string, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.docs[id].deleted {
		return "", ErrNotFound
	}
	return ix.docs[id].extID, nil
}

// Lookup resolves an external ID to its DocID.
func (ix *Index) Lookup(extID string) (DocID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.byExt[extID]
	return id, ok
}

// Meta returns the stored metadata value for a document, or "" if absent.
func (ix *Index) Meta(id DocID, key string) string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.docs[id].deleted {
		return ""
	}
	return ix.docs[id].meta[key]
}

// FieldText returns the stored text of a field, for snippet generation and
// result display. The empty string is returned when the field is absent.
func (ix *Index) FieldText(id DocID, field string) string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.docs[id].deleted {
		return ""
	}
	for _, f := range ix.docs[id].fields {
		if f.name == field {
			return f.text
		}
	}
	return ""
}

// FieldNames returns the sorted set of field names present in the index.
func (ix *Index) FieldNames() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	names := make([]string, 0, len(ix.fieldDocs))
	for n, c := range ix.fieldDocs {
		if c > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Compact rebuilds the index without tombstoned documents, reclaiming the
// postings and stored fields deletions left behind. Document IDs are
// reassigned; external IDs are stable. The caller swaps the returned index
// in; the original is untouched.
func (ix *Index) Compact() *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fresh := New(ix.analyzer)
	for i := range ix.docs {
		d := &ix.docs[i]
		if d.deleted {
			continue
		}
		doc := Document{ExtID: d.extID, Meta: d.meta}
		for _, f := range d.fields {
			doc.Fields = append(doc.Fields, Field{Name: f.name, Text: f.text, Weight: f.weight})
		}
		// Keyword fields are re-derived from the stored text: a field was
		// keyword-indexed iff its whole-value term exists in the postings.
		for fi := range doc.Fields {
			kw := keywordTerm(doc.Fields[fi].Text)
			if kw == "" {
				continue
			}
			if pl := ix.postings[fieldTerm{doc.Fields[fi].Name, kw}]; pl != nil {
				if findPosting(pl, DocID(i)) != nil {
					doc.Fields[fi].Keyword = true
				}
			}
		}
		// Add cannot fail here: ExtIDs were unique among live docs.
		if _, err := fresh.Add(doc); err != nil {
			panic("index: compact invariant violated: " + err.Error())
		}
	}
	return fresh
}

// ExtIDsByMeta returns the external IDs of live documents whose stored
// metadata key equals value, in insertion order. EIL uses it to enumerate a
// business activity's documents for withdrawal.
func (ix *Index) ExtIDsByMeta(key, value string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []string
	for i := range ix.docs {
		d := &ix.docs[i]
		if !d.deleted && d.meta[key] == value {
			out = append(out, d.extID)
		}
	}
	return out
}

// DocFreq reports how many live documents contain term in field.
func (ix *Index) DocFreq(field, term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pl := ix.postings[fieldTerm{field, term}]
	if pl == nil {
		return 0
	}
	n := 0
	for _, p := range pl.entries {
		if !ix.docs[p.doc].deleted {
			n++
		}
	}
	return n
}
