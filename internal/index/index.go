// Package index implements the EIL full-text engine: an in-memory inverted
// index with positional postings, per-field statistics, BM25 relevance
// scoring, phrase matching, and snippet extraction. It is the substitute for
// the OmniFind enterprise search platform the paper builds on; the SIAPI
// query layer (package siapi) compiles its query AST down to the primitives
// exposed here.
//
// The index is safe for concurrent use: writes take an exclusive lock,
// searches take a shared lock. Tokenization runs outside the lock (see
// segment.go), so concurrent writers contend only on the short merge step.
package index

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"repro/internal/textproc"
)

// DocID identifies a document inside one Index. IDs are dense and assigned
// in insertion order; deleted documents leave a tombstone.
type DocID uint32

// Field is one named region of a document. Body text, titles, and extracted
// concept values are all fields; queries may target any subset.
type Field struct {
	Name string
	Text string
	// Keyword marks the field as an exact-value concept field: the whole
	// (whitespace-folded, lowercased) value is indexed as a single term, in
	// addition to its individual tokens. EIL uses keyword fields for
	// annotation-derived concepts such as towers and roles.
	Keyword bool
	// Weight scales this field's BM25 contribution. Zero means 1.0.
	Weight float64
}

// Document is the unit of indexing. ExtID is the caller's stable identifier
// (for EIL, the repository path); Meta carries stored metadata returned with
// hits, most importantly the business-activity ID.
type Document struct {
	ExtID  string
	Fields []Field
	Meta   map[string]string
}

// ErrNotFound is returned when a document lookup misses.
var ErrNotFound = errors.New("index: document not found")

// ErrDuplicate is returned when adding a document whose ExtID is already
// present and live.
var ErrDuplicate = errors.New("index: duplicate external id")

// posting records one document's occurrences of a term within one field.
type posting struct {
	doc       DocID
	positions []uint32 // token positions, ascending
}

// postingList is the per-(field,term) list, kept in ascending DocID order.
// live tracks the number of non-tombstoned documents in entries, so document
// frequency never requires rescanning the list.
type postingList struct {
	entries []posting
	live    int
}

type fieldTerm struct {
	field string
	term  string
}

type docEntry struct {
	extID  string
	meta   map[string]string
	fields []storedField
}

type storedField struct {
	name   string
	text   string
	length int // token count, for BM25 normalization
	weight float64
}

// fieldData is the dense per-document statistics table for one field:
// token length and BM25 weight indexed by DocID. A zero weight means the
// document does not have the field (stored weights are never zero), in which
// case scoring falls back to length 0 and weight 1 — the same answer the old
// linear scan over stored fields gave for absent fields.
type fieldData struct {
	lens    []int32
	weights []float64
}

// ensure grows the tables to cover n documents.
func (fd *fieldData) ensure(n int) {
	if len(fd.lens) >= n {
		return
	}
	fd.lens = append(fd.lens, make([]int32, n-len(fd.lens))...)
	fd.weights = append(fd.weights, make([]float64, n-len(fd.weights))...)
}

// at returns the field length and weight for one document.
func (fd *fieldData) at(id DocID) (length int, weight float64) {
	if fd == nil || int(id) >= len(fd.lens) {
		return 0, 1
	}
	w := fd.weights[id]
	if w == 0 {
		return 0, 1
	}
	return int(fd.lens[id]), w
}

// Index is the inverted index. Create one with New.
type Index struct {
	mu       sync.RWMutex
	analyzer textproc.Analyzer
	docs     []docEntry
	// deleted is the tombstone bitmap, parallel to docs: a dense slice the
	// evaluation hot loops can probe without touching the wide docEntry.
	deleted  []bool
	byExt    map[string]DocID
	postings map[fieldTerm]*postingList
	// fieldTotals tracks the sum of token lengths per field for average
	// length in BM25; fieldDocs counts docs that have the field.
	fieldTotals map[string]int
	fieldDocs   map[string]int
	// fieldLens holds the dense per-doc length/weight tables consulted once
	// per scored posting.
	fieldLens map[string]*fieldData
	liveDocs  int

	// gen counts index mutations (Add, AddBatch, Delete). Query-result
	// caches key on it so any write invalidates without coordination.
	gen atomic.Uint64

	// accPool recycles per-query scoring accumulators.
	accPool sync.Pool
}

// New returns an empty index using the given analyzer. Pass
// textproc.DefaultAnalyzer for the standard EIL configuration.
func New(a textproc.Analyzer) *Index {
	return &Index{
		analyzer:    a,
		byExt:       make(map[string]DocID),
		postings:    make(map[fieldTerm]*postingList),
		fieldTotals: make(map[string]int),
		fieldDocs:   make(map[string]int),
		fieldLens:   make(map[string]*fieldData),
	}
}

// Analyzer returns the analyzer the index was built with. Query layers must
// use it so query terms normalize identically to indexed terms.
func (ix *Index) Analyzer() textproc.Analyzer { return ix.analyzer }

// Generation reports the index mutation epoch: it changes after every Add,
// AddBatch, or Delete. Caches key results on it to invalidate on write.
func (ix *Index) Generation() uint64 { return ix.gen.Load() }

// Add indexes one document and returns its DocID. Adding an ExtID that is
// already live returns ErrDuplicate. Tokenization happens outside the index
// lock; only the final merge takes it.
func (ix *Index) Add(doc Document) (DocID, error) {
	seg := newSegment(ix.analyzer)
	if err := seg.add(doc); err != nil {
		return 0, err
	}
	ids, err := ix.mergeSegments([]*segment{seg})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// keywordPos is the sentinel position used for whole-value keyword terms so
// they never participate in phrase adjacency.
const keywordPos = ^uint32(0)

// keywordTerm normalizes a whole field value into a single exact-match term.
func keywordTerm(value string) string {
	v := textproc.FoldWhitespace(value)
	if v == "" {
		return ""
	}
	return "\x00" + lowerTerm(v)
}

// KeywordTerm exposes the keyword-term normalization for query compilers.
func KeywordTerm(value string) string { return keywordTerm(value) }

// lowerTerm lowercases a keyword value: the ASCII fast path avoids an
// allocation for the common case, and values carrying non-ASCII bytes
// (accented client or person names) go through full Unicode lowercasing so
// exact-match concept fields stay case-insensitive for them too.
func lowerTerm(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return strings.ToLower(s)
		}
	}
	return lowerASCII(s)
}

func lowerASCII(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// Delete tombstones the document with the given external ID. Postings are
// retained but filtered at read time; EIL re-ingests rather than compacting.
// The stored fields are re-tokenized (outside the hot path — deletes are
// rare) to decrement each affected posting list's live document frequency.
func (ix *Index) Delete(extID string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byExt[extID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, extID)
	}
	e := &ix.docs[id]
	ix.deleted[id] = true
	delete(ix.byExt, extID)
	seen := make(map[fieldTerm]struct{})
	decr := func(key fieldTerm) {
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		if pl := ix.postings[key]; pl != nil && findPosting(pl, id) != nil {
			pl.live--
		}
	}
	for _, f := range e.fields {
		ix.fieldTotals[f.name] -= f.length
		ix.fieldDocs[f.name]--
		for _, tok := range ix.analyzer.Tokenize(f.text) {
			decr(fieldTerm{f.name, tok.Term})
		}
		// The whole-value term exists only if the field was keyword-indexed;
		// findPosting inside decr resolves that exactly.
		if kw := keywordTerm(f.text); kw != "" {
			decr(fieldTerm{f.name, kw})
		}
	}
	ix.liveDocs--
	ix.gen.Add(1)
	return nil
}

// DocCount reports the number of live documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// TermCount reports the number of distinct (field, term) postings lists;
// useful for diagnostics and tests.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// ExtID resolves a DocID back to the caller's identifier.
func (ix *Index) ExtID(id DocID) (string, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.deleted[id] {
		return "", ErrNotFound
	}
	return ix.docs[id].extID, nil
}

// Lookup resolves an external ID to its DocID.
func (ix *Index) Lookup(extID string) (DocID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.byExt[extID]
	return id, ok
}

// Meta returns the stored metadata value for a document, or "" if absent.
func (ix *Index) Meta(id DocID, key string) string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.deleted[id] {
		return ""
	}
	return ix.docs[id].meta[key]
}

// FieldText returns the stored text of a field, for snippet generation and
// result display. The empty string is returned when the field is absent.
func (ix *Index) FieldText(id DocID, field string) string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.deleted[id] {
		return ""
	}
	for _, f := range ix.docs[id].fields {
		if f.name == field {
			return f.text
		}
	}
	return ""
}

// FieldNames returns the sorted set of field names present in the index.
func (ix *Index) FieldNames() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	names := make([]string, 0, len(ix.fieldDocs))
	for n, c := range ix.fieldDocs {
		if c > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Compact rebuilds the index without tombstoned documents, reclaiming the
// postings and stored fields deletions left behind. Document IDs are
// reassigned; external IDs are stable. The caller swaps the returned index
// in; the original is untouched.
func (ix *Index) Compact() *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fresh := New(ix.analyzer)
	for i := range ix.docs {
		if ix.deleted[i] {
			continue
		}
		d := &ix.docs[i]
		doc := Document{ExtID: d.extID, Meta: d.meta}
		for _, f := range d.fields {
			doc.Fields = append(doc.Fields, Field{Name: f.name, Text: f.text, Weight: f.weight})
		}
		// Keyword fields are re-derived from the stored text: a field was
		// keyword-indexed iff its whole-value term exists in the postings.
		for fi := range doc.Fields {
			kw := keywordTerm(doc.Fields[fi].Text)
			if kw == "" {
				continue
			}
			if pl := ix.postings[fieldTerm{doc.Fields[fi].Name, kw}]; pl != nil {
				if findPosting(pl, DocID(i)) != nil {
					doc.Fields[fi].Keyword = true
				}
			}
		}
		// Add cannot fail here: ExtIDs were unique among live docs.
		if _, err := fresh.Add(doc); err != nil {
			panic("index: compact invariant violated: " + err.Error())
		}
	}
	return fresh
}

// ExtIDsByMeta returns the external IDs of live documents whose stored
// metadata key equals value, in insertion order. EIL uses it to enumerate a
// business activity's documents for withdrawal.
func (ix *Index) ExtIDsByMeta(key, value string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []string
	for i := range ix.docs {
		if ix.deleted[i] {
			continue
		}
		if ix.docs[i].meta[key] == value {
			out = append(out, ix.docs[i].extID)
		}
	}
	return out
}

// DocFreq reports how many live documents contain term in field. The count
// is maintained incrementally by Add and Delete, so this is O(1).
func (ix *Index) DocFreq(field, term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pl := ix.postings[fieldTerm{field, term}]
	if pl == nil {
		return 0
	}
	return pl.live
}

// fieldData returns (creating if needed) the stats table for a field.
// Callers must hold the write lock.
func (ix *Index) fieldData(name string) *fieldData {
	fd := ix.fieldLens[name]
	if fd == nil {
		fd = &fieldData{}
		ix.fieldLens[name] = fd
	}
	return fd
}
