package index

// Fuzzy term matching: a FuzzyQuery expands against the field's term
// dictionary to all terms within a bounded edit distance, then evaluates as
// a disjunction. EIL uses it for the search box's tolerance to typos in
// client and person names, which autocorrect-free enterprise mail is full
// of.

// FuzzyQuery matches documents containing any term within MaxDist edits of
// Term in Field. Term must already be analyzer-normalized. MaxDist <= 0
// defaults to 1; the expansion is capped to keep worst-case cost bounded.
type FuzzyQuery struct {
	Field   string
	Term    string
	MaxDist int
}

func (FuzzyQuery) isQuery() {}

// maxFuzzyExpansions bounds how many dictionary terms one fuzzy leaf may
// expand to; the closest terms win.
const maxFuzzyExpansions = 32

// PrefixQuery matches documents containing any term starting with Prefix in
// Field (the search box's trailing-wildcard form, `storag*`). Prefix must
// be analyzer-normalized without stemming applied by the caller — prefixes
// are matched against the stemmed dictionary as-is.
type PrefixQuery struct {
	Field  string
	Prefix string
}

func (PrefixQuery) isQuery() {}

// maxPrefixExpansions bounds dictionary expansion for prefix leaves.
const maxPrefixExpansions = 64

// prefixCandidates enumerates the dictionary terms a prefix leaf expands
// to, sorted shorter-first (they carry the most postings mass) and capped.
// Callers must hold at least a read lock.
func (ix *Index) prefixCandidates(q PrefixQuery) []string {
	if q.Prefix == "" {
		return nil
	}
	var terms []string
	for key := range ix.postings {
		if key.field != q.Field {
			continue
		}
		if len(key.term) > 0 && key.term[0] == '\x00' {
			continue
		}
		if len(key.term) >= len(q.Prefix) && key.term[:len(q.Prefix)] == q.Prefix {
			terms = append(terms, key.term)
		}
	}
	// Shorter terms first on the cap.
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && (len(terms[j]) < len(terms[j-1]) ||
			(len(terms[j]) == len(terms[j-1]) && terms[j] < terms[j-1])); j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
	if len(terms) > maxPrefixExpansions {
		terms = terms[:maxPrefixExpansions]
	}
	return terms
}

// evalPrefix expands the prefix against the dictionary and evaluates the
// union at full term scores. When st carries a merged expansion for this
// leaf (sharded search), that global list replaces local enumeration so
// every shard evaluates the same terms the monolith would.
func (ix *Index) evalPrefix(q PrefixQuery, st *Stats) *acc {
	out := ix.getAcc()
	var terms []string
	if st != nil {
		if exp, ok := st.PrefixExp[prefixLeafKey(q)]; ok {
			terms = exp
		} else {
			terms = ix.prefixCandidates(q)
		}
	} else {
		terms = ix.prefixCandidates(q)
	}
	for _, term := range terms {
		m := ix.evalTerm(q.Field, term, st)
		for _, id := range m.ids {
			if m.member[id] {
				out.addMax(id, m.scores[id])
			}
		}
		ix.putAcc(m)
	}
	return out
}

// fuzzyCandidates enumerates the dictionary terms within edit distance of
// a fuzzy leaf, sorted closest-first and capped. Callers must hold at
// least a read lock.
func (ix *Index) fuzzyCandidates(q FuzzyQuery) []TermDist {
	maxDist := q.MaxDist
	if maxDist <= 0 {
		maxDist = 1
	}
	var cands []TermDist
	for key := range ix.postings {
		if key.field != q.Field {
			continue
		}
		// Keyword terms (whole-value concepts) are not fuzzy-matchable.
		if len(key.term) > 0 && key.term[0] == '\x00' {
			continue
		}
		d, ok := editDistanceAtMost(q.Term, key.term, maxDist)
		if !ok {
			continue
		}
		cands = append(cands, TermDist{Term: key.term, Dist: d})
	}
	// Prefer closer terms when capping.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].Dist < cands[j-1].Dist ||
			(cands[j].Dist == cands[j-1].Dist && cands[j].Term < cands[j-1].Term)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > maxFuzzyExpansions {
		cands = cands[:maxFuzzyExpansions]
	}
	return cands
}

// evalFuzzy expands the query term against the dictionary and evaluates the
// union. Scores are the underlying term scores scaled down by edit distance
// (exact-distance-1 matches count 60%, distance-2 matches 35%). When st
// carries a merged expansion for this leaf, it replaces local enumeration.
func (ix *Index) evalFuzzy(q FuzzyQuery, st *Stats) *acc {
	var cands []TermDist
	if st != nil {
		if exp, ok := st.FuzzyExp[fuzzyLeafKey(q)]; ok {
			cands = exp
		} else {
			cands = ix.fuzzyCandidates(q)
		}
	} else {
		cands = ix.fuzzyCandidates(q)
	}
	out := ix.getAcc()
	for _, c := range cands {
		scale := 1.0
		switch c.Dist {
		case 1:
			scale = 0.6
		case 2:
			scale = 0.35
		}
		m := ix.evalTerm(q.Field, c.Term, st)
		for _, id := range m.ids {
			if m.member[id] {
				out.addMax(id, m.scores[id]*scale)
			}
		}
		ix.putAcc(m)
	}
	return out
}

// editDistanceAtMost computes the Levenshtein distance between a and b if
// it is <= limit, using the banded dynamic program; ok is false when the
// distance exceeds the limit.
func editDistanceAtMost(a, b string, limit int) (int, bool) {
	la, lb := len(a), len(b)
	if la-lb > limit || lb-la > limit {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	// Classic two-row DP; rows are short (terms), so the band is implicit.
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j-1] + cost; v < m {
				m = v
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > limit {
			return 0, false
		}
		prev, cur = cur, prev
	}
	if prev[lb] > limit {
		return 0, false
	}
	return prev[lb], true
}
