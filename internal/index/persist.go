package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/durable"
	"repro/internal/textproc"
)

// persistFormat is bumped whenever the on-disk layout changes; Load rejects
// mismatched versions rather than misreading them.
const persistFormat = 1

// snapshot is the gob-serializable image of an Index.
type snapshot struct {
	Format      int
	Analyzer    textproc.Analyzer
	Docs        []snapDoc
	Postings    []snapPosting
	FieldTotals map[string]int
	FieldDocs   map[string]int
	LiveDocs    int
}

type snapDoc struct {
	ExtID   string
	Meta    map[string]string
	Fields  []snapField
	Deleted bool
}

type snapField struct {
	Name   string
	Text   string
	Length int
	Weight float64
}

type snapPosting struct {
	Field   string
	Term    string
	Entries []snapEntry
}

type snapEntry struct {
	Doc       DocID
	Positions []uint32
}

// WriteTo serializes the index. It holds a read lock for the duration, so
// concurrent searches proceed but writes block.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := snapshot{
		Format:      persistFormat,
		Analyzer:    ix.analyzer,
		FieldTotals: ix.fieldTotals,
		FieldDocs:   ix.fieldDocs,
		LiveDocs:    ix.liveDocs,
	}
	for i, d := range ix.docs {
		sd := snapDoc{ExtID: d.extID, Meta: d.meta, Deleted: ix.deleted[i]}
		for _, f := range d.fields {
			sd.Fields = append(sd.Fields, snapField{Name: f.name, Text: f.text, Length: f.length, Weight: f.weight})
		}
		snap.Docs = append(snap.Docs, sd)
	}
	for key, pl := range ix.postings {
		sp := snapPosting{Field: key.field, Term: key.term}
		for _, p := range pl.entries {
			sp.Entries = append(sp.Entries, snapEntry{Doc: p.doc, Positions: p.positions})
		}
		snap.Postings = append(snap.Postings, sp)
	}
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(snap); err != nil {
		return cw.n, fmt.Errorf("index: encode: %w", err)
	}
	return cw.n, nil
}

// Load reads an index previously written with WriteTo. It never panics on
// corrupt input: structurally impossible snapshots (out-of-range doc IDs,
// gob decoder blowups) come back as errors, so crash-recovery code can fall
// back to an older generation instead of dying.
func Load(r io.Reader) (ix *Index, err error) {
	defer func() {
		if p := recover(); p != nil {
			ix, err = nil, fmt.Errorf("index: corrupt snapshot: %v", p)
		}
	}()
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if snap.Format != persistFormat {
		return nil, fmt.Errorf("index: unsupported snapshot format %d", snap.Format)
	}
	ix = New(snap.Analyzer)
	ix.fieldTotals = snap.FieldTotals
	ix.fieldDocs = snap.FieldDocs
	if ix.fieldTotals == nil {
		ix.fieldTotals = map[string]int{}
	}
	if ix.fieldDocs == nil {
		ix.fieldDocs = map[string]int{}
	}
	ix.liveDocs = snap.LiveDocs
	for i, sd := range snap.Docs {
		d := docEntry{extID: sd.ExtID, meta: sd.Meta}
		for _, f := range sd.Fields {
			d.fields = append(d.fields, storedField{name: f.Name, text: f.Text, length: f.Length, weight: f.Weight})
		}
		ix.docs = append(ix.docs, d)
		ix.deleted = append(ix.deleted, sd.Deleted)
		if !sd.Deleted {
			ix.byExt[sd.ExtID] = DocID(i)
			// Rebuild the dense field-length table (first occurrence of a
			// field name in a document wins, matching the merge path).
			for _, f := range d.fields {
				fd := ix.fieldData(f.name)
				fd.ensure(len(ix.docs))
				if fd.weights[i] == 0 {
					fd.lens[i] = int32(f.length)
					fd.weights[i] = f.weight
				}
			}
		}
	}
	for _, sp := range snap.Postings {
		pl := &postingList{}
		for _, e := range sp.Entries {
			// A corrupt snapshot can reference documents that do not exist;
			// reject it rather than index out of range below.
			if int(e.Doc) < 0 || int(e.Doc) >= len(ix.docs) {
				return nil, fmt.Errorf("index: corrupt snapshot: posting %s/%s references doc %d of %d",
					sp.Field, sp.Term, e.Doc, len(ix.docs))
			}
			pl.entries = append(pl.entries, posting{doc: e.Doc, positions: e.Positions})
			if !ix.deleted[e.Doc] {
				pl.live++
			}
		}
		ix.postings[fieldTerm{sp.Field, sp.Term}] = pl
	}
	return ix, nil
}

// SaveFile writes the index to path atomically and durably (temp file +
// fsync + rename + directory fsync, via the shared durable helper).
func (ix *Index) SaveFile(path string) error {
	return durable.WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, err := ix.WriteTo(w)
		return err
	})
}

// LoadFile reads an index snapshot from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
