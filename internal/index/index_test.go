package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func newTestIndex(t *testing.T) *Index {
	t.Helper()
	ix := New(textproc.DefaultAnalyzer)
	docs := []Document{
		{ExtID: "d1", Fields: []Field{
			{Name: "title", Text: "Disaster Recovery proposal", Weight: 2},
			{Name: "body", Text: "The engagement scope includes Storage Management Services and data replication across sites."},
			{Name: "deal", Text: "DEAL A", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL A"}},
		{ExtID: "d2", Fields: []Field{
			{Name: "title", Text: "Network services overview"},
			{Name: "body", Text: "Network Services and LAN management. Data center consolidation with replication of databases."},
			{Name: "deal", Text: "DEAL B", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL B"}},
		{ExtID: "d3", Fields: []Field{
			{Name: "title", Text: "End User Services scope"},
			{Name: "body", Text: "Customer Service Center staffing plan. End User Services towers for the client."},
			{Name: "deal", Text: "DEAL A", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL A"}},
	}
	for _, d := range docs {
		if _, err := ix.Add(d); err != nil {
			t.Fatalf("Add(%s): %v", d.ExtID, err)
		}
	}
	return ix
}

func term(field, word string) TermQuery {
	return TermQuery{Field: field, Term: textproc.DefaultAnalyzer.NormalizeTerm(word)}
}

func phrase(field string, words ...string) PhraseQuery {
	terms := make([]string, len(words))
	for i, w := range words {
		terms[i] = textproc.DefaultAnalyzer.NormalizeTerm(w)
	}
	return PhraseQuery{Field: field, Terms: terms}
}

func extIDs(t *testing.T, ix *Index, hits []Hit) []string {
	t.Helper()
	out := make([]string, len(hits))
	for i, h := range hits {
		id, err := ix.ExtID(h.Doc)
		if err != nil {
			t.Fatalf("ExtID(%d): %v", h.Doc, err)
		}
		out[i] = id
	}
	return out
}

func TestAddAndCount(t *testing.T) {
	ix := newTestIndex(t)
	if got := ix.DocCount(); got != 3 {
		t.Fatalf("DocCount = %d, want 3", got)
	}
	if ix.TermCount() == 0 {
		t.Fatal("no terms indexed")
	}
}

func TestAddDuplicate(t *testing.T) {
	ix := newTestIndex(t)
	_, err := ix.Add(Document{ExtID: "d1", Fields: []Field{{Name: "body", Text: "x"}}})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestAddEmptyExtID(t *testing.T) {
	ix := New(textproc.DefaultAnalyzer)
	if _, err := ix.Add(Document{}); err == nil {
		t.Fatal("expected error for empty ExtID")
	}
}

func TestTermSearch(t *testing.T) {
	ix := newTestIndex(t)
	hits := ix.Search(term("body", "replication"), 0)
	if len(hits) != 2 {
		t.Fatalf("hits = %v, want 2", extIDs(t, ix, hits))
	}
}

func TestTermSearchMiss(t *testing.T) {
	ix := newTestIndex(t)
	if hits := ix.Search(term("body", "mainframe"), 0); len(hits) != 0 {
		t.Fatalf("unexpected hits %v", extIDs(t, ix, hits))
	}
	if hits := ix.Search(term("nosuchfield", "replication"), 0); len(hits) != 0 {
		t.Fatalf("unexpected hits in absent field")
	}
}

func TestPhraseSearch(t *testing.T) {
	ix := newTestIndex(t)
	hits := ix.Search(phrase("body", "data", "replication"), 0)
	got := extIDs(t, ix, hits)
	if len(got) != 1 || got[0] != "d1" {
		t.Fatalf("phrase hits = %v, want [d1]", got)
	}
}

func TestPhraseAcrossStopword(t *testing.T) {
	// "replication of databases": stopword "of" keeps a positional gap, so
	// the phrase "replication databases" must NOT match d2.
	ix := newTestIndex(t)
	hits := ix.Search(phrase("body", "replication", "databases"), 0)
	if len(hits) != 0 {
		t.Fatalf("phrase bridged a stopword gap: %v", extIDs(t, ix, hits))
	}
}

func TestPhraseSingleTermEqualsTerm(t *testing.T) {
	ix := newTestIndex(t)
	a := ix.Search(phrase("body", "replication"), 0)
	b := ix.Search(term("body", "replication"), 0)
	if len(a) != len(b) {
		t.Fatalf("single-term phrase %d hits vs term %d", len(a), len(b))
	}
}

func TestBoolMust(t *testing.T) {
	ix := newTestIndex(t)
	q := BoolQuery{Must: []Query{term("body", "replication"), term("body", "storage")}}
	got := extIDs(t, ix, ix.Search(q, 0))
	if len(got) != 1 || got[0] != "d1" {
		t.Fatalf("must hits = %v, want [d1]", got)
	}
}

func TestBoolShould(t *testing.T) {
	ix := newTestIndex(t)
	q := BoolQuery{Should: []Query{term("body", "staffing"), term("body", "lan")}}
	got := extIDs(t, ix, ix.Search(q, 0))
	if len(got) != 2 {
		t.Fatalf("should hits = %v, want 2", got)
	}
}

func TestBoolMustNot(t *testing.T) {
	ix := newTestIndex(t)
	q := BoolQuery{
		Must:    []Query{term("body", "replication")},
		MustNot: []Query{term("body", "lan")},
	}
	got := extIDs(t, ix, ix.Search(q, 0))
	if len(got) != 1 || got[0] != "d1" {
		t.Fatalf("hits = %v, want [d1]", got)
	}
}

func TestBoolOnlyMustNot(t *testing.T) {
	ix := newTestIndex(t)
	q := BoolQuery{MustNot: []Query{term("body", "replication")}}
	got := extIDs(t, ix, ix.Search(q, 0))
	if len(got) != 1 || got[0] != "d3" {
		t.Fatalf("hits = %v, want [d3]", got)
	}
}

func TestAllQuery(t *testing.T) {
	ix := newTestIndex(t)
	if n := ix.Count(AllQuery{}); n != 3 {
		t.Fatalf("Count(All) = %d", n)
	}
}

func TestKeywordField(t *testing.T) {
	ix := newTestIndex(t)
	q := TermQuery{Field: "deal", Term: KeywordTerm("deal a")}
	got := extIDs(t, ix, ix.Search(q, 0))
	if len(got) != 2 {
		t.Fatalf("keyword hits = %v, want d1 and d3", got)
	}
	// Keyword term must not be a phrase participant nor collide with tokens.
	if n := ix.Count(TermQuery{Field: "deal", Term: KeywordTerm("deal")}); n != 0 {
		t.Fatalf("partial keyword matched: %d", n)
	}
}

func TestFieldWeightBoostsScore(t *testing.T) {
	ix := New(textproc.DefaultAnalyzer)
	mustAdd(t, ix, Document{ExtID: "plain", Fields: []Field{{Name: "title", Text: "recovery plan"}}})
	mustAdd(t, ix, Document{ExtID: "boosted", Fields: []Field{{Name: "title", Text: "recovery plan", Weight: 3}}})
	hits := ix.Search(term("title", "recovery"), 0)
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	top, _ := ix.ExtID(hits[0].Doc)
	if top != "boosted" {
		t.Fatalf("weighted field did not rank first: %v", extIDs(t, ix, hits))
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatalf("scores not ordered: %v", hits)
	}
}

func TestDelete(t *testing.T) {
	ix := newTestIndex(t)
	if err := ix.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if got := ix.DocCount(); got != 2 {
		t.Fatalf("DocCount after delete = %d", got)
	}
	hits := ix.Search(phrase("body", "data", "replication"), 0)
	if len(hits) != 0 {
		t.Fatalf("deleted doc still matches: %v", extIDs(t, ix, hits))
	}
	if err := ix.Delete("d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	if err := ix.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing delete err = %v", err)
	}
	// DocFreq must reflect the tombstone.
	if df := ix.DocFreq("body", textproc.DefaultAnalyzer.NormalizeTerm("replication")); df != 1 {
		t.Fatalf("DocFreq = %d, want 1", df)
	}
}

func TestLimit(t *testing.T) {
	ix := newTestIndex(t)
	hits := ix.Search(AllQuery{}, 2)
	if len(hits) != 2 {
		t.Fatalf("limit ignored: %d hits", len(hits))
	}
}

func TestDeterministicOrder(t *testing.T) {
	ix := newTestIndex(t)
	a := extIDs(t, ix, ix.Search(AllQuery{}, 0))
	for i := 0; i < 5; i++ {
		b := extIDs(t, ix, ix.Search(AllQuery{}, 0))
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Fatalf("order unstable: %v vs %v", a, b)
		}
	}
}

func TestMetaAndFieldText(t *testing.T) {
	ix := newTestIndex(t)
	id, ok := ix.Lookup("d1")
	if !ok {
		t.Fatal("lookup failed")
	}
	if got := ix.Meta(id, "deal"); got != "DEAL A" {
		t.Fatalf("Meta = %q", got)
	}
	if got := ix.Meta(id, "missing"); got != "" {
		t.Fatalf("missing meta = %q", got)
	}
	if txt := ix.FieldText(id, "title"); !strings.Contains(txt, "Disaster") {
		t.Fatalf("FieldText = %q", txt)
	}
	if txt := ix.FieldText(id, "absent"); txt != "" {
		t.Fatalf("absent FieldText = %q", txt)
	}
}

func TestFieldNames(t *testing.T) {
	ix := newTestIndex(t)
	names := ix.FieldNames()
	want := map[string]bool{"title": true, "body": true, "deal": true}
	if len(names) != len(want) {
		t.Fatalf("FieldNames = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected field %q", n)
		}
	}
}

func TestSnippetHighlights(t *testing.T) {
	ix := newTestIndex(t)
	id, _ := ix.Lookup("d1")
	terms := []string{textproc.DefaultAnalyzer.NormalizeTerm("replication")}
	snip := ix.Snippet(id, "body", terms, 20)
	if !strings.Contains(snip, "<em>replication</em>") {
		t.Fatalf("snippet missing highlight: %q", snip)
	}
}

func TestSnippetNoTerms(t *testing.T) {
	ix := newTestIndex(t)
	id, _ := ix.Lookup("d2")
	snip := ix.Snippet(id, "body", nil, 5)
	if snip == "" || strings.Contains(snip, "<em>") {
		t.Fatalf("lead snippet wrong: %q", snip)
	}
}

func TestSnippetAbsentField(t *testing.T) {
	ix := newTestIndex(t)
	id, _ := ix.Lookup("d1")
	if snip := ix.Snippet(id, "nothere", []string{"x"}, 10); snip != "" {
		t.Fatalf("snippet for absent field: %q", snip)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	ix := newTestIndex(t)
	if err := ix.Delete("d2"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DocCount() != ix.DocCount() {
		t.Fatalf("DocCount %d vs %d", loaded.DocCount(), ix.DocCount())
	}
	for _, q := range []Query{
		term("body", "replication"),
		phrase("body", "data", "replication"),
		TermQuery{Field: "deal", Term: KeywordTerm("DEAL A")},
		AllQuery{},
	} {
		a := ix.Search(q, 0)
		b := loaded.Search(q, 0)
		if len(a) != len(b) {
			t.Fatalf("query %+v: %d vs %d hits", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %+v hit %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestPersistFile(t *testing.T) {
	ix := newTestIndex(t)
	path := t.TempDir() + "/idx.gob"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DocCount() != 3 {
		t.Fatalf("DocCount = %d", loaded.DocCount())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected decode error")
	}
}

// Property: every search hit is a live document and scores are positive.
func TestSearchHitsLiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := New(textproc.DefaultAnalyzer)
	vocab := []string{"storage", "network", "recovery", "deal", "tower", "services", "scope", "replication", "client", "contract"}
	for i := 0; i < 60; i++ {
		var words []string
		for j := 0; j < 20; j++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		mustAdd(t, ix, Document{ExtID: fmt.Sprintf("doc%d", i), Fields: []Field{{Name: "body", Text: strings.Join(words, " ")}}})
	}
	for i := 0; i < 10; i++ {
		if err := ix.Delete(fmt.Sprintf("doc%d", rng.Intn(60))); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	err := quick.Check(func(a, b uint8) bool {
		q := BoolQuery{Should: []Query{
			term("body", vocab[int(a)%len(vocab)]),
			term("body", vocab[int(b)%len(vocab)]),
		}}
		for _, h := range ix.Search(q, 0) {
			if _, err := ix.ExtID(h.Doc); err != nil {
				return false
			}
			if h.Score <= 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// Property: phrase hits are a subset of the conjunction of their terms.
func TestPhraseSubsetOfMustProperty(t *testing.T) {
	ix := newTestIndex(t)
	pairs := [][2]string{{"data", "replication"}, {"storage", "management"}, {"customer", "service"}, {"end", "user"}}
	for _, p := range pairs {
		ph := ix.Search(phrase("body", p[0], p[1]), 0)
		must := ix.Search(BoolQuery{Must: []Query{term("body", p[0]), term("body", p[1])}}, 0)
		mustSet := map[DocID]bool{}
		for _, h := range must {
			mustSet[h.Doc] = true
		}
		for _, h := range ph {
			if !mustSet[h.Doc] {
				t.Fatalf("phrase %v matched doc %d outside conjunction", p, h.Doc)
			}
		}
	}
}

func mustAdd(t *testing.T, ix *Index, d Document) DocID {
	t.Helper()
	id, err := ix.Add(d)
	if err != nil {
		t.Fatalf("Add(%s): %v", d.ExtID, err)
	}
	return id
}

func BenchmarkIndexAdd(b *testing.B) {
	body := strings.Repeat("storage management services data replication disaster recovery network ", 20)
	b.ReportAllocs()
	ix := New(textproc.DefaultAnalyzer)
	for i := 0; i < b.N; i++ {
		ix.Add(Document{ExtID: fmt.Sprintf("d%d", i), Fields: []Field{{Name: "body", Text: body}}})
	}
}

func BenchmarkTermSearch(b *testing.B) {
	ix := New(textproc.DefaultAnalyzer)
	rng := rand.New(rand.NewSource(1))
	vocab := []string{"storage", "network", "recovery", "deal", "tower", "services", "scope", "replication"}
	for i := 0; i < 5000; i++ {
		var words []string
		for j := 0; j < 50; j++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		ix.Add(Document{ExtID: fmt.Sprintf("d%d", i), Fields: []Field{{Name: "body", Text: strings.Join(words, " ")}}})
	}
	q := term2("body", "replication")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}

func term2(field, word string) TermQuery {
	return TermQuery{Field: field, Term: textproc.DefaultAnalyzer.NormalizeTerm(word)}
}

func TestCompact(t *testing.T) {
	ix := newTestIndex(t)
	if err := ix.Delete("d2"); err != nil {
		t.Fatal(err)
	}
	fresh := ix.Compact()
	if fresh.DocCount() != 2 {
		t.Fatalf("DocCount = %d", fresh.DocCount())
	}
	// Query equivalence on live docs, including keyword fields.
	for _, q := range []Query{
		term("body", "replication"),
		phrase("body", "data", "replication"),
		TermQuery{Field: "deal", Term: KeywordTerm("DEAL A")},
		AllQuery{},
	} {
		a := extIDs(t, ix, ix.Search(q, 0))
		b := extIDs(t, fresh, fresh.Search(q, 0))
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Fatalf("query %+v: %v vs %v", q, a, b)
		}
	}
	// Tombstone gone: d2's path is reusable in the fresh index.
	if _, err := fresh.Add(Document{ExtID: "d2", Fields: []Field{{Name: "body", Text: "back"}}}); err != nil {
		t.Fatalf("re-add after compact: %v", err)
	}
	// The original is untouched.
	if ix.DocCount() != 2 {
		t.Fatal("compact mutated the source index")
	}
	if _, err := ix.Add(Document{ExtID: "d1", Fields: nil}); err == nil {
		t.Fatal("source index lost its live entries")
	}
}

func TestCompactEmptyAndFull(t *testing.T) {
	ix := New(textproc.DefaultAnalyzer)
	if got := ix.Compact().DocCount(); got != 0 {
		t.Fatalf("empty compact = %d", got)
	}
	ix = newTestIndex(t)
	fresh := ix.Compact() // nothing deleted: identical
	if fresh.DocCount() != 3 || fresh.TermCount() != ix.TermCount() {
		t.Fatalf("full compact: %d docs, %d vs %d terms", fresh.DocCount(), fresh.TermCount(), ix.TermCount())
	}
}
