package index

// Parallel segment indexing. A segment is a private partial index one worker
// builds lock-free: tokenization — the expensive part of Add — happens with
// no coordination at all, and only the final merge of finished segments into
// the live index takes the exclusive lock. AddBatch partitions a batch into
// contiguous chunks, builds one segment per worker, and merges the segments
// in chunk order, so the resulting DocIDs, posting order, and statistics are
// byte-identical to a serial Add loop over the same documents.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/textproc"
)

// segment is a partial index over a contiguous run of documents, with local
// DocIDs starting at zero. It is built by exactly one goroutine.
type segment struct {
	analyzer    textproc.Analyzer
	docs        []docEntry
	postings    map[fieldTerm]*postingList
	fieldTotals map[string]int
	fieldDocs   map[string]int
	byExt       map[string]struct{} // local duplicate detection
}

func newSegment(a textproc.Analyzer) *segment {
	return &segment{
		analyzer:    a,
		postings:    make(map[fieldTerm]*postingList),
		fieldTotals: make(map[string]int),
		fieldDocs:   make(map[string]int),
		byExt:       make(map[string]struct{}),
	}
}

// add tokenizes one document into the segment. It mirrors what the serial
// Add used to do under the index lock, against segment-local state.
func (s *segment) add(doc Document) error {
	if doc.ExtID == "" {
		return fmt.Errorf("index: empty external id")
	}
	if _, ok := s.byExt[doc.ExtID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, doc.ExtID)
	}
	id := DocID(len(s.docs))
	entry := docEntry{extID: doc.ExtID, meta: doc.Meta}
	for _, f := range doc.Fields {
		w := f.Weight
		if w == 0 {
			w = 1
		}
		toks := s.analyzer.Tokenize(f.Text)
		for _, tok := range toks {
			s.addPosting(f.Name, tok.Term, id, uint32(tok.Pos))
		}
		if f.Keyword {
			kw := keywordTerm(f.Text)
			if kw != "" {
				s.addPosting(f.Name, kw, id, keywordPos)
			}
		}
		entry.fields = append(entry.fields, storedField{name: f.Name, text: f.Text, length: len(toks), weight: w})
		s.fieldTotals[f.Name] += len(toks)
		s.fieldDocs[f.Name]++
	}
	s.docs = append(s.docs, entry)
	s.byExt[doc.ExtID] = struct{}{}
	return nil
}

func (s *segment) addPosting(field, term string, id DocID, pos uint32) {
	key := fieldTerm{field, term}
	pl := s.postings[key]
	if pl == nil {
		pl = &postingList{}
		s.postings[key] = pl
	}
	n := len(pl.entries)
	if n > 0 && pl.entries[n-1].doc == id {
		pl.entries[n-1].positions = append(pl.entries[n-1].positions, pos)
		return
	}
	pl.entries = append(pl.entries, posting{doc: id, positions: []uint32{pos}})
	pl.live++
}

// mergeSegments folds finished segments into the live index inside one
// critical section. Validation runs first, so a duplicate external ID
// anywhere in the batch rejects the whole batch without partial application.
// Segments merge in slice order and each segment's documents keep their
// relative order, so IDs densely extend the index in batch order.
func (ix *Index) mergeSegments(segs []*segment) ([]DocID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()

	total := 0
	for _, seg := range segs {
		total += len(seg.docs)
	}
	ids := make([]DocID, 0, total)

	// Validate against the live index and across segments before mutating.
	batch := make(map[string]struct{}, total)
	for _, seg := range segs {
		for i := range seg.docs {
			ext := seg.docs[i].extID
			if _, ok := ix.byExt[ext]; ok {
				return nil, fmt.Errorf("%w: %s", ErrDuplicate, ext)
			}
			if _, ok := batch[ext]; ok {
				return nil, fmt.Errorf("%w: %s", ErrDuplicate, ext)
			}
			batch[ext] = struct{}{}
		}
	}

	for _, seg := range segs {
		base := DocID(len(ix.docs))
		for i := range seg.docs {
			e := seg.docs[i]
			id := base + DocID(i)
			ix.docs = append(ix.docs, e)
			ix.deleted = append(ix.deleted, false)
			ix.byExt[e.extID] = id
			ix.liveDocs++
			ids = append(ids, id)
			// Dense per-field stats; the first occurrence of a field name
			// in a document wins, matching the old linear-scan lookup.
			for _, f := range e.fields {
				fd := ix.fieldData(f.name)
				fd.ensure(len(ix.docs))
				if fd.weights[id] == 0 {
					fd.lens[id] = int32(f.length)
					fd.weights[id] = f.weight
				}
			}
		}
		for key, pl := range seg.postings {
			dst := ix.postings[key]
			if dst == nil {
				dst = &postingList{}
				ix.postings[key] = dst
			}
			for _, p := range pl.entries {
				dst.entries = append(dst.entries, posting{doc: p.doc + base, positions: p.positions})
			}
			dst.live += pl.live
		}
		for name, v := range seg.fieldTotals {
			ix.fieldTotals[name] += v
		}
		for name, v := range seg.fieldDocs {
			ix.fieldDocs[name] += v
		}
	}
	if total > 0 {
		ix.gen.Add(1)
	}
	return ids, nil
}

// BatchStats reports where an AddBatch spent its time: the parallel
// tokenize-and-build phase versus the serialized merge.
type BatchStats struct {
	Docs      int
	Workers   int
	BuildWall time.Duration
	MergeWall time.Duration
}

// AddBatch indexes a batch of documents, tokenizing on up to workers
// goroutines (0 means GOMAXPROCS) and merging the resulting segments into
// the index in one short critical section. The returned DocIDs are in batch
// order and identical to what a serial Add loop would have assigned. A
// duplicate or empty external ID fails the whole batch; the index is only
// mutated when every document validates.
func (ix *Index) AddBatch(docs []Document, workers int) ([]DocID, error) {
	ids, _, err := ix.AddBatchStats(docs, workers)
	return ids, err
}

// AddBatchStats is AddBatch returning build/merge timing for telemetry.
func (ix *Index) AddBatchStats(docs []Document, workers int) ([]DocID, BatchStats, error) {
	var stats BatchStats
	if len(docs) == 0 {
		return nil, stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	stats.Docs = len(docs)
	stats.Workers = workers

	build := time.Now()
	segs := make([]*segment, workers)
	errs := make([]error, workers)
	chunk := (len(docs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(docs) {
			hi = len(docs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			seg := newSegment(ix.analyzer)
			for _, d := range docs[lo:hi] {
				if err := seg.add(d); err != nil {
					errs[w] = err
					return
				}
			}
			segs[w] = seg
		}(w, lo, hi)
	}
	wg.Wait()
	stats.BuildWall = time.Since(build)
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	built := segs[:0]
	for _, seg := range segs {
		if seg != nil {
			built = append(built, seg)
		}
	}

	merge := time.Now()
	ids, err := ix.mergeSegments(built)
	stats.MergeWall = time.Since(merge)
	return ids, stats, err
}
