package crawler

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/annotators"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/siapi"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
	"repro/internal/trace"
)

func writeTestTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"DEAL A/overview.txt": "Deal Overview\nCustomer: Acme\n",
		"DEAL A/team.grid":    "GRID Roster\nName | Role | Email | Phone\nJo Park | CSE | jo.park@ibm.com |\n",
		"DEAL A/mail.eml":     "From: jo.park@ibm.com\nTo: x@ibm.com\nSubject: hello\n\nStorage Management Services progress.\n",
		"DEAL B/notes.txt":    "Notes\nEnd User Services rollout discussion.\n",
		"DEAL B/bad.xyz":      "unparseable format",
	}
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestFSReader(t *testing.T) {
	root := writeTestTree(t)
	r, err := NewFSReader(root)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	deals := map[string]bool{}
	for {
		d, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d.Path)
		deals[d.DealID] = true
	}
	if len(docs) != 4 {
		t.Fatalf("docs = %v", docs)
	}
	if r.Skipped() != 1 {
		t.Fatalf("skipped = %d", r.Skipped())
	}
	if !deals["DEAL A"] || !deals["DEAL B"] {
		t.Fatalf("deals = %v", deals)
	}
	// Stable order: paths sorted.
	for i := 1; i < len(docs); i++ {
		if docs[i-1] >= docs[i] {
			t.Fatalf("order not sorted: %v", docs)
		}
	}
}

func TestFSReaderMissingRoot(t *testing.T) {
	if _, err := NewFSReader("/nonexistent/path/xyz"); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestIndexWriterConceptFields(t *testing.T) {
	root := writeTestTree(t)
	reader, err := NewFSReader(root)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New(textproc.DefaultAnalyzer)
	w := &IndexWriter{Ix: ix}
	p := &analysis.Pipeline{
		Reader:    reader,
		Annotator: annotators.NewEILFlow(taxonomy.Default()),
		Consumers: []analysis.Consumer{w},
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Docs != 4 || w.Docs() != 4 {
		t.Fatalf("stats = %+v, indexed %d", stats, w.Docs())
	}
	e := siapi.NewEngine(ix)
	// Keyword search sees email headers.
	if n := e.Count(siapi.Query{All: []string{"jo.park"}}); n == 0 {
		t.Fatal("email headers not indexed")
	}
	// Concept field: tower annotation became a keyword field.
	q := index.TermQuery{Field: "tower", Term: index.KeywordTerm("Storage Management Services")}
	if n := ix.Count(q); n != 1 {
		t.Fatalf("tower concept hits = %d", n)
	}
	// Concept field: person from the roster.
	q = index.TermQuery{Field: "person", Term: index.KeywordTerm("Jo Park")}
	if n := ix.Count(q); n == 0 {
		t.Fatal("person concept missing")
	}
	// Deal scoping works through the crawler-supplied deal field.
	if n := e.Count(siapi.Query{All: []string{"services"}, Deals: []string{"DEAL B"}}); n != 1 {
		t.Fatalf("scoped count = %d", n)
	}
}

func TestWriteTreeRoundTrip(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := WriteTree(root, corpus.Docs, corpus.Raw); err != nil {
		t.Fatal(err)
	}
	reader, err := NewFSReader(root)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		d, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if d.DealID == "" {
			t.Fatalf("doc %s lost its deal", d.Path)
		}
		n++
	}
	if n != len(corpus.Docs) {
		t.Fatalf("round trip: %d of %d docs", n, len(corpus.Docs))
	}
	if reader.Skipped() != 0 {
		t.Fatalf("skipped = %d", reader.Skipped())
	}
}

func TestIndexWriterFlushTraced(t *testing.T) {
	root := writeTestTree(t)
	reader, err := NewFSReader(root)
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Options{SampleEvery: 100}) // flushes force through sampling
	w := &IndexWriter{Ix: index.New(textproc.DefaultAnalyzer), BatchSize: 3, Tracer: tracer}
	p := &analysis.Pipeline{
		Reader:    reader,
		Annotator: annotators.NewEILFlow(taxonomy.Default()),
		Consumers: []analysis.Consumer{w},
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 docs with BatchSize 3: one mid-run flush plus the End flush.
	traces := tracer.Recent(0)
	if len(traces) != 2 {
		t.Fatalf("flush traces = %d, want 2", len(traces))
	}
	total := 0
	for _, tr := range traces {
		if tr.Route != "ingest.flush" {
			t.Fatalf("route = %q", tr.Route)
		}
		attrs := map[string]string{}
		for _, a := range tr.Spans()[0].Attrs {
			attrs[a.Key] = a.Value
		}
		n, err := strconv.Atoi(attrs["docs"])
		if err != nil {
			t.Fatalf("docs attr = %q", attrs["docs"])
		}
		total += n
		if attrs["build_seconds"] == "" || attrs["merge_seconds"] == "" {
			t.Fatalf("timing attrs missing: %v", attrs)
		}
	}
	if total != 4 {
		t.Fatalf("flushed docs = %d, want 4", total)
	}
}

func TestFSReaderCountsParseErrors(t *testing.T) {
	root := writeTestTree(t)
	// A malformed email (bad header line) fails its parser — distinct from
	// bad.xyz, which fails format dispatch.
	if err := os.WriteFile(filepath.Join(root, "DEAL B/broken.eml"), []byte("not a header\nbody"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := NewFSReader(root)
	if err != nil {
		t.Fatal(err)
	}
	r.Metrics = obs.NewRegistry()
	n := 0
	for {
		d, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("a bad file aborted the crawl: %v", err)
		}
		if d == nil {
			t.Fatal("nil document without error")
		}
		n++
	}
	if n != 4 {
		t.Fatalf("parsed %d documents, want 4", n)
	}
	if r.Skipped() != 2 {
		t.Fatalf("skipped = %d, want 2", r.Skipped())
	}
	if got := r.Metrics.Counter("ingest_parse_errors_total", "format", "xyz").Value(); got != 1 {
		t.Fatalf("parse errors for xyz = %v, want 1", got)
	}
	if got := r.Metrics.Counter("ingest_parse_errors_total", "format", "eml").Value(); got != 1 {
		t.Fatalf("parse errors for eml = %v, want 1", got)
	}
	skips := r.SkippedFiles()
	if len(skips) != 2 {
		t.Fatalf("skip records = %+v", skips)
	}
	for _, s := range skips {
		if s.Path == "" || s.Err == nil {
			t.Fatalf("incomplete skip record %+v", s)
		}
	}
}
