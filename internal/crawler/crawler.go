// Package crawler is EIL's Data Acquisition layer: it walks engagement-
// workbook repositories on disk into parsed documents (a CollectionReader
// for the analysis pipeline) and provides the IndexWriter consumer that
// populates the semantic full-text index — including the concept fields
// derived from annotations, which is what makes the index "semantic" rather
// than purely lexical.
package crawler

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/annotators"
	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/siapi"
	"repro/internal/trace"
)

// FSReader reads a repository tree: every regular file under Root whose
// extension a parser understands becomes a document; the first path element
// under Root names the business activity (one directory per engagement
// workbook). Files that fail to parse are skipped, counted into
// ingest_parse_errors_total (labelled by file extension), and retained for
// the operator's skip report — one bad workbook must not abort the crawl.
type FSReader struct {
	Root string
	// Metrics, when set, counts parse failures per format.
	Metrics *obs.Registry

	paths   []string
	i       int
	skipped int
	skips   []SkippedFile
}

// SkippedFile records one file the crawl could not parse.
type SkippedFile struct {
	Path string
	Err  error
}

// NewFSReader lists the tree eagerly (stable, sorted order) and returns a
// reader over it.
func NewFSReader(root string) (*FSReader, error) {
	r := &FSReader{Root: root}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			r.paths = append(r.paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("crawler: walk %s: %w", root, err)
	}
	sort.Strings(r.paths)
	return r, nil
}

// Skipped reports how many files failed to parse.
func (r *FSReader) Skipped() int { return r.skipped }

// maxSkipDetail bounds the retained skip records so a tree full of garbage
// cannot balloon memory; the total count is always exact.
const maxSkipDetail = 100

// SkippedFiles returns the recorded parse failures (capped at
// maxSkipDetail entries; Skipped() has the exact total).
func (r *FSReader) SkippedFiles() []SkippedFile { return r.skips }

// Next implements analysis.CollectionReader.
func (r *FSReader) Next() (*docmodel.Document, error) {
	for r.i < len(r.paths) {
		path := r.paths[r.i]
		r.i++
		content, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("crawler: read %s: %w", path, err)
		}
		rel, err := filepath.Rel(r.Root, path)
		if err != nil {
			return nil, fmt.Errorf("crawler: rel %s: %w", path, err)
		}
		rel = filepath.ToSlash(rel)
		doc, err := docparse.Parse(rel, string(content))
		if err != nil {
			r.skipped++
			ext := strings.TrimPrefix(filepath.Ext(rel), ".")
			if ext == "" {
				ext = "none"
			}
			r.Metrics.Counter("ingest_parse_errors_total", "format", ext).Inc()
			if len(r.skips) < maxSkipDetail {
				r.skips = append(r.skips, SkippedFile{Path: rel, Err: err})
			}
			continue
		}
		if i := strings.IndexByte(rel, '/'); i > 0 {
			doc.DealID = rel[:i]
		}
		return doc, nil
	}
	return nil, io.EOF
}

// WriteTree writes documents to disk under root, one directory per deal —
// the inverse of FSReader, used by the corpus generator CLI.
func WriteTree(root string, docs []*docmodel.Document, contents map[string]string) error {
	for _, d := range docs {
		path := filepath.Join(root, filepath.FromSlash(d.Path))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("crawler: mkdir: %w", err)
		}
		content, ok := contents[d.Path]
		if !ok {
			content = d.Body
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("crawler: write %s: %w", path, err)
		}
	}
	return nil
}

// defaultIndexBatch is how many documents the IndexWriter buffers before
// handing a batch to the parallel segment builder.
const defaultIndexBatch = 256

// IndexWriter is the pipeline consumer that populates the semantic index:
// the document's lexical fields plus concept fields distilled from its
// annotations (towers, people, roles, technology solutions), so SIAPI
// queries can target concepts directly. Documents are buffered and indexed
// in batches through index.AddBatch, so tokenization fans out across workers
// instead of serializing behind the index lock.
type IndexWriter struct {
	Ix *index.Index
	// Workers caps tokenization fan-out per flushed batch; 0 means
	// GOMAXPROCS.
	Workers int
	// BatchSize is the flush threshold; 0 means defaultIndexBatch.
	BatchSize int
	// Metrics, when set, records segment build/merge timing per flush.
	Metrics *obs.Registry
	// Tracer, when set, records one trace per flushed batch (flushes are
	// rare, so every flush is traced regardless of the sampling rate).
	Tracer *trace.Tracer

	pending []index.Document
	docs    int
}

// Name implements analysis.Consumer.
func (w *IndexWriter) Name() string { return "index-writer" }

// Docs reports how many documents were indexed (flushed batches only).
func (w *IndexWriter) Docs() int { return w.docs }

// Flush indexes all buffered documents as one parallel batch. Callers that
// bypass the pipeline (which flushes via End) must call it before searching.
func (w *IndexWriter) Flush() error {
	if len(w.pending) == 0 {
		return nil
	}
	ctx, ftr := w.Tracer.Start(context.Background(), "ingest.flush", trace.StartOptions{Force: true})
	root := trace.FromContext(ctx)
	root.SetInt("docs", len(w.pending))
	ids, stats, err := w.Ix.AddBatchStats(w.pending, w.Workers)
	w.pending = w.pending[:0]
	if err != nil {
		root.Set("error", err.Error())
		ftr.Finish()
		return fmt.Errorf("crawler: index batch: %w", err)
	}
	root.Set("build_seconds", strconv.FormatFloat(stats.BuildWall.Seconds(), 'f', 6, 64))
	root.Set("merge_seconds", strconv.FormatFloat(stats.MergeWall.Seconds(), 'f', 6, 64))
	ftr.Finish()
	w.Metrics.Histogram("ingest_segment_build_seconds", nil).Observe(stats.BuildWall.Seconds())
	w.Metrics.Histogram("ingest_segment_merge_seconds", nil).Observe(stats.MergeWall.Seconds())
	w.docs += len(ids)
	return nil
}

// Consume implements analysis.Consumer.
func (w *IndexWriter) Consume(cas *analysis.CAS) error {
	doc := cas.Doc
	body := doc.Body
	// Email headers are part of what an enterprise crawler indexes; fold
	// them into the body field so keyword search sees addresses.
	if doc.Structure != nil && doc.Structure.Headers != nil {
		var keys []string
		for k := range doc.Structure.Headers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var hb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&hb, "%s: %s\n", k, doc.Structure.Headers[k])
		}
		body = hb.String() + "\n" + body
	}
	fields := []index.Field{
		{Name: siapi.FieldTitle, Text: doc.Title, Weight: 2},
		{Name: siapi.FieldBody, Text: body},
	}
	if doc.DealID != "" {
		fields = append(fields, index.Field{Name: siapi.FieldDeal, Text: doc.DealID, Keyword: true})
	}
	// Concept fields from annotations.
	addConcept := func(name, value string) {
		if value != "" {
			fields = append(fields, index.Field{Name: name, Text: value, Keyword: true})
		}
	}
	for _, a := range cas.All() {
		switch a.Type {
		case annotators.TypeScope:
			addConcept("tower", a.Feature("tower"))
			addConcept("subtower", a.Feature("subtower"))
		case annotators.TypePerson:
			addConcept("person", a.Feature("name"))
			addConcept("role", a.Feature("role"))
			addConcept("org", a.Feature("org"))
		case annotators.TypeTechSolution:
			fields = append(fields, index.Field{Name: "techsolution", Text: a.Feature("text")})
		case annotators.TypeWinStrategy:
			fields = append(fields, index.Field{Name: "winstrategy", Text: a.Feature("text")})
		}
	}
	meta := map[string]string{"deal": doc.DealID, "type": string(doc.Type)}
	w.pending = append(w.pending, index.Document{ExtID: doc.Path, Fields: fields, Meta: meta})
	limit := w.BatchSize
	if limit <= 0 {
		limit = defaultIndexBatch
	}
	if len(w.pending) >= limit {
		return w.Flush()
	}
	return nil
}

// End implements analysis.Consumer.
func (w *IndexWriter) End() error { return w.Flush() }
