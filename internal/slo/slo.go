// Package slo evaluates service-level objectives over the HTTP metrics the
// web middleware already records: per-route availability (non-5xx fraction)
// and latency (fraction of requests under the p99 target) as multi-window
// burn rates, the Google-SRE shape ("how fast is this route spending its
// error budget over the last 5m / 1h / 6h").
//
// The engine is a sampler, not a store: on every Tick it snapshots the
// cumulative http_requests_total / http_request_seconds figures per route
// into a bounded ring, and burn rates are window deltas over that ring —
// burn = (bad fraction in window) / (budget fraction). A burn rate of 1
// means the route spends its budget exactly as fast as the objective
// allows; 14.4 (the classic page threshold for a 99.9% / 30d objective)
// means the whole month's budget would be gone in two days.
//
// Results surface three ways: eil_slo_* gauges on /metrics, the /api/slo
// JSON report, and burn sparklines on /debug/dash.
package slo

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Objective is one route's targets. The availability objective is the
// fraction of requests that must not be 5xx; the latency objective is the
// duration the 99th percentile must stay under (so its implied budget is
// the slowest 1% of requests).
type Objective struct {
	Availability float64       `json:"availability"`
	LatencyP99   time.Duration `json:"-"`
}

// SLO dimension labels used in gauges and reports.
const (
	SLOAvailability = "availability"
	SLOLatency      = "latency"
)

// DefWindows are the default burn-rate windows, ascending.
var DefWindows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}

// Multi-window alert thresholds (Google SRE workbook, 99.9%/30d scaling):
// page when the short and medium windows both burn faster than 14.4x,
// ticket when the medium and long windows both burn faster than 6x.
const (
	PageBurn   = 14.4
	TicketBurn = 6.0
)

// Options configures an Engine.
type Options struct {
	// Registry is the metrics source (http_*) and gauge sink (eil_slo_*).
	Registry *obs.Registry
	// Default is the objective applied to every observed route without a
	// PerRoute override. Zero fields get 0.999 availability / 250ms p99.
	Default Objective
	// PerRoute overrides objectives for specific routes.
	PerRoute map[string]Objective
	// Windows are the burn-rate windows, ascending (nil = DefWindows).
	Windows []time.Duration
	// Interval is the expected Tick cadence, used only to size the sample
	// ring so it covers the longest window (0 = 10s).
	Interval time.Duration
	// SkipRoute drops routes from evaluation; nil skips the scrape/probe
	// endpoints (/metrics, /healthz, /readyz, /debug/*, unmatched).
	SkipRoute func(route string) bool
	// OnAlert, if set, is called whenever a route's alert level changes
	// (edge-triggered: once per ok→ticket→page transition in either
	// direction, not once per Tick spent in that state). It runs on the
	// Tick goroutine without the engine lock held, so it may call Report
	// or kick off work like a pprof capture — but should not block long,
	// or it delays the sampling cadence.
	OnAlert func(route, alert string)
}

// DefaultSkipRoute is the default route filter: probe and scrape traffic
// has no user-facing objective.
func DefaultSkipRoute(route string) bool {
	return route == "/metrics" || route == "/healthz" || route == "/readyz" ||
		route == "/api/slo" || route == "unmatched" || strings.HasPrefix(route, "/debug/")
}

// routeCounts is one route's cumulative tally at one instant.
type routeCounts struct {
	total  float64 // requests
	errors float64 // 5xx requests
	slow   float64 // requests over the latency objective
}

// sample is one Tick's reading across routes.
type sample struct {
	t      time.Time
	routes map[string]routeCounts
}

// Engine evaluates objectives over a ring of samples. Drive it with Tick
// (the runtimetel collector's AppSampler is the usual driver) or Run.
type Engine struct {
	opts    Options
	windows []time.Duration

	mu        sync.Mutex
	ring      []sample
	next      int
	full      bool
	lastRep   Report
	hasRep    bool
	prevAlert map[string]string // route -> last reported alert level
}

// New returns an engine with defaults filled.
func New(opts Options) *Engine {
	if opts.Default.Availability <= 0 || opts.Default.Availability >= 1 {
		opts.Default.Availability = 0.999
	}
	if opts.Default.LatencyP99 <= 0 {
		opts.Default.LatencyP99 = 250 * time.Millisecond
	}
	if opts.SkipRoute == nil {
		opts.SkipRoute = DefaultSkipRoute
	}
	windows := opts.Windows
	if len(windows) == 0 {
		windows = DefWindows
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	interval := opts.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	// Ring covers the longest window plus slack, bounded so a misconfigured
	// 1ms interval cannot allocate unbounded history.
	n := int(windows[len(windows)-1]/interval) + 8
	if n > 8192 {
		n = 8192
	}
	return &Engine{opts: opts, windows: windows, ring: make([]sample, n), prevAlert: map[string]string{}}
}

// Windows returns the configured burn windows, ascending.
func (e *Engine) Windows() []time.Duration { return e.windows }

// objective returns the effective objective for a route.
func (e *Engine) objective(route string) Objective {
	if o, ok := e.opts.PerRoute[route]; ok {
		if o.Availability <= 0 || o.Availability >= 1 {
			o.Availability = e.opts.Default.Availability
		}
		if o.LatencyP99 <= 0 {
			o.LatencyP99 = e.opts.Default.LatencyP99
		}
		return o
	}
	return e.opts.Default
}

// collect reads the registry's cumulative per-route figures.
func (e *Engine) collect() map[string]routeCounts {
	routes := map[string]routeCounts{}
	type histInfo struct {
		bounds []float64
		cum    []float64
		count  float64
	}
	hists := map[string]histInfo{}
	for _, s := range e.opts.Registry.Snapshots() {
		switch s.Name {
		case "http_requests_total":
			route := s.Labels["route"]
			if route == "" || e.opts.SkipRoute(route) {
				continue
			}
			rc := routes[route]
			rc.total += s.Value
			if s.Labels["code"] == "5xx" {
				rc.errors += s.Value
			}
			routes[route] = rc
		case "http_request_seconds":
			route := s.Labels["route"]
			if route == "" || e.opts.SkipRoute(route) {
				continue
			}
			hists[route] = parseHist(s)
		}
	}
	for route, rc := range routes {
		if h, ok := hists[route]; ok && h.count > 0 {
			o := e.objective(route)
			good := countLE(h.bounds, h.cum, o.LatencyP99.Seconds())
			rc.slow = h.count - good
			if rc.slow < 0 {
				rc.slow = 0
			}
			routes[route] = rc
		}
	}
	return routes
}

// parseHist converts a histogram snapshot's stringified bucket map back
// into sorted bounds and cumulative counts.
func parseHist(s obs.Snapshot) (h struct {
	bounds []float64
	cum    []float64
	count  float64
}) {
	h.count = float64(s.Count)
	type bb struct {
		bound float64
		cum   float64
	}
	var bs []bb
	for k, v := range s.Buckets {
		if k == "+Inf" {
			continue
		}
		f, err := strconv.ParseFloat(k, 64)
		if err != nil {
			continue
		}
		bs = append(bs, bb{f, float64(v)})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].bound < bs[j].bound })
	for _, b := range bs {
		h.bounds = append(h.bounds, b.bound)
		h.cum = append(h.cum, b.cum)
	}
	return h
}

// countLE estimates how many observations were <= threshold from cumulative
// bucket counts, interpolating inside the owning bucket. Observations in
// the +Inf bucket count as above any finite threshold.
func countLE(bounds, cum []float64, threshold float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(bounds, threshold)
	if i >= len(bounds) {
		return cum[len(cum)-1]
	}
	if bounds[i] == threshold {
		return cum[i]
	}
	lo, loCum := 0.0, 0.0
	if i > 0 {
		lo, loCum = bounds[i-1], cum[i-1]
	}
	hi := bounds[i]
	inBucket := cum[i] - loCum
	if inBucket <= 0 || hi <= lo {
		return loCum
	}
	return loCum + inBucket*(threshold-lo)/(hi-lo)
}

// quantileFromCum estimates a quantile from cumulative bucket counts, the
// way obs.Histogram.Quantile does (values past the last bound clamp to it).
func quantileFromCum(bounds, cum []float64, total, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * total
	for i := range bounds {
		if cum[i] >= rank {
			lo, loCum := 0.0, 0.0
			if i > 0 {
				lo, loCum = bounds[i-1], cum[i-1]
			}
			in := cum[i] - loCum
			if in <= 0 {
				return bounds[i]
			}
			return lo + (bounds[i]-lo)*(rank-loCum)/in
		}
	}
	return bounds[len(bounds)-1]
}

// Tick takes one sample at now, recomputes burn rates, publishes the
// eil_slo_* gauges, and caches the report. Call it on a fixed cadence.
func (e *Engine) Tick(now time.Time) {
	e.mu.Lock()
	e.ring[e.next] = sample{t: now, routes: e.collect()}
	e.next++
	if e.next == len(e.ring) {
		e.next = 0
		e.full = true
	}
	e.lastRep = e.reportLocked(now)
	e.hasRep = true
	e.publishLocked(e.lastRep)

	// Collect alert transitions under the lock, fire the callback outside
	// it so a handler may re-enter the engine (Report, PeakBurn).
	type transition struct{ route, alert string }
	var fired []transition
	if e.opts.OnAlert != nil {
		for _, rr := range e.lastRep.Routes {
			prev, seen := e.prevAlert[rr.Route]
			if !seen {
				prev = "ok"
			}
			if rr.Alert != prev {
				fired = append(fired, transition{rr.Route, rr.Alert})
			}
			e.prevAlert[rr.Route] = rr.Alert
		}
	}
	e.mu.Unlock()
	for _, tr := range fired {
		e.opts.OnAlert(tr.route, tr.alert)
	}
}

// Run ticks the engine every interval until ctx is done — for deployments
// without a runtimetel collector driving it.
func (e *Engine) Run(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	e.Tick(time.Now())
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			e.Tick(time.Now())
		}
	}
}

// samplesLocked returns retained samples oldest first.
func (e *Engine) samplesLocked() []sample {
	if !e.full {
		return e.ring[:e.next]
	}
	out := make([]sample, 0, len(e.ring))
	out = append(out, e.ring[e.next:]...)
	out = append(out, e.ring[:e.next]...)
	return out
}

// WindowBurn is one window's burn state for one route.
type WindowBurn struct {
	Window           string  `json:"window"`
	Requests         float64 `json:"requests"`
	ErrorFraction    float64 `json:"error_fraction"`
	SlowFraction     float64 `json:"slow_fraction"`
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
	// Partial marks a window the sample ring does not yet reach back across
	// (process younger than the window); the burn is over the covered span.
	Partial bool `json:"partial,omitempty"`
}

// RouteReport is one route's full SLO state.
type RouteReport struct {
	Route                      string       `json:"route"`
	AvailabilityObjective      float64      `json:"availability_objective"`
	LatencyP99ObjectiveSeconds float64      `json:"latency_p99_objective_seconds"`
	Requests                   float64      `json:"requests"`
	Errors                     float64      `json:"errors"`
	ObservedAvailability       float64      `json:"observed_availability"`
	ObservedP99Seconds         float64      `json:"observed_p99_seconds"`
	Compliant                  bool         `json:"compliant"`
	Alert                      string       `json:"alert"` // ok | ticket | page
	Windows                    []WindowBurn `json:"windows"`
}

// Report is the /api/slo document.
type Report struct {
	CheckedAt time.Time     `json:"checked_at"`
	Windows   []string      `json:"windows"`
	Routes    []RouteReport `json:"routes"`
}

// Report evaluates burn rates as of now over the retained samples.
func (e *Engine) Report(now time.Time) Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reportLocked(now)
}

// LastReport returns the report cached by the most recent Tick (ok=false
// before the first Tick).
func (e *Engine) LastReport() (Report, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastRep, e.hasRep
}

// PeakBurn reports the worst availability burn rate across routes at the
// shortest window, per the last Tick — the single "how much trouble are we
// in" number the dashboard sparkline and telemetry samples carry.
func (e *Engine) PeakBurn() float64 {
	rep, ok := e.LastReport()
	if !ok {
		return 0
	}
	peak := 0.0
	for _, rr := range rep.Routes {
		if len(rr.Windows) > 0 && rr.Windows[0].AvailabilityBurn > peak {
			peak = rr.Windows[0].AvailabilityBurn
		}
	}
	return peak
}

func (e *Engine) reportLocked(now time.Time) Report {
	rep := Report{CheckedAt: now}
	for _, w := range e.windows {
		rep.Windows = append(rep.Windows, w.String())
	}
	samples := e.samplesLocked()
	if len(samples) == 0 {
		return rep
	}
	cur := samples[len(samples)-1]

	// Stable route order.
	routes := make([]string, 0, len(cur.routes))
	for r := range cur.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	// Cumulative latency views for observed p99.
	hists := map[string]struct {
		bounds []float64
		cum    []float64
		count  float64
	}{}
	for _, s := range e.opts.Registry.Snapshots() {
		if s.Name == "http_request_seconds" {
			if route := s.Labels["route"]; route != "" && !e.opts.SkipRoute(route) {
				hists[route] = parseHist(s)
			}
		}
	}

	for _, route := range routes {
		o := e.objective(route)
		rc := cur.routes[route]
		rr := RouteReport{
			Route:                      route,
			AvailabilityObjective:      o.Availability,
			LatencyP99ObjectiveSeconds: o.LatencyP99.Seconds(),
			Requests:                   rc.total,
			Errors:                     rc.errors,
		}
		if rc.total > 0 {
			rr.ObservedAvailability = 1 - rc.errors/rc.total
		} else {
			rr.ObservedAvailability = 1
		}
		if h, ok := hists[route]; ok {
			rr.ObservedP99Seconds = quantileFromCum(h.bounds, h.cum, h.count, 0.99)
		}
		rr.Compliant = rr.ObservedAvailability >= o.Availability &&
			(rr.ObservedP99Seconds == 0 || rr.ObservedP99Seconds <= o.LatencyP99.Seconds())

		availBudget := 1 - o.Availability
		for _, w := range e.windows {
			base := baseSample(samples, now.Add(-w))
			wb := WindowBurn{Window: w.String()}
			span := cur.t.Sub(base.t)
			wb.Partial = span < w-w/20
			var dTotal, dErr, dSlow float64
			if brc, ok := base.routes[route]; ok {
				dTotal = rc.total - brc.total
				dErr = rc.errors - brc.errors
				dSlow = rc.slow - brc.slow
			} else {
				dTotal, dErr, dSlow = rc.total, rc.errors, rc.slow
			}
			if dTotal > 0 {
				wb.Requests = dTotal
				wb.ErrorFraction = clamp01(dErr / dTotal)
				wb.SlowFraction = clamp01(dSlow / dTotal)
				wb.AvailabilityBurn = wb.ErrorFraction / availBudget
				wb.LatencyBurn = wb.SlowFraction / 0.01 // p99 objective => 1% budget
			}
			rr.Windows = append(rr.Windows, wb)
		}
		rr.Alert = alertFor(rr.Windows)
		rep.Routes = append(rep.Routes, rr)
	}
	return rep
}

// baseSample returns the newest sample at or before t (the oldest retained
// one when the ring does not reach back that far).
func baseSample(samples []sample, t time.Time) sample {
	base := samples[0]
	for _, s := range samples {
		if s.t.After(t) {
			break
		}
		base = s
	}
	return base
}

// alertFor applies the multi-window, multi-burn-rate rule: page on fast
// burn over the two shortest windows, ticket on sustained burn over the
// two longest. Latency and availability burns both count.
func alertFor(ws []WindowBurn) string {
	burn := func(i int) float64 {
		if i < 0 || i >= len(ws) {
			return 0
		}
		return math.Max(ws[i].AvailabilityBurn, ws[i].LatencyBurn)
	}
	n := len(ws)
	if n == 0 {
		return "ok"
	}
	switch {
	case n == 1:
		if burn(0) > PageBurn {
			return "page"
		}
	case burn(0) > PageBurn && burn(1) > PageBurn:
		return "page"
	case burn(n-2) > TicketBurn && burn(n-1) > TicketBurn:
		return "ticket"
	}
	return "ok"
}

// publishLocked exports the cached report as gauges.
func (e *Engine) publishLocked(rep Report) {
	reg := e.opts.Registry
	for _, rr := range rep.Routes {
		for _, wb := range rr.Windows {
			reg.Gauge("eil_slo_burn_rate", "route", rr.Route, "slo", SLOAvailability, "window", wb.Window).Set(wb.AvailabilityBurn)
			reg.Gauge("eil_slo_burn_rate", "route", rr.Route, "slo", SLOLatency, "window", wb.Window).Set(wb.LatencyBurn)
		}
		if len(rr.Windows) > 0 {
			last := rr.Windows[len(rr.Windows)-1]
			reg.Gauge("eil_slo_budget_remaining", "route", rr.Route, "slo", SLOAvailability).Set(clamp01(1 - last.AvailabilityBurn))
			reg.Gauge("eil_slo_budget_remaining", "route", rr.Route, "slo", SLOLatency).Set(clamp01(1 - last.LatencyBurn))
		}
		compliant := 0.0
		if rr.Compliant {
			compliant = 1
		}
		reg.Gauge("eil_slo_compliant", "route", rr.Route).Set(compliant)
	}
}

// clamp01 floors at zero; burns legitimately exceed 1, so no upper clamp.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
