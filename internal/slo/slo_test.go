package slo

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCountLE(t *testing.T) {
	bounds := []float64{0.1, 0.25, 0.5}
	cum := []float64{10, 30, 40} // 10 <=0.1, 20 in (0.1,0.25], 10 in (0.25,0.5]
	cases := []struct {
		threshold float64
		want      float64
	}{
		{0.1, 10},   // exact bound
		{0.25, 30},  // exact bound
		{0.175, 20}, // midpoint of (0.1, 0.25] -> half its 20
		{0.05, 5},   // halfway into the first bucket
		{1.0, 40},   // past the last bound: everything finite
		{0.375, 35}, // midpoint of (0.25, 0.5]
	}
	for _, c := range cases {
		if got := countLE(bounds, cum, c.threshold); got != c.want {
			t.Errorf("countLE(%v) = %v, want %v", c.threshold, got, c.want)
		}
	}
	if got := countLE(nil, nil, 0.5); got != 0 {
		t.Errorf("countLE with no buckets = %v, want 0", got)
	}
}

func TestQuantileFromCum(t *testing.T) {
	bounds := []float64{0.1, 0.2}
	cum := []float64{50, 100}
	if got := quantileFromCum(bounds, cum, 100, 0.5); got != 0.1 {
		t.Errorf("p50 = %v, want 0.1", got)
	}
	// rank 75 is halfway through the second bucket's 50 observations.
	if got := quantileFromCum(bounds, cum, 100, 0.75); got < 0.1499 || got > 0.1501 {
		t.Errorf("p75 = %v, want ~0.15", got)
	}
	if got := quantileFromCum(bounds, cum, 0, 0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestAlertFor(t *testing.T) {
	w := func(avail float64) WindowBurn { return WindowBurn{AvailabilityBurn: avail} }
	cases := []struct {
		name string
		ws   []WindowBurn
		want string
	}{
		{"quiet", []WindowBurn{w(0), w(0), w(0)}, "ok"},
		{"page: short and medium both fast", []WindowBurn{w(20), w(15), w(2)}, "page"},
		{"no page: only the short window spikes", []WindowBurn{w(20), w(1), w(0)}, "ok"},
		{"ticket: sustained over the long windows", []WindowBurn{w(2), w(7), w(6.5)}, "ticket"},
		{"latency burn counts too", []WindowBurn{
			{LatencyBurn: 20}, {LatencyBurn: 15}, {LatencyBurn: 0},
		}, "page"},
		{"empty", nil, "ok"},
	}
	for _, c := range cases {
		if got := alertFor(c.ws); got != c.want {
			t.Errorf("%s: alertFor = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestDefaultSkipRoute(t *testing.T) {
	for _, r := range []string{"/metrics", "/healthz", "/readyz", "/api/slo", "unmatched", "/debug/dash", "/debug/traces"} {
		if !DefaultSkipRoute(r) {
			t.Errorf("DefaultSkipRoute(%q) = false, want true", r)
		}
	}
	for _, r := range []string{"/api/search", "/", "/api/qlog"} {
		if DefaultSkipRoute(r) {
			t.Errorf("DefaultSkipRoute(%q) = true, want false", r)
		}
	}
}

// record simulates the web middleware's bookkeeping for one request.
func record(reg *obs.Registry, route, code string, latency time.Duration) {
	reg.Counter("http_requests_total", "route", route, "code", code).Inc()
	reg.Histogram("http_request_seconds", nil, "route", route).Observe(latency.Seconds())
}

func TestWindowDeltasRiseAndDecay(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Options{
		Registry: reg,
		Default:  Objective{Availability: 0.999, LatencyP99: 250 * time.Millisecond},
		Interval: time.Minute,
	})

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	record(reg, "/api/search", "2xx", 10*time.Millisecond)
	eng.Tick(t0)

	// An all-error minute.
	for i := 0; i < 10; i++ {
		record(reg, "/api/search", "5xx", 5*time.Millisecond)
	}
	eng.Tick(t0.Add(time.Minute))

	rep := eng.Report(t0.Add(time.Minute))
	if len(rep.Routes) != 1 || rep.Routes[0].Route != "/api/search" {
		t.Fatalf("routes = %+v, want just /api/search", rep.Routes)
	}
	rr := rep.Routes[0]
	short := rr.Windows[0]
	if short.Requests != 10 || short.ErrorFraction != 1 {
		t.Fatalf("5m window = %+v, want 10 requests all errors", short)
	}
	// 100% errors against a 0.1% budget: burn = 1/0.001 = 1000.
	if short.AvailabilityBurn < 999 || short.AvailabilityBurn > 1001 {
		t.Fatalf("availability burn = %v, want ~1000", short.AvailabilityBurn)
	}
	if rr.Alert != "page" {
		t.Fatalf("alert = %q during a total outage, want page", rr.Alert)
	}
	if got := eng.PeakBurn(); got != short.AvailabilityBurn {
		t.Fatalf("PeakBurn = %v, want %v", got, short.AvailabilityBurn)
	}
	if g := reg.Gauge("eil_slo_burn_rate", "route", "/api/search", "slo", SLOAvailability, "window", "5m0s"); g.Value() <= 0 {
		t.Fatalf("published burn gauge = %v, want > 0", g.Value())
	}

	// Errors stop, good traffic resumes; once the 5m base sample postdates
	// the burst, the short-window burn is zero again.
	for i := 0; i < 10; i++ {
		record(reg, "/api/search", "2xx", 5*time.Millisecond)
	}
	eng.Tick(t0.Add(2 * time.Minute))
	eng.Tick(t0.Add(9 * time.Minute))
	rep = eng.Report(t0.Add(9 * time.Minute))
	if burn := rep.Routes[0].Windows[0].AvailabilityBurn; burn != 0 {
		t.Fatalf("5m burn after recovery = %v, want 0", burn)
	}
	// The long windows still contain the outage, so the alert steps down
	// from page to ticket rather than clearing — exactly the multi-window
	// shape: fast recovery silences the page, the sustained damage lingers.
	if alert := rep.Routes[0].Alert; alert != "ticket" {
		t.Fatalf("alert after recovery = %q, want ticket (long windows remember)", alert)
	}
}

func TestLatencyBurn(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Options{
		Registry: reg,
		Default:  Objective{Availability: 0.999, LatencyP99: 50 * time.Millisecond},
		Interval: time.Minute,
	})
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	eng.Tick(t0)
	// Half the traffic blows the 50ms objective: slow fraction 0.5 against
	// the implied 1% budget is a burn of ~50.
	for i := 0; i < 20; i++ {
		lat := time.Millisecond
		if i%2 == 0 {
			lat = 2 * time.Second
		}
		record(reg, "/api/search", "2xx", lat)
	}
	eng.Tick(t0.Add(time.Minute))
	rep := eng.Report(t0.Add(time.Minute))
	lb := rep.Routes[0].Windows[0].LatencyBurn
	if lb < 40 || lb > 60 {
		t.Fatalf("latency burn = %v, want ~50", lb)
	}
	if avail := rep.Routes[0].Windows[0].AvailabilityBurn; avail != 0 {
		t.Fatalf("availability burn = %v, want 0 (no errors)", avail)
	}
}

func TestPartialWindowFlag(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Options{Registry: reg, Interval: time.Minute})
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	record(reg, "/api/search", "2xx", time.Millisecond)
	eng.Tick(t0)
	eng.Tick(t0.Add(time.Minute))
	rep := eng.Report(t0.Add(time.Minute))
	for _, wb := range rep.Routes[0].Windows {
		if !wb.Partial {
			t.Fatalf("window %s not marked partial with only 1m of history", wb.Window)
		}
	}
}

func TestSkipRouteFiltersScrapes(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Options{Registry: reg, Interval: time.Minute})
	record(reg, "/metrics", "2xx", time.Millisecond)
	record(reg, "/debug/traces", "2xx", time.Millisecond)
	eng.Tick(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	rep, ok := eng.LastReport()
	if !ok {
		t.Fatal("no report after Tick")
	}
	if len(rep.Routes) != 0 {
		t.Fatalf("scrape routes leaked into the report: %+v", rep.Routes)
	}
}

// OnAlert must fire once per level transition, not once per Tick spent in
// a bad state, and must fire the de-escalation too.
func TestOnAlertEdgeTriggered(t *testing.T) {
	reg := obs.NewRegistry()
	type event struct{ route, alert string }
	var events []event
	var eng *Engine
	eng = New(Options{
		Registry: reg,
		Default:  Objective{Availability: 0.999, LatencyP99: 250 * time.Millisecond},
		Interval: time.Minute,
		OnAlert: func(route, alert string) {
			// Re-entering the engine from the callback must not deadlock.
			_ = eng.PeakBurn()
			events = append(events, event{route, alert})
		},
	})

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	record(reg, "/api/search", "2xx", 10*time.Millisecond)
	eng.Tick(t0)
	if len(events) != 0 {
		t.Fatalf("events after healthy tick = %v, want none", events)
	}

	// A total outage: ok -> page on the next tick, then silence while the
	// state holds.
	for i := 0; i < 10; i++ {
		record(reg, "/api/search", "5xx", 5*time.Millisecond)
	}
	eng.Tick(t0.Add(time.Minute))
	eng.Tick(t0.Add(2 * time.Minute))
	if len(events) != 1 || events[0] != (event{"/api/search", "page"}) {
		t.Fatalf("events during outage = %v, want single page", events)
	}

	// Recovery: short window clears but long windows remember, so the level
	// steps page -> ticket — one more event.
	for i := 0; i < 10; i++ {
		record(reg, "/api/search", "2xx", 5*time.Millisecond)
	}
	eng.Tick(t0.Add(3 * time.Minute))
	eng.Tick(t0.Add(9 * time.Minute))
	if len(events) != 2 || events[1] != (event{"/api/search", "ticket"}) {
		t.Fatalf("events after recovery = %v, want page then ticket", events)
	}
}
