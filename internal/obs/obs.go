// Package obs is EIL's observability spine: a dependency-free metrics
// subsystem — named atomic counters, gauges, and fixed-bucket latency
// histograms in a concurrent-safe registry — plus lightweight span timing.
// The paper's improvement loop "analyz[es] a collection of queries and
// results" and tunes the system "as more data becomes available and
// additional evaluation is performed" (§4); obs supplies the per-stage cost
// accounting that loop needs, for both the offline pipeline and the online
// search path.
//
// All metric handles are nil-safe: methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops, and a nil *Registry hands out nil handles, so
// instrumented code never branches on "is telemetry enabled".
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefDurationBuckets are the default histogram bounds for durations, in
// seconds. In-memory stages run in microseconds while full ingests take
// seconds, so the range spans 1µs–5s.
var DefDurationBuckets = []float64{
	1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1, 5,
}

// DefSizeBuckets are the default histogram bounds for byte sizes (payloads,
// snapshots, journal records): 1KiB–1GiB in roughly 4x steps.
var DefSizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Label is one metric dimension (for example route="/api/search").
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// labelsFromKV pairs up a variadic key, value, key, value... list, sorted
// by key so the same label set always maps to the same metric.
func labelsFromKV(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// renderLabels formats labels in Prometheus exposition syntax, without
// braces ("" when empty). Extra labels (le) are appended by the renderer.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func key(name string, ls []Label) string {
	return name + "\xff" + renderLabels(ls)
}

// Counter retrieves or creates the counter for name and the label pairs
// (key, value, key, value...). Nil registries return a nil no-op handle.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := labelsFromKV(kv)
	k := key(name, ls)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{name: name, labels: ls}
		r.counters[k] = c
	}
	return c
}

// Gauge retrieves or creates the gauge for name and label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := labelsFromKV(kv)
	k := key(name, ls)
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{name: name, labels: ls}
		r.gauges[k] = g
	}
	return g
}

// Histogram retrieves or creates the histogram for name and label pairs.
// Buckets (ascending upper bounds; +Inf implicit) apply only on first
// creation; nil means DefDurationBuckets.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := labelsFromKV(kv)
	k := key(name, ls)
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		if buckets == nil {
			buckets = DefDurationBuckets
		}
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		h = &Histogram{
			name:      name,
			labels:    ls,
			bounds:    bounds,
			counts:    make([]atomic.Int64, len(bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
		}
		r.hists[k] = h
	}
	return h
}

// Counter is a monotonically increasing value, safe for concurrent use.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, safe for concurrent use.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets, tracking sum and count,
// safe for concurrent use. Each bucket optionally carries the most recent
// exemplar — a trace ID plus the observed value — so a histogram's p99
// bucket links to one concrete traced request (rendered as OpenMetrics
// exemplars in the Prometheus output).
type Histogram struct {
	name      string
	labels    []Label
	bounds    []float64      // ascending upper bounds; +Inf implicit
	counts    []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count     atomic.Int64
	sum       atomic.Uint64 // float64 bits, CAS-added
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one bucket to a concrete traced observation.
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time"`
}

// Observe records one value. An observation equal to a bound lands in that
// bound's bucket (le semantics).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar is Observe plus an exemplar: the owning bucket keeps
// the most recent (traceID, v) pair. An empty traceID degrades to Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	if traceID != "" && h.exemplars != nil {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
	h.Observe(v)
}

// Exemplars returns each bucket's retained exemplar, with nil entries for
// buckets that never saw one (one slot per bound plus +Inf).
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil || h.exemplars == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationWithExemplar records a duration in seconds with a trace
// exemplar.
func (h *Histogram) ObserveDurationWithExemplar(d time.Duration, traceID string) {
	h.ObserveWithExemplar(d.Seconds(), traceID)
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CumulativeCounts returns the Prometheus-style cumulative bucket counts,
// one per bound plus the trailing +Inf bucket.
func (h *Histogram) CumulativeCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the owning bucket, the way Prometheus histogram_quantile does.
// Returns 0 with no observations; values in the +Inf bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			inBucket := h.counts[i].Load()
			if inBucket == 0 {
				return hi
			}
			frac := (rank - float64(cum-inBucket)) / float64(inBucket)
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Timer measures one span of wall time.
type Timer struct{ start time.Time }

// StartTimer starts a span.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed reports time since the span started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// ObserveInto records the elapsed time into h (nil-safe) and returns it.
func (t Timer) ObserveInto(h *Histogram) time.Duration {
	d := t.Elapsed()
	h.ObserveDuration(d)
	return d
}

// fmtFloat renders a sample value the way Prometheus clients do.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the text exposition format
// (version 0.0.4), grouped by metric name with TYPE headers, sorted for
// deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool {
		if counters[i].name != counters[j].name {
			return counters[i].name < counters[j].name
		}
		return renderLabels(counters[i].labels) < renderLabels(counters[j].labels)
	})
	sort.Slice(gauges, func(i, j int) bool {
		if gauges[i].name != gauges[j].name {
			return gauges[i].name < gauges[j].name
		}
		return renderLabels(gauges[i].labels) < renderLabels(gauges[j].labels)
	})
	sort.Slice(hists, func(i, j int) bool {
		if hists[i].name != hists[j].name {
			return hists[i].name < hists[j].name
		}
		return renderLabels(hists[i].labels) < renderLabels(hists[j].labels)
	})

	var b strings.Builder
	lastType := func() func(name, typ string) {
		last := ""
		return func(name, typ string) {
			if name != last {
				fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
				last = name
			}
		}
	}

	typ := lastType()
	for _, c := range counters {
		typ(c.name, "counter")
		writeSample(&b, c.name, renderLabels(c.labels), "", float64(c.Value()))
	}
	typ = lastType()
	for _, g := range gauges {
		typ(g.name, "gauge")
		writeSample(&b, g.name, renderLabels(g.labels), "", g.Value())
	}
	typ = lastType()
	for _, h := range hists {
		typ(h.name, "histogram")
		base := renderLabels(h.labels)
		cum := h.CumulativeCounts()
		ex := h.Exemplars()
		for i, bound := range h.bounds {
			writeBucket(&b, h.name, base, fmtFloat(bound), float64(cum[i]), ex[i])
		}
		writeBucket(&b, h.name, base, "+Inf", float64(cum[len(cum)-1]), ex[len(ex)-1])
		writeSample(&b, h.name+"_sum", base, "", h.Sum())
		writeSample(&b, h.name+"_count", base, "", float64(h.Count()))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeBucket writes one histogram bucket line, appending the bucket's
// retained exemplar (OpenMetrics syntax: `# {trace_id="..."} value ts`)
// when one exists.
func writeBucket(b *strings.Builder, name, base, le string, v float64, e *Exemplar) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	if base != "" {
		b.WriteString(base)
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(fmtFloat(v))
	if e != nil {
		b.WriteString(` # {trace_id="`)
		b.WriteString(escapeLabel(e.TraceID))
		b.WriteString(`"} `)
		b.WriteString(fmtFloat(e.Value))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(float64(e.Time.UnixNano())/1e9, 'f', 3, 64))
	}
	b.WriteByte('\n')
}

// writeSample writes one exposition line, merging the base labels with an
// extra label (used for le).
func writeSample(b *strings.Builder, name, base, extra string, v float64) {
	b.WriteString(name)
	if base != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(base)
		if base != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(fmtFloat(v))
	b.WriteByte('\n')
}

// Snapshot is one metric's point-in-time state, JSON-friendly for the
// /api/metrics endpoint and the eilbench baseline file.
type Snapshot struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"` // counter | gauge | histogram
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"` // counter and gauge
	Count  int64             `json:"count,omitempty"` // histogram
	Sum    float64           `json:"sum,omitempty"`   // histogram
	// Buckets maps each upper bound (rendered as a string; "+Inf" last) to
	// its cumulative count.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshots returns every metric's current state, sorted by name then
// labels.
func (r *Registry) Snapshots() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, c := range r.counters {
		out = append(out, Snapshot{Name: c.name, Type: "counter", Labels: labelMap(c.labels), Value: float64(c.Value())})
	}
	for _, g := range r.gauges {
		out = append(out, Snapshot{Name: g.name, Type: "gauge", Labels: labelMap(g.labels), Value: g.Value()})
	}
	for _, h := range r.hists {
		s := Snapshot{Name: h.name, Type: "histogram", Labels: labelMap(h.labels), Count: h.Count(), Sum: h.Sum()}
		cum := h.CumulativeCounts()
		s.Buckets = make(map[string]int64, len(cum))
		for i, bound := range h.bounds {
			s.Buckets[fmtFloat(bound)] = cum[i]
		}
		s.Buckets["+Inf"] = cum[len(cum)-1]
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
	})
	return out
}

// WriteJSON renders the snapshot list as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshots())
}
