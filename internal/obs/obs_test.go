package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("hits_total", "worker", "shared").Inc()
				r.Gauge("inflight").Add(1)
				r.Gauge("inflight").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "worker", "shared").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.05)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	want := 0.05 * workers * per
	if got := h.Sum(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("sum = %v, want ~%v", got, want)
	}
	cum := h.CumulativeCounts()
	if cum[0] != 0 || cum[1] != workers*per || cum[3] != workers*per {
		t.Fatalf("cumulative = %v", cum)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", []float64{0.01, 0.1, 1})
	// Exact boundary values land in their own bucket (le semantics).
	h.Observe(0.01)
	h.Observe(0.1)
	h.Observe(1)
	// Interior and overflow values.
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(42)
	cum := h.CumulativeCounts()
	want := []int64{2, 4, 5, 6} // le=0.01: {0.01, 0.005}; le=0.1: +{0.1, 0.05}; le=1: +{1}; +Inf: +{42}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the le=1 bucket
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %v, want within (0, 1]", p50)
	}
	h.Observe(100) // +Inf bucket clamps to the top finite bound
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", "route", "/api/search", "code", "2xx").Add(3)
	r.Counter("http_requests_total", "route", "/healthz", "code", "2xx").Inc()
	r.Gauge("ingest_docs_per_second").Set(1250.5)
	h := r.Histogram("search_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE http_requests_total counter
http_requests_total{code="2xx",route="/api/search"} 3
http_requests_total{code="2xx",route="/healthz"} 1
# TYPE ingest_docs_per_second gauge
ingest_docs_per_second 1250.5
# TYPE search_seconds histogram
search_seconds_bucket{le="0.001"} 1
search_seconds_bucket{le="0.01"} 1
search_seconds_bucket{le="+Inf"} 2
search_seconds_sum 0.5005
search_seconds_count 2
`
	if got := b.String(); got != want {
		t.Fatalf("rendering mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `c{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("unescaped labels: %q", b.String())
	}
}

func TestSameLabelsDifferentOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "a", "1", "b", "2").Inc()
	r.Counter("c", "b", "2", "a", "1").Inc()
	if got := r.Counter("c", "a", "1", "b", "2").Value(); got != 2 {
		t.Fatalf("label order split the metric: %d", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter held a value")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge held a value")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.CumulativeCounts() != nil || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram held state")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshots() != nil {
		t.Fatal("nil registry produced snapshots")
	}
	StartTimer().ObserveInto(nil)
}

func TestSnapshotsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Gauge("b").Set(2.5)
	r.Histogram("c_seconds", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snaps); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if snaps[0].Name != "a_total" || snaps[0].Value != 7 {
		t.Fatalf("counter snapshot = %+v", snaps[0])
	}
	if snaps[2].Name != "c_seconds" || snaps[2].Count != 1 || snaps[2].Buckets["1"] != 1 || snaps[2].Buckets["+Inf"] != 1 {
		t.Fatalf("histogram snapshot = %+v", snaps[2])
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", nil)
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	d := tm.ObserveInto(h)
	if d < time.Millisecond {
		t.Fatalf("elapsed = %v", d)
	}
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Fatalf("histogram = count %d sum %v", h.Count(), h.Sum())
	}
}

func TestRegistryConcurrentCreation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("created_total", "shard", "s").Inc()
				r.Histogram("created_seconds", nil, "shard", "s").Observe(0.001)
				r.Gauge("created", "shard", "s").Set(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("created_total", "shard", "s").Value(); got != 1600 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Histogram("created_seconds", nil, "shard", "s").Count(); got != 1600 {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestObserveWithExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", []float64{0.01, 0.1, 1})
	h.ObserveWithExemplar(0.005, "aaaa000000000001")
	h.ObserveWithExemplar(0.008, "aaaa000000000002") // same bucket: most recent wins
	h.ObserveWithExemplar(0.5, "bbbb000000000001")
	h.ObserveWithExemplar(5, "cccc000000000001") // +Inf bucket
	h.ObserveWithExemplar(0.05, "")              // empty trace ID: plain Observe

	ex := h.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("want 4 exemplar slots, got %d", len(ex))
	}
	if ex[0] == nil || ex[0].TraceID != "aaaa000000000002" || ex[0].Value != 0.008 {
		t.Fatalf("bucket 0 exemplar = %+v, want most recent", ex[0])
	}
	if ex[1] != nil {
		t.Fatalf("bucket 1 got an exemplar from an empty trace ID: %+v", ex[1])
	}
	if ex[2] == nil || ex[2].TraceID != "bbbb000000000001" {
		t.Fatalf("bucket 2 exemplar = %+v", ex[2])
	}
	if ex[3] == nil || ex[3].TraceID != "cccc000000000001" {
		t.Fatalf("+Inf exemplar = %+v", ex[3])
	}
	if h.Count() != 5 {
		t.Fatalf("exemplar observations must still count: %d", h.Count())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `stage_seconds_bucket{le="0.01"} 2 # {trace_id="aaaa000000000002"} 0.008 `
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	if !strings.Contains(out, `le="+Inf"} 5 # {trace_id="cccc000000000001"} 5 `) {
		t.Fatalf("exposition missing +Inf exemplar:\n%s", out)
	}
	// The no-exemplar bucket renders exactly as before.
	if !strings.Contains(out, "stage_seconds_bucket{le=\"0.1\"} 3\n") {
		t.Fatalf("plain bucket line changed:\n%s", out)
	}
}

func TestObserveWithExemplarNilSafe(t *testing.T) {
	var r *Registry
	h := r.Histogram("z", nil)
	h.ObserveWithExemplar(1, "deadbeefdeadbeef")
	h.ObserveDurationWithExemplar(time.Second, "deadbeefdeadbeef")
	if h.Exemplars() != nil {
		t.Fatal("nil histogram retained exemplars")
	}
}

func TestExemplarConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("%016x", w)
			for i := 0; i < 1000; i++ {
				h.ObserveWithExemplar(0.5, id)
				_ = h.Exemplars()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if ex := h.Exemplars(); ex[0] == nil {
		t.Fatal("no exemplar retained")
	}
}
