package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/taxonomy"
)

// addDoc parses content and appends it to the corpus under the deal. The
// raw source text is retained so the corpus can be written to disk and
// re-crawled byte-identically.
func (c *Corpus) addDoc(dealID, name, content string) error {
	path := dealID + "/" + name
	doc, err := docparse.Parse(path, content)
	if err != nil {
		return fmt.Errorf("synth: %s: %w", path, err)
	}
	doc.DealID = dealID
	c.Docs = append(c.Docs, doc)
	if c.Raw == nil {
		c.Raw = map[string]string{}
	}
	c.Raw[path] = content
	return nil
}

// emitDealDocs writes one deal's engagement workbook.
func (c *Corpus) emitDealDocs(rng *rand.Rand, tax *taxonomy.Taxonomy, t *DealTruth) error {
	if err := c.emitOverview(t); err != nil {
		return err
	}
	if err := c.emitScopeDeck(rng, t); err != nil {
		return err
	}
	if err := c.emitSolutionDecks(rng, t); err != nil {
		return err
	}
	if err := c.emitWinAndRefs(rng, t); err != nil {
		return err
	}
	if err := c.emitRoster(rng, t); err != nil {
		return err
	}
	if err := c.emitKickoff(t); err != nil {
		return err
	}
	if err := c.emitTSAGrids(rng, t); err != nil {
		return err
	}
	if t.ID == PlantedDealID {
		if err := c.emitPlantedSamDocs(t); err != nil {
			return err
		}
	}
	if err := c.emitQuietMentions(t); err != nil {
		return err
	}
	return c.emitNoise(rng, tax, t)
}

// documentedTowers returns the scope towers that appear in the deal's
// formal artifacts (everything but the quiet ones).
func (t *DealTruth) documentedTowers() []string {
	if len(t.QuietTowers) == 0 {
		return t.Towers
	}
	out := make([]string, 0, len(t.Towers))
	for _, tower := range t.Towers {
		if !t.QuietTowers[tower] {
			out = append(out, tower)
		}
	}
	return out
}

// emitQuietMentions writes the two passing mentions each quiet tower gets:
// enough for a keyword hit, not enough for the scope CPE.
func (c *Corpus) emitQuietMentions(t *DealTruth) error {
	n := 0
	for tower := range t.QuietTowers {
		for k := 0; k < 2; k++ {
			content := fmt.Sprintf("Meeting aside %d\nThe %s option came up briefly; parking it for later.\n", k, tower)
			if err := c.addDoc(t.ID, fmt.Sprintf("aside-%d-%d.txt", n, k), content); err != nil {
				return err
			}
		}
		n++
	}
	return nil
}

func (c *Corpus) emitOverview(t *DealTruth) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Deal Overview\n")
	fmt.Fprintf(&b, "Customer: %s\n", t.Customer)
	fmt.Fprintf(&b, "Industry: %s\n", t.Industry)
	fmt.Fprintf(&b, "Out Sourcing Consultant: %s\n", t.Consultant)
	fmt.Fprintf(&b, "Geography: %s\n", t.Geography)
	fmt.Fprintf(&b, "Country: %s\n", t.Country)
	fmt.Fprintf(&b, "Contract Term Start: %s\n", t.TermStart)
	fmt.Fprintf(&b, "Term Duration Months: %d\n", t.TermMonths)
	fmt.Fprintf(&b, "Total Contract Value: %s\n", t.TCVBand)
	intl := "N"
	if t.Intl {
		intl = "Y"
	}
	fmt.Fprintf(&b, "Is International: %s\n", intl)
	fmt.Fprintf(&b, "Scope summary: %s.\n", strings.Join(t.documentedTowers(), ", "))
	return c.addDoc(t.ID, "overview.txt", b.String())
}

func (c *Corpus) emitScopeDeck(rng *rand.Rand, t *DealTruth) error {
	var b strings.Builder
	b.WriteString("# Services Scope Baseline\n")
	for _, tower := range t.documentedTowers() {
		fmt.Fprintf(&b, "- %s\n", tower)
		for _, sub := range t.SubTowers[tower] {
			fmt.Fprintf(&b, "- %s coverage\n", sub)
		}
	}
	b.WriteString("---\n# Scope Assumptions\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "- %s alignment with client %s\n",
			chatterWords[rng.Intn(len(chatterWords))], chatterWords[rng.Intn(len(chatterWords))])
	}
	return c.addDoc(t.ID, "scope.deck", b.String())
}

func (c *Corpus) emitSolutionDecks(rng *rand.Rand, t *DealTruth) error {
	documented := t.documentedTowers()
	n := len(documented)
	if n > 3 {
		n = 3
	}
	for i := 0; i < n; i++ {
		tower := documented[i]
		phrases := techPhrases[tower]
		if len(phrases) == 0 {
			phrases = []string{"managed services with standard tooling"}
		}
		var b strings.Builder
		b.WriteString("# Technical Solution Overview\n")
		fmt.Fprintf(&b, "## %s\n", tower)
		for _, p := range phrases {
			fmt.Fprintf(&b, "- %s\n", p)
		}
		fmt.Fprintf(&b, "- %s sizing validated in %s workshop\n",
			chatterWords[rng.Intn(len(chatterWords))], chatterWords[rng.Intn(len(chatterWords))])
		if err := c.addDoc(t.ID, fmt.Sprintf("solution-%d.deck", i+1), b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (c *Corpus) emitWinAndRefs(rng *rand.Rand, t *DealTruth) error {
	var b strings.Builder
	b.WriteString("# Win Strategy\n")
	perm := rng.Perm(len(winStrategies))
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "- %s\n", winStrategies[perm[i]])
	}
	if err := c.addDoc(t.ID, "win.deck", b.String()); err != nil {
		return err
	}
	var r strings.Builder
	r.WriteString("# Client References\n")
	for i := 0; i < 2; i++ {
		tmpl := clientRefTemplates[rng.Intn(len(clientRefTemplates))]
		fmt.Fprintf(&r, "- %s\n", fmt.Sprintf(tmpl, customers[rng.Intn(len(customers))], 2001+rng.Intn(6)))
	}
	return c.addDoc(t.ID, "refs.deck", r.String())
}

func (c *Corpus) emitRoster(rng *rand.Rand, t *DealTruth) error {
	var b strings.Builder
	b.WriteString("GRID Deal Team Roster\n")
	b.WriteString("Name | Role | Email | Phone | Organization\n")
	if !t.RosterPopulated {
		// The pre-defined template exists but nobody filled it in.
		b.WriteString(" | | | |\n | | | |\n")
		return c.addDoc(t.ID, "team.grid", b.String())
	}
	for _, p := range t.Team {
		email, phone, org := p.Email, p.Phone, p.Org
		// Partial population: drop fields at random.
		if rng.Float64() < 0.3 {
			email = ""
		}
		if rng.Float64() < 0.5 {
			phone = ""
		}
		if rng.Float64() < 0.4 {
			org = ""
		}
		fmt.Fprintf(&b, "%s | %s | %s | %s | %s\n", p.Name, p.Role, email, phone, org)
	}
	// A duplicate row with conflicting partial fields (step 10 fodder).
	if len(t.Team) > 0 {
		p := t.Team[0]
		fmt.Fprintf(&b, "%s | | %s | | \n", p.Name, p.Email)
	}
	return c.addDoc(t.ID, "team.grid", b.String())
}

func (c *Corpus) emitKickoff(t *DealTruth) error {
	var b strings.Builder
	b.WriteString("# Kickoff Agenda\n- introductions\n- scope walkthrough\n---\n# Deal Team\n")
	for _, p := range t.Team {
		fmt.Fprintf(&b, "- %s, %s\n", p.Name, p.Role)
	}
	return c.addDoc(t.ID, "kickoff.deck", b.String())
}

// emitTSAGrids writes the service-detail forms whose schema includes the
// "cross tower TSA" field — mostly empty, the Meta-query 3 noise source.
func (c *Corpus) emitTSAGrids(rng *rand.Rand, t *DealTruth) error {
	var tsaPerson string
	for _, p := range t.Team {
		if strings.EqualFold(p.Role, "cross tower TSA") {
			tsaPerson = p.Name
			break
		}
	}
	for i, tower := range t.documentedTowers() {
		var b strings.Builder
		fmt.Fprintf(&b, "GRID %s Service Details\n", tower)
		b.WriteString("Service Item | cross tower TSA | Delivery Notes\n")
		rows := 3 + rng.Intn(3)
		filled := -1
		if tsaPerson != "" && rng.Float64() < 0.4 {
			filled = rng.Intn(rows)
		}
		for r := 0; r < rows; r++ {
			name := ""
			if r == filled {
				name = tsaPerson
			}
			fmt.Fprintf(&b, "%s item %d | %s | %s\n",
				tower, r+1, name, chatterWords[rng.Intn(len(chatterWords))])
		}
		if err := c.addDoc(t.ID, fmt.Sprintf("tsa-%d.grid", i+1), b.String()); err != nil {
			return err
		}
	}
	return nil
}

// emitPlantedSamDocs writes the exactly-four documents that tie Sam White to
// company ABC (the Meta-query 2 funnel's second step finds these), none of
// which mention the CSE role (so the funnel's first step finds nothing).
func (c *Corpus) emitPlantedSamDocs(t *DealTruth) error {
	docs := []struct{ name, content string }{
		{"sam-mail-1.eml", `From: sam.white@abc.com
To: deal.desk@ibm.com
Subject: sourcing timetable

Our procurement office will share the ABC sourcing timetable on Friday.
Regards, Sam White
`},
		{"sam-mail-2.eml", `From: sam.white@abc.com
To: deal.desk@ibm.com
Subject: data center visit

Sam White here - confirming the ABC data center visit for the diligence team.
`},
		{"sam-note-1.txt", "Client meeting notes\nMet Sam White from ABC to review the governance model.\n"},
		{"sam-note-2.txt", "Workshop summary\nSam White (ABC) walked the team through the incumbent landscape.\n"},
	}
	for _, d := range docs {
		if err := c.addDoc(t.ID, d.name, d.content); err != nil {
			return err
		}
	}
	return nil
}

// emitNoise writes the chatter emails and meeting notes that make up the
// bulk of the workbook.
func (c *Corpus) emitNoise(rng *rand.Rand, tax *taxonomy.Taxonomy, t *DealTruth) error {
	towers := tax.Towers()
	ibm := make([]Person, 0, len(t.Team))
	for _, p := range t.Team {
		if !p.Client {
			ibm = append(ibm, p)
		}
	}
	for n := 0; n < c.Cfg.NoiseDocsPerDeal; n++ {
		var body strings.Builder
		// Base chatter.
		words := 25 + rng.Intn(30)
		for w := 0; w < words; w++ {
			body.WriteString(chatterWords[rng.Intn(len(chatterWords))])
			if w%9 == 8 {
				body.WriteString(".\n")
			} else {
				body.WriteByte(' ')
			}
		}
		// Deal-name references (about half the documents cite the deal).
		mentionsDeal := rng.Float64() < 0.5
		if mentionsDeal {
			fmt.Fprintf(&body, "\nDeal: %s status as discussed.\n", t.ID)
		}
		// Role chatter: CSE and other roles come up constantly (this is
		// what floods Meta-query 2's third keyword step with ~100 hits).
		if rng.Float64() < 0.45 {
			fmt.Fprintf(&body, "Action: %s to confirm with the client.\n",
				[]string{"CSE", "CSE", "PE", "TSA"}[rng.Intn(4)])
		}
		if rng.Float64() < 0.004 {
			body.WriteString("Need the cross tower TSA view before the review.\n")
		}
		// Scope-tower mentions: evidence for the scope CPE, by a surface
		// form biased toward sub-towers (the Figure 4 vocabulary drift).
		// Quiet towers do not participate — their only evidence is the
		// dedicated passing-mention notes.
		documented := t.documentedTowers()
		if len(documented) > 0 && rng.Float64() < c.Cfg.ScopeMentionRate {
			tower := documented[weightedIndex(rng, len(documented))]
			fmt.Fprintf(&body, "Progress on %s workstream noted.\n", c.scopeSurface(rng, tax, tower))
		}
		// Incidental cross-deal mentions: the keyword baseline's poison.
		if rng.Float64() < c.Cfg.CrossMentionRate {
			other := towers[rng.Intn(len(towers))].Name
			if !t.HasTower(other) {
				fmt.Fprintf(&body, "FYI: the %s practice published new collateral.\n", c.scopeSurface(rng, tax, other))
			}
		}

		if rng.Float64() < 0.55 && len(ibm) >= 2 {
			// Email between two IBM-side team members.
			a, b := ibm[rng.Intn(len(ibm))], ibm[rng.Intn(len(ibm))]
			subject := fmt.Sprintf("%s %s", t.ID, chatterWords[rng.Intn(len(chatterWords))])
			if !mentionsDeal {
				subject = chatterWords[rng.Intn(len(chatterWords))] + " sync"
			}
			content := fmt.Sprintf("From: %s\nTo: %s\nSubject: %s\n\n%s",
				a.Email, b.Email, subject, body.String())
			if err := c.addDoc(t.ID, fmt.Sprintf("mail-%04d.eml", n), content); err != nil {
				return err
			}
		} else {
			content := fmt.Sprintf("Meeting notes %d\n%s", n, body.String())
			name := fmt.Sprintf("note-%04d.txt", n)
			if err := c.addDoc(t.ID, name, content); err != nil {
				return err
			}
			// Re-uploaded copies: same content under a new name, the
			// redundancy the dedup CPE exists for.
			if rng.Float64() < c.Cfg.DuplicateRate {
				if err := c.addDoc(t.ID, "copy-of-"+name, content); err != nil {
					return err
				}
				c.PlantedDuplicates++
			}
		}
	}
	return nil
}

// scopeSurface picks a surface form for a tower mention: sub-tower names
// and acronyms with probability SubTypeBias, the canonical tower name (or
// its acronym) otherwise.
func (c *Corpus) scopeSurface(rng *rand.Rand, tax *taxonomy.Taxonomy, tower string) string {
	forms := tax.Expand(tower)
	if len(forms) == 0 {
		return tower
	}
	canonical := []string{tower}
	var subs []string
	for _, f := range forms {
		t2, sub, ok := tax.Resolve(f)
		if !ok || t2 != tower {
			continue
		}
		if sub == "" {
			canonical = append(canonical, f)
		} else {
			subs = append(subs, f)
		}
	}
	if len(subs) > 0 && rng.Float64() < c.Cfg.SubTypeBias {
		return subs[rng.Intn(len(subs))]
	}
	return canonical[rng.Intn(len(canonical))]
}

// weightedIndex favors low indexes (the deal's most significant towers get
// mentioned most), halving the probability each step.
func weightedIndex(rng *rand.Rand, n int) int {
	for i := 0; i < n-1; i++ {
		if rng.Float64() < 0.5 {
			return i
		}
	}
	return n - 1
}

// Stats summarizes the corpus for logging and EXPERIMENTS.md.
type Stats struct {
	Deals  int
	Docs   int
	People int
}

// Stats computes corpus statistics.
func (c *Corpus) Stats() Stats {
	people := 0
	for _, t := range c.Truth {
		people += len(t.Team)
	}
	return Stats{Deals: len(c.DealIDs), Docs: len(c.Docs), People: people}
}

// Doc type sanity accessor used by tests.
func (c *Corpus) DocsOfType(dt docmodel.DocType) int {
	n := 0
	for _, d := range c.Docs {
		if d.Type == dt {
			n++
		}
	}
	return n
}
