package synth

import (
	"strings"
	"testing"

	"repro/internal/docmodel"
)

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Docs) != len(b.Docs) {
		t.Fatalf("doc counts differ: %d vs %d", len(a.Docs), len(b.Docs))
	}
	for i := range a.Docs {
		if a.Docs[i].Path != b.Docs[i].Path || a.Docs[i].Body != b.Docs[i].Body {
			t.Fatalf("doc %d differs between runs: %s vs %s", i, a.Docs[i].Path, b.Docs[i].Path)
		}
	}
}

func TestGenerateSeedChangesCorpus(t *testing.T) {
	cfg := SmallConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 999
	b, _ := Generate(cfg)
	same := true
	for i := range a.Docs {
		if i >= len(b.Docs) || a.Docs[i].Body != b.Docs[i].Body {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCorpusShape(t *testing.T) {
	c := smallCorpus(t)
	s := c.Stats()
	if s.Deals != 6 {
		t.Fatalf("deals = %d", s.Deals)
	}
	// 6 deals x (40 noise + ~10 fixed) plus 4 planted docs.
	if s.Docs < 6*45 || s.Docs > 6*60 {
		t.Fatalf("docs = %d", s.Docs)
	}
	if c.DocsOfType(docmodel.TypeGrid) == 0 || c.DocsOfType(docmodel.TypeDeck) == 0 ||
		c.DocsOfType(docmodel.TypeEmail) == 0 || c.DocsOfType(docmodel.TypeText) == 0 {
		t.Fatal("missing document types")
	}
}

func TestTruthConsistency(t *testing.T) {
	c := smallCorpus(t)
	for _, id := range c.DealIDs {
		truth := c.Truth[id]
		if truth == nil {
			t.Fatalf("no truth for %s", id)
		}
		if len(truth.Towers) < 2 || len(truth.Towers) > 6 {
			t.Fatalf("%s towers = %v", id, truth.Towers)
		}
		if len(truth.Team) < 7 {
			t.Fatalf("%s team = %d", id, len(truth.Team))
		}
		seen := map[string]bool{}
		for _, tower := range truth.Towers {
			if seen[tower] {
				t.Fatalf("%s duplicate scope tower %s", id, tower)
			}
			seen[tower] = true
		}
		for tower, subs := range truth.SubTowers {
			if !truth.HasTower(tower) {
				t.Fatalf("%s subtowers of non-scope tower %s: %v", id, tower, subs)
			}
		}
	}
}

func TestPlantedDeal(t *testing.T) {
	c := smallCorpus(t)
	truth := c.Truth[PlantedDealID]
	if truth == nil {
		t.Fatal("planted deal missing")
	}
	if truth.Customer != "ABC" || !truth.HasTower("Storage Management Services") {
		t.Fatalf("planted truth = %+v", truth)
	}
	if truth.RosterPopulated {
		t.Fatal("planted roster must be unpopulated (MQ2 funnel)")
	}
	foundSam := false
	for _, p := range truth.Team {
		if p.Name == PlantedPerson {
			foundSam = true
			if !p.Client || p.Org != "ABC" {
				t.Fatalf("Sam White = %+v", p)
			}
		}
	}
	if !foundSam {
		t.Fatal("Sam White not on planted deal")
	}
	// Exactly the four planted documents tie Sam to ABC textually, and
	// none of them mention CSE.
	samDocs := 0
	for _, d := range c.Docs {
		body := strings.ToLower(d.Body + " " + d.Title + " " + headerText(d))
		hasSam := strings.Contains(body, "sam") && strings.Contains(body, "white")
		hasABC := strings.Contains(body, "abc")
		if hasSam && hasABC {
			samDocs++
			if strings.Contains(body, "cse") {
				t.Fatalf("planted Sam doc %s mentions CSE", d.Path)
			}
		}
	}
	if samDocs != 4 {
		t.Fatalf("Sam+ABC docs = %d, want exactly 4", samDocs)
	}
}

func headerText(d *docmodel.Document) string {
	if d.Structure == nil || d.Structure.Headers == nil {
		return ""
	}
	var parts []string
	for k, v := range d.Structure.Headers {
		parts = append(parts, k+" "+v)
	}
	return strings.Join(parts, " ")
}

func TestCrossTowerTSANoise(t *testing.T) {
	c := smallCorpus(t)
	withPhrase := 0
	withValue := 0
	for _, d := range c.Docs {
		if !strings.Contains(strings.ToLower(d.Body), "cross tower tsa") {
			continue
		}
		withPhrase++
		if d.Type != docmodel.TypeGrid {
			continue
		}
		g := d.Structure.Grid
		col := g.ColumnIndex("cross tower tsa")
		if col < 0 {
			continue
		}
		for r := 1; r < len(g.Rows); r++ {
			if g.Cell(r, col) != "" {
				withValue++
			}
		}
	}
	if withPhrase < 10 {
		t.Fatalf("cross tower TSA phrase docs = %d, want plenty of schema noise", withPhrase)
	}
	if withValue == 0 {
		t.Fatal("no TSA grid ever has a value — annotator has nothing to find")
	}
	if withValue*3 > withPhrase {
		t.Fatalf("TSA values (%d) not rare relative to phrase docs (%d)", withValue, withPhrase)
	}
}

func TestDirectoryCoversIBMTeam(t *testing.T) {
	c := smallCorpus(t)
	for _, truth := range c.Truth {
		for _, p := range truth.Team {
			if p.Client {
				if _, err := c.Directory.ByEmail(p.Email); err == nil {
					t.Fatalf("client %s leaked into the intranet directory", p.Name)
				}
				continue
			}
			if _, err := c.Directory.ByEmail(p.Email); err != nil {
				t.Fatalf("IBM person %s missing from directory: %v", p.Name, err)
			}
		}
	}
}

func TestSubTypeVocabularyDrift(t *testing.T) {
	cfg := SmallConfig()
	cfg.NoiseDocsPerDeal = 200 // enough mentions to measure
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	canonical, subtype := 0, 0
	for _, d := range c.Docs {
		body := strings.ToLower(d.Body)
		if strings.Contains(body, "end user services") {
			canonical++
		}
		if strings.Contains(body, "customer service center") || strings.Contains(body, "distributed computing services") ||
			strings.Contains(body, "help desk services") || strings.Contains(body, "distributed client services") {
			subtype++
		}
	}
	if canonical == 0 || subtype == 0 {
		t.Fatalf("no EUS mentions at all: canonical=%d subtype=%d", canonical, subtype)
	}
	if subtype < canonical {
		t.Fatalf("vocabulary drift missing: canonical=%d subtype=%d", canonical, subtype)
	}
}

func TestEmailStudyMarginals(t *testing.T) {
	threads := GenerateEmailStudy(7)
	if len(threads) != 120 {
		t.Fatalf("threads = %d", len(threads))
	}
	counts := map[string]int{}
	social := 0
	for i := range threads {
		for _, in := range threads[i].Intents {
			counts[in]++
		}
		if threads[i].Social {
			social++
		}
		if threads[i].Body == "" || threads[i].Subject == "" {
			t.Fatalf("thread %d has empty text", threads[i].ID)
		}
	}
	for _, label := range []string{"mq1", "mq2", "mq3", "mq4"} {
		if counts[label] != StudyMarginals[label] {
			t.Fatalf("%s = %d, want %d", label, counts[label], StudyMarginals[label])
		}
	}
	if social != StudyMarginals["social"] {
		t.Fatalf("social = %d, want %d", social, StudyMarginals["social"])
	}
}

func TestEmailStudyDeterministic(t *testing.T) {
	a := GenerateEmailStudy(7)
	b := GenerateEmailStudy(7)
	for i := range a {
		if a[i].Body != b[i].Body {
			t.Fatal("email study not deterministic")
		}
	}
}

func TestEvalConfigScale(t *testing.T) {
	if testing.Short() {
		t.Skip("eval-scale corpus generation in -short mode")
	}
	c, err := Generate(EvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Deals != 23 {
		t.Fatalf("deals = %d", s.Deals)
	}
	// The paper's eval corpus: "approximately about 15,000 documents".
	if s.Docs < 13500 || s.Docs > 16500 {
		t.Fatalf("docs = %d, want ~15000", s.Docs)
	}
}
