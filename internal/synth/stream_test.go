package synth

import (
	"io"
	"testing"
)

// The stream must reproduce Generate byte for byte under the same config:
// same documents in the same order, same ground truth, same directory.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := SmallConfig()
	corpus, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(cfg)
	for i, want := range corpus.Docs {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if got.Path != want.Path || got.DealID != want.DealID || got.Body != want.Body {
			t.Fatalf("doc %d diverged: got %s want %s", i, got.Path, want.Path)
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("after last doc: err = %v, want io.EOF", err)
	}
	if s.Emitted() != len(corpus.Docs) {
		t.Errorf("emitted %d, corpus has %d", s.Emitted(), len(corpus.Docs))
	}
	if len(s.DealIDs()) != len(corpus.DealIDs) {
		t.Fatalf("deal ids %d vs %d", len(s.DealIDs()), len(corpus.DealIDs))
	}
	for i := range corpus.DealIDs {
		if s.DealIDs()[i] != corpus.DealIDs[i] {
			t.Errorf("deal %d: %s vs %s", i, s.DealIDs()[i], corpus.DealIDs[i])
		}
	}
	for id, want := range corpus.Truth {
		got := s.Truth()[id]
		if got == nil {
			t.Fatalf("truth missing deal %s", id)
		}
		if got.Customer != want.Customer || len(got.Team) != len(want.Team) || len(got.Towers) != len(want.Towers) {
			t.Errorf("truth diverged for %s", id)
		}
	}
	// Directory parity via a planted lookup: every IBM-side person from
	// Generate must resolve in the stream's directory.
	for _, truth := range corpus.Truth {
		for _, p := range truth.Team {
			if p.Client {
				continue
			}
			if _, err := s.Directory().BySerial(p.Serial); err != nil {
				t.Fatalf("directory missing %s (%s): %v", p.Name, p.Serial, err)
			}
		}
	}
}

// Raw text is only retained on request, and only for the current deal.
func TestStreamRawRetention(t *testing.T) {
	cfg := SmallConfig()
	s := NewStream(cfg)
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if s.Raw() != nil {
		t.Fatal("raw retained without WithRaw")
	}
	sr := NewStream(cfg).WithRaw()
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if len(sr.Raw()) == 0 {
		t.Fatal("WithRaw stream retained no raw text")
	}
	firstDealRaw := len(sr.Raw())
	// Drain into the second deal; the first deal's raw entries are gone.
	seen := map[string]bool{}
	for {
		d, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[d.DealID] = true
		if len(seen) == 2 {
			break
		}
	}
	if len(seen) != 2 {
		t.Skip("corpus has a single deal")
	}
	if len(sr.Raw()) >= firstDealRaw+10 {
		t.Errorf("raw map grew across deals: %d entries", len(sr.Raw()))
	}
}

// ProductionConfig must be in the paper's production ballpark without
// generating it all here: extrapolate docs/deal from a small prefix.
func TestProductionConfigScale(t *testing.T) {
	cfg := ProductionConfig()
	if cfg.Deals != 1000 {
		t.Fatalf("deals = %d, want 1000", cfg.Deals)
	}
	probe := cfg
	probe.Deals = 4
	s := NewStream(probe)
	n := 0
	for {
		if _, err := s.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	perDeal := n / 4
	if total := perDeal * cfg.Deals; total < 400_000 || total > 650_000 {
		t.Errorf("extrapolated corpus = %d docs (%d/deal), want ~500k", total, perDeal)
	}
}
