package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/taxonomy"
)

// EmailThread is one distribution-list thread from the §2 information-needs
// study, with its planted ground-truth intents.
type EmailThread struct {
	ID      int
	Subject string
	Body    string
	// Intents are the planted meta-query labels: "mq1".."mq4". A thread
	// can carry several ("sometimes they are an inherent part of a larger
	// query instead of a standalone query by themselves").
	Intents []string
	// Social marks threads soliciting social-networking information
	// (explicitly or implicitly).
	Social bool
}

// HasIntent reports whether the thread carries the label.
func (t *EmailThread) HasIntent(label string) bool {
	for _, in := range t.Intents {
		if in == label {
			return true
		}
	}
	return false
}

// StudyMarginals are the paper's reported intent rates over 120 threads:
// MQ1 38%, MQ2 17%, MQ3 36%, MQ4 29%, and 63/120 soliciting social
// networking information.
var StudyMarginals = map[string]int{
	"mq1":    46, // 38% of 120 ≈ 45.6
	"mq2":    20, // 17% ≈ 20.4
	"mq3":    43, // 36% ≈ 43.2
	"mq4":    35, // 29% ≈ 34.8
	"social": 63,
}

// GenerateEmailStudy builds the 120-thread distribution list with intents
// planted at the paper's marginals. Deterministic under seed.
func GenerateEmailStudy(seed int64) []EmailThread {
	const n = 120
	rng := rand.New(rand.NewSource(seed))
	tax := taxonomy.Default()
	towers := tax.Towers()

	threads := make([]EmailThread, n)
	for i := range threads {
		threads[i].ID = i + 1
	}
	// Plant each meta-query label on a random subset of threads of the
	// target size. Overlaps are expected (the marginals sum past 100%).
	for _, label := range []string{"mq1", "mq2", "mq3", "mq4"} {
		perm := rng.Perm(n)
		for k := 0; k < StudyMarginals[label]; k++ {
			threads[perm[k]].Intents = append(threads[perm[k]].Intents, label)
		}
	}
	// Social solicitation: people-seeking meta-queries imply it; top up to
	// the target with extra threads.
	social := 0
	for i := range threads {
		if threads[i].HasIntent("mq2") || threads[i].HasIntent("mq3") {
			threads[i].Social = true
			social++
		}
	}
	perm := rng.Perm(n)
	for _, i := range perm {
		if social >= StudyMarginals["social"] {
			break
		}
		if !threads[i].Social {
			threads[i].Social = true
			social++
		}
	}

	for i := range threads {
		threads[i].Subject, threads[i].Body = renderThread(rng, towers, &threads[i])
	}
	return threads
}

func renderThread(rng *rand.Rand, towers []taxonomy.Tower, t *EmailThread) (subject, body string) {
	tower := towers[rng.Intn(len(towers))].Name
	person := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	org := customers[rng.Intn(len(customers))]
	role := salesRoles[rng.Intn(len(salesRoles))]
	keyword := []string{"data replication", "disaster recovery", "help desk", "payroll", "voice over IP"}[rng.Intn(5)]

	var lines []string
	for _, intent := range t.Intents {
		switch intent {
		case "mq1":
			lines = append(lines, fmt.Sprintf(
				"Which business engagements have a scope that involves %s?", tower))
		case "mq2":
			lines = append(lines, fmt.Sprintf(
				"Who in the %s role has worked with %s in %s?", role, person, org))
		case "mq3":
			lines = append(lines, fmt.Sprintf(
				"Has anyone worked in the capacity of %s on a recent deal?", role))
		case "mq4":
			lines = append(lines, fmt.Sprintf(
				"Who has worked on %s engagements that involved %s?", tower, keyword))
		}
	}
	if len(lines) == 0 {
		lines = append(lines, fmt.Sprintf(
			"Sharing the latest %s collateral with the community.",
			chatterWords[rng.Intn(len(chatterWords))]))
	}
	if t.Social && !t.HasIntent("mq2") && !t.HasIntent("mq3") {
		lines = append(lines, fmt.Sprintf(
			"Please point me to the right person to talk to about %s.", tower))
	}
	lines = append(lines, "Thanks, "+firstNames[rng.Intn(len(firstNames))])

	subject = strings.SplitN(lines[0], "?", 2)[0]
	if len(subject) > 60 {
		subject = subject[:60]
	}
	return subject, strings.Join(lines, "\n")
}
