package synth

// Vocabulary pools for the deterministic corpus generator. All content is
// synthetic; the only deliberately planted identities are the ones the
// paper's worked examples use (Sam White, company ABC, deal "ABC Online").

var firstNames = []string{
	"Alex", "Blake", "Casey", "Dana", "Elliot", "Frankie", "Gray", "Harper",
	"Indira", "Jordan", "Kiran", "Logan", "Morgan", "Noel", "Oakley",
	"Parker", "Quinn", "Riley", "Sasha", "Taylor", "Uma", "Val", "Wren",
	"Xiomara", "Yuri", "Zia", "Avery", "Brook", "Corey", "Devon", "Emery",
	"Finley", "Gale", "Hollis", "Ira", "Jules", "Kai", "Lane", "Marlow",
	"Nico", "Onyx", "Perry", "Reese", "Sage", "Tatum", "Urban", "Vesper",
	"Winter", "Yael", "Zora",
}

var lastNames = []string{
	"Abbott", "Barnes", "Calloway", "Draper", "Ellison", "Foster", "Granger",
	"Hale", "Irving", "Jennings", "Keller", "Lockwood", "Mercer", "Norwood",
	"Okafor", "Pruitt", "Quimby", "Radcliffe", "Sandoval", "Thornton",
	"Underhill", "Vargas", "Whitfield", "Xanders", "Yates", "Zeller",
	"Ainsley", "Bowers", "Crawford", "Dalton", "Eastman", "Fairchild",
	"Goodwin", "Hollister", "Ingram", "Jameson", "Kendrick", "Lowell",
	"Monroe", "Nightingale", "Osborne", "Prescott", "Quill", "Rutherford",
	"Sterling", "Tilman", "Upton", "Vance", "Winslow", "York",
}

// customers are client company base names; the generator suffixes sectors.
var customers = []string{
	"Borealis", "Cygnus", "Delphinus", "Equuleus", "Fornax", "Grus",
	"Hydrus", "Indus", "Lacerta", "Mensa", "Norma", "Octans", "Pavo",
	"Reticulum", "Sculptor", "Telescopium", "Vela", "Volans", "Aquila",
	"Carina", "Dorado", "Eridanus", "Phoenix", "Lyra", "Perseus", "Orion",
}

// salesRoles are the roles planted on deal teams, weighted toward the roles
// the meta-queries ask about.
var salesRoles = []string{
	"CSE", "Client Solution Executive", "cross tower TSA", "TSA",
	"Technical Solution Architect", "PE", "Project Executive",
	"Delivery Project Manager", "Transition Manager", "Engagement Manager",
	"Pricer", "Sales Leader",
}

var clientRoles = []string{"CIO", "CTO", "CFO", "Procurement Lead"}

// chatterWords fills noise emails and meeting notes with plausible business
// prose so BM25 statistics behave naturally.
var chatterWords = []string{
	"agenda", "baseline", "checkpoint", "costing", "diligence", "estimate",
	"forecast", "governance", "handover", "integration", "kickoff",
	"milestone", "negotiation", "onboarding", "pricing", "quarterly",
	"resourcing", "stakeholder", "timeline", "update", "vendor", "workshop",
	"approval", "budget", "capacity", "deliverable", "escalation",
	"facilities", "headcount", "inventory", "journal", "knowledge",
	"logistics", "metrics", "notice", "operations", "proposal", "quality",
	"review", "schedule", "transition", "utilization", "variance",
	"contract", "engagement", "client", "margin", "risk", "sow",
}

// techPhrases seed technology-solution decks; the first entry per tower is
// that tower's signature phrase (Meta-query 4 plants "data replication"
// under Storage Management Services).
var techPhrases = map[string][]string{
	"Storage Management Services": {
		"data replication between the primary and recovery sites",
		"tiered SAN fabric with thin provisioning",
		"nightly incremental backup with offsite vaulting",
	},
	"End User Services": {
		"consolidated help desk with follow-the-sun staffing",
		"desktop image standardization across regions",
		"self-service password reset rollout",
	},
	"Server Systems Management": {
		"mainframe capacity on demand with sysplex failover",
		"midrange consolidation onto virtualized frames",
		"patch automation across the server estate",
	},
	"Network Services": {
		"MPLS WAN redesign with QoS classes",
		"voice over IP migration for branch offices",
		"redundant LAN core with rapid spanning tree",
	},
	"Disaster Recovery Services": {
		"RTO lower than 48 hours with RPO of 24 hours",
		"rapid recovery runbooks tested twice yearly",
		"BCRS standby capacity at the recovery center",
	},
	"Data Center Services": {
		"raised floor consolidation into two strategic sites",
		"power and cooling right-sizing program",
	},
	"Application Management Services": {
		"application portfolio rationalization",
		"managed maintenance with service level credits",
	},
	"Security Services": {
		"identity management with role based provisioning",
		"compliance reporting aligned to regulatory controls",
	},
	"eBusiness Services": {
		"web hosting with managed middleware",
		"collaboration platform migration",
	},
	"Asset Management": {
		"procurement catalog integration",
		"software license harvesting",
	},
	"Human Resources Services": {
		"payroll processing with statutory reporting",
		"workforce administration shared services",
	},
	"Infrastructure Services": {
		"computer operations and monitoring around the clock",
		"event correlation with automated dispatch",
	},
}

var winStrategies = []string{
	"Price to win with aggressive year-one credits",
	"Incumbent displacement through service quality proof points",
	"Leverage client references from the same industry",
	"Bundle towers for cross-tower savings",
	"Early executive sponsorship alignment",
	"Risk transfer through gain-sharing clauses",
	"Transition acceleration with dedicated SWAT team",
	"Co-location of delivery staff with client teams",
}

var clientRefTemplates = []string{
	"Reference: %s infrastructure outsourcing, signed %d",
	"Reference: %s help desk consolidation, signed %d",
	"Reference: %s data center migration, signed %d",
	"Reference: %s network transformation, signed %d",
}
