// Package synth generates the synthetic engagement-workbook corpus that
// stands in for the paper's proprietary deployment data. Generation is
// deterministic under a seed and returns full ground truth (true scopes,
// rosters, overview facts) so precision and recall are computable — the
// paper used a domain expert for that; our expert is the generator.
//
// The corpus plants the pathologies the paper's evaluation turns on:
//
//   - incidental tower mentions in unrelated deals (keyword false positives,
//     Table 2's precision gap);
//   - sub-type vocabulary drift — documents say "CSC" or "Customer Service
//     Center" where the query says "End User Services" (Figure 4's 261 vs
//     1132 expansion);
//   - TSA forms that carry "cross tower TSA" as an empty schema field
//     (Meta-query 3's 149 useless hits);
//   - unpopulated roster templates, so people evidence hides in slides and
//     email addresses (Meta-query 2's three-step keyword funnel);
//   - duplicate, partially populated contact rows (Figure 3's
//     de-duplication steps).
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/directory"
	"repro/internal/docmodel"
	"repro/internal/taxonomy"
)

// Config controls corpus shape. Zero fields take defaults from EvalConfig.
type Config struct {
	// Seed drives all randomness; equal seeds give equal corpora.
	Seed int64
	// Deals is the number of engagements (the paper's eval corpus has 23).
	Deals int
	// NoiseDocsPerDeal is the number of chatter emails and meeting notes
	// per deal (the bulk of the ~15,000 documents).
	NoiseDocsPerDeal int
	// ScopeMentionRate is the probability a noise document mentions one of
	// its deal's true-scope towers (by any surface form).
	ScopeMentionRate float64
	// SubTypeBias is the probability that a scope mention uses a sub-tower
	// surface form instead of the canonical tower name — the vocabulary
	// drift behind Figure 4.
	SubTypeBias float64
	// CrossMentionRate is the probability a noise document incidentally
	// mentions a tower that is NOT in its deal's scope.
	CrossMentionRate float64
	// RosterUnpopulatedRate is the probability a deal's roster grid is left
	// unpopulated (headers only), reflecting "often this is not populated
	// or properly maintained".
	RosterUnpopulatedRate float64
	// DuplicateRate is the probability a noise document is re-uploaded as
	// a near-identical copy (the redundant data §3.4's CPEs clean up).
	DuplicateRate float64
}

// EvalConfig mirrors the paper's evaluation corpus: 23 deals, roughly
// 15,000 documents.
func EvalConfig() Config {
	return Config{
		Seed:                  2008,
		Deals:                 23,
		NoiseDocsPerDeal:      610,
		ScopeMentionRate:      0.27,
		SubTypeBias:           0.80,
		CrossMentionRate:      0.065,
		RosterUnpopulatedRate: 0.35,
		DuplicateRate:         0.02,
	}
}

// SmallConfig is a fast corpus for unit tests.
func SmallConfig() Config {
	c := EvalConfig()
	c.Deals = 6
	c.NoiseDocsPerDeal = 40
	return c
}

func (c Config) withDefaults() Config {
	d := EvalConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Deals == 0 {
		c.Deals = d.Deals
	}
	if c.NoiseDocsPerDeal == 0 {
		c.NoiseDocsPerDeal = d.NoiseDocsPerDeal
	}
	if c.ScopeMentionRate == 0 {
		c.ScopeMentionRate = d.ScopeMentionRate
	}
	if c.SubTypeBias == 0 {
		c.SubTypeBias = d.SubTypeBias
	}
	if c.CrossMentionRate == 0 {
		c.CrossMentionRate = d.CrossMentionRate
	}
	if c.RosterUnpopulatedRate == 0 {
		c.RosterUnpopulatedRate = d.RosterUnpopulatedRate
	}
	if c.DuplicateRate == 0 {
		c.DuplicateRate = d.DuplicateRate
	}
	return c
}

// Person is a ground-truth person on a deal.
type Person struct {
	Name   string
	Email  string
	Phone  string
	Org    string
	Role   string
	Serial string
	Client bool // true for client-side people
}

// DealTruth is the generator's ground truth for one engagement.
type DealTruth struct {
	ID         string
	Customer   string
	Industry   string
	Consultant string
	Geography  string
	Country    string
	TermStart  string
	TermMonths int
	TCVBand    string
	Intl       bool
	// Towers is the true scope, most significant first.
	Towers []string
	// SubTowers lists the true sub-towers per tower.
	SubTowers map[string][]string
	// QuietTowers marks scope towers that are real but barely documented:
	// they are missing from the scope deck, the overview summary, and the
	// TSA forms, surfacing only in a couple of passing mentions. The scope
	// CPE's threshold drops them — EIL's recall losses in the paper's
	// Table 2 (for example Q3 at 0.75 and Q8 at 0.33) have exactly this
	// texture, while keyword search still hits the passing mentions.
	QuietTowers map[string]bool
	// Team is the full roster (IBM side and client side).
	Team []Person
	// RosterPopulated records whether the roster grid carries the team
	// (false reproduces the unpopulated-template pathology).
	RosterPopulated bool
}

// HasTower reports whether tower is in the deal's true scope.
func (d *DealTruth) HasTower(tower string) bool {
	for _, t := range d.Towers {
		if t == tower {
			return true
		}
	}
	return false
}

// Corpus is a generated workload.
type Corpus struct {
	Cfg     Config
	Docs    []*docmodel.Document
	Truth   map[string]*DealTruth
	DealIDs []string // generation order
	// Directory is the synthetic intranet personnel service covering every
	// IBM-side team member (clients are deliberately absent, as in life).
	Directory *directory.Directory
	// Raw maps document path to the raw file content, so the corpus can be
	// materialized on disk and re-crawled.
	Raw map[string]string
	// PlantedDuplicates counts the re-uploaded copies the generator wrote.
	PlantedDuplicates int

	usedNames  map[string]bool
	nameSuffix int
}

// PlantedDealID is the Meta-query 2 walkthrough deal ("ABC Online").
const PlantedDealID = "ABC ONLINE"

// PlantedPerson is the client executive of the worked example.
const PlantedPerson = "Sam White"

// Generate builds a corpus under cfg.
func Generate(cfg Config) (*Corpus, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tax := taxonomy.Default()
	c := &Corpus{Cfg: cfg, Truth: map[string]*DealTruth{}, Directory: directory.New()}

	towers := tax.Towers()
	serial := 0
	nextSerial := func() string {
		serial++
		return fmt.Sprintf("%06d", serial)
	}

	for i := 0; i < cfg.Deals; i++ {
		truth := c.makeDealTruth(rng, tax, towers, i, nextSerial)
		c.Truth[truth.ID] = truth
		c.DealIDs = append(c.DealIDs, truth.ID)
		for _, p := range truth.Team {
			if p.Client {
				continue
			}
			// Register IBM-side people in the directory; a few are stale
			// (departed) to exercise validation.
			active := rng.Float64() > 0.06
			if err := c.Directory.Add(directory.Person{
				Serial: p.Serial, Name: p.Name, Email: p.Email,
				Phone: p.Phone, Org: p.Org, Title: p.Role, Active: active,
			}); err != nil {
				return nil, fmt.Errorf("synth: directory: %w", err)
			}
		}
		if err := c.emitDealDocs(rng, tax, truth); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// dealID produces "DEAL A".."DEAL Z", then numbered IDs. Deal index 0 is the
// planted "ABC ONLINE".
func dealID(i int) string {
	if i == 0 {
		return PlantedDealID
	}
	if i <= 26 {
		return fmt.Sprintf("DEAL %c", 'A'+i-1)
	}
	return fmt.Sprintf("DEAL %03d", i)
}

func (c *Corpus) makeDealTruth(rng *rand.Rand, tax *taxonomy.Taxonomy, towers []taxonomy.Tower, i int, nextSerial func() string) *DealTruth {
	t := &DealTruth{ID: dealID(i), SubTowers: map[string][]string{}}
	industries := tax.Industries()
	geos := tax.Geographies()

	if i == 0 {
		t.Customer = "ABC"
		t.Industry = "Financial Services"
	} else {
		t.Customer = customers[(i-1)%len(customers)]
		t.Industry = industries[rng.Intn(len(industries))]
	}
	t.Consultant = taxonomy.OutsourcingConsultants[rng.Intn(len(taxonomy.OutsourcingConsultants))]
	geo := geos[rng.Intn(len(geos))]
	t.Geography = geo.Name
	t.Country = geo.Countries[rng.Intn(len(geo.Countries))]
	t.TermStart = fmt.Sprintf("200%d-%02d-01", 4+rng.Intn(4), 1+rng.Intn(12))
	t.TermMonths = []int{36, 48, 60, 84, 120}[rng.Intn(5)]
	t.TCVBand = taxonomy.ContractValueBands[rng.Intn(len(taxonomy.ContractValueBands))]
	t.Intl = rng.Float64() < 0.5

	// Scope: 2-6 towers. Storage Management Services is forced onto the
	// planted deal so Meta-query 4's walkthrough lands there; End User
	// Services appears on roughly half the deals so scope queries have
	// substance.
	nScope := 2 + rng.Intn(5)
	perm := rng.Perm(len(towers))
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] && len(t.Towers) < nScope {
			seen[name] = true
			t.Towers = append(t.Towers, name)
		}
	}
	if i == 0 {
		add("Storage Management Services")
		add("Disaster Recovery Services")
	}
	if i%2 == 1 {
		add("End User Services")
	}
	for _, pi := range perm {
		add(towers[pi].Name)
	}
	// One scope tower per deal (beyond the primary) may be quiet; the
	// planted deal stays fully documented for the walkthroughs.
	t.QuietTowers = map[string]bool{}
	if i != 0 && len(t.Towers) >= 3 && rng.Float64() < 0.30 {
		quiet := t.Towers[1+rng.Intn(len(t.Towers)-1)]
		t.QuietTowers[quiet] = true
	}
	for _, towerName := range t.Towers {
		if t.QuietTowers[towerName] {
			continue // quiet towers leave no sub-tower evidence either
		}
		subs := tax.SubTypesOf(towerName)
		if len(subs) == 0 {
			continue
		}
		// Most deals with a tower exercise one or two of its sub-towers.
		n := 1 + rng.Intn(2)
		if n > len(subs) {
			n = len(subs)
		}
		sp := rng.Perm(len(subs))
		for k := 0; k < n; k++ {
			t.SubTowers[towerName] = append(t.SubTowers[towerName], subs[sp[k]])
		}
	}

	// Team: 5-9 IBM-side people plus 2-3 client-side. Names are unique
	// corpus-wide because emails (and so directory entries) derive from
	// them.
	nTeam := 5 + rng.Intn(5)
	if c.usedNames == nil {
		c.usedNames = map[string]bool{}
	}
	pick := func() (string, string) {
		for attempt := 0; ; attempt++ {
			f := firstNames[rng.Intn(len(firstNames))]
			l := lastNames[rng.Intn(len(lastNames))]
			if attempt > 20 {
				// The combination pool is exhausted (very large corpora):
				// disambiguate deterministically.
				c.nameSuffix++
				l = fmt.Sprintf("%s%d", l, c.nameSuffix)
			}
			full := f + " " + l
			if !c.usedNames[full] {
				c.usedNames[full] = true
				return f, l
			}
		}
	}
	mkEmail := func(f, l, org string) string {
		return strings.ToLower(f) + "." + strings.ToLower(l) + "@" + strings.ToLower(org) + ".com"
	}
	hasCSE := false
	for k := 0; k < nTeam; k++ {
		f, l := pick()
		role := salesRoles[rng.Intn(len(salesRoles))]
		if k == 0 {
			role = "CSE" // every deal has at least one CSE
		}
		if role == "CSE" || role == "Client Solution Executive" {
			hasCSE = true
		}
		t.Team = append(t.Team, Person{
			Name: f + " " + l, Email: mkEmail(f, l, "ibm"),
			Phone:  fmt.Sprintf("555-%04d", rng.Intn(10000)),
			Org:    "ITD " + []string{"Sales", "Delivery", "Solutioning"}[rng.Intn(3)],
			Role:   role,
			Serial: nextSerial(),
		})
	}
	_ = hasCSE
	nClient := 2 + rng.Intn(2)
	for k := 0; k < nClient; k++ {
		f, l := pick()
		if i == 0 && k == 0 {
			// The planted walkthrough identity.
			t.Team = append(t.Team, Person{
				Name: PlantedPerson, Email: "sam.white@abc.com",
				Org: "ABC", Role: "CIO", Client: true, Serial: nextSerial(),
			})
			c.usedNames[PlantedPerson] = true
			continue
		}
		org := t.Customer
		t.Team = append(t.Team, Person{
			Name: f + " " + l, Email: mkEmail(f, l, strings.ReplaceAll(org, " ", "")),
			Org: org, Role: clientRoles[rng.Intn(len(clientRoles))], Client: true,
			Serial: nextSerial(),
		})
	}
	t.RosterPopulated = rng.Float64() > c.Cfg.RosterUnpopulatedRate
	if i == 0 {
		t.RosterPopulated = false // the MQ2 funnel needs the template empty
	}
	return t
}
