package synth

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/directory"
	"repro/internal/docmodel"
	"repro/internal/taxonomy"
)

// stream.go scales generation to the paper's production deployment (~500k
// documents across ~1000 deals) without materializing the corpus: a Stream
// generates one deal's workbook at a time and hands documents out through
// the analysis.CollectionReader interface, so ingest pulls directly from
// the generator and peak memory is one deal's documents, not half a
// million. Ground truth (deal metadata, rosters, the directory) is small
// and is retained for the whole run; the documents and raw text are not.
//
// The stream is byte-identical to Generate under the same Config: both
// drive one rng through the same per-deal sequence, so evaluation harnesses
// can flip between them without changing what the engine sees.

// ProductionConfig approximates the production deployment the paper
// reports: ~1000 deals averaging ~500 documents each, ~500k documents
// total. Generate would hold all of it; use NewStream.
func ProductionConfig() Config {
	c := EvalConfig()
	c.Seed = 500000
	c.Deals = 1000
	// Structural docs (overview, scope deck, solutions, roster, TSA grids,
	// asides...) add ~15-25 per deal on top of the noise.
	c.NoiseDocsPerDeal = 480
	return c
}

// Stream generates a corpus deal by deal. It implements
// analysis.CollectionReader; Next is not safe for concurrent use (the
// pipeline calls it from one goroutine).
type Stream struct {
	cfg    Config
	c      *Corpus // carries truth, directory, name pool; Docs/Raw cleared per deal
	rng    *rand.Rand
	tax    *taxonomy.Taxonomy
	towers []taxonomy.Tower

	serial     int
	dealIdx    int
	buf        []*docmodel.Document // current deal's docs
	bufPos     int
	emitted    int
	rawEnabled bool
}

// NewStream starts a streaming generation under cfg.
func NewStream(cfg Config) *Stream {
	cfg = cfg.withDefaults()
	tax := taxonomy.Default()
	return &Stream{
		cfg:    cfg,
		c:      &Corpus{Cfg: cfg, Truth: map[string]*DealTruth{}, Directory: directory.New()},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		tax:    tax,
		towers: tax.Towers(),
	}
}

// WithRaw retains each deal's raw file text in Raw() until the next deal is
// generated — for harnesses that materialize documents to disk while
// streaming. Off by default: raw text roughly doubles per-deal memory.
func (s *Stream) WithRaw() *Stream {
	s.rawEnabled = true
	return s
}

// Next implements analysis.CollectionReader: it returns the corpus
// documents in exactly Generate's order and io.EOF after the last deal.
func (s *Stream) Next() (*docmodel.Document, error) {
	for s.bufPos >= len(s.buf) {
		if s.dealIdx >= s.cfg.Deals {
			s.buf = nil
			return nil, io.EOF
		}
		if err := s.generateDeal(); err != nil {
			return nil, err
		}
	}
	d := s.buf[s.bufPos]
	s.buf[s.bufPos] = nil // free as we go; the deal buffer dies at the next deal anyway
	s.bufPos++
	s.emitted++
	return d, nil
}

// generateDeal produces deal s.dealIdx into the buffer, replacing the
// previous deal's documents.
func (s *Stream) generateDeal() error {
	s.c.Docs = nil
	if s.rawEnabled {
		s.c.Raw = map[string]string{}
	}
	nextSerial := func() string {
		s.serial++
		return fmt.Sprintf("%06d", s.serial)
	}
	truth := s.c.makeDealTruth(s.rng, s.tax, s.towers, s.dealIdx, nextSerial)
	s.c.Truth[truth.ID] = truth
	s.c.DealIDs = append(s.c.DealIDs, truth.ID)
	for _, p := range truth.Team {
		if p.Client {
			continue
		}
		active := s.rng.Float64() > 0.06
		if err := s.c.Directory.Add(directory.Person{
			Serial: p.Serial, Name: p.Name, Email: p.Email,
			Phone: p.Phone, Org: p.Org, Title: p.Role, Active: active,
		}); err != nil {
			return fmt.Errorf("synth: directory: %w", err)
		}
	}
	if err := s.c.emitDealDocs(s.rng, s.tax, truth); err != nil {
		return err
	}
	if !s.rawEnabled {
		s.c.Raw = nil
	}
	s.buf = s.c.Docs
	s.bufPos = 0
	s.c.Docs = nil
	s.dealIdx++
	return nil
}

// Directory is the personnel service accumulated so far. It is safe to
// hand to the ingest pipeline mid-stream: directory lookups are
// mutex-guarded, and a deal's people are registered before its documents
// are emitted.
func (s *Stream) Directory() *directory.Directory { return s.c.Directory }

// Truth is the ground truth accumulated so far (complete after EOF).
func (s *Stream) Truth() map[string]*DealTruth { return s.c.Truth }

// DealIDs lists generated deals in order (complete after EOF).
func (s *Stream) DealIDs() []string { return s.c.DealIDs }

// Raw is the current deal's raw file text when WithRaw was set.
func (s *Stream) Raw() map[string]string { return s.c.Raw }

// Emitted reports how many documents Next has returned.
func (s *Stream) Emitted() int { return s.emitted }

// PlantedDuplicates reports the re-uploaded copies written so far.
func (s *Stream) PlantedDuplicates() int { return s.c.PlantedDuplicates }
