// Package failover implements fenced primary promotion over the WAL-
// shipping replication stack. Every node carries a fencing epoch — a
// monotone term persisted in a durable EPOCH record beside its journal. A
// supervisor detects primary loss via missed heartbeats, elects the
// replica with the highest (epoch, replication position), and promotes it
// under a bumped epoch; the old epoch is fenced, so a resurrected primary
// finds its writes and ship streams refused with ErrFenced and demotes
// itself back to follower. Cross-process deployments coordinate the same
// protocol through a lease file (lease.go) instead of direct handles.
package failover

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrFenced marks a mutation or ship stream refused because the node's
// epoch is stale: a newer primary exists. Callers must stop writing here
// and re-resolve the primary.
var ErrFenced = errors.New("failover: fenced: stale epoch")

// FencedError carries the epochs behind an ErrFenced refusal.
type FencedError struct {
	Mine    uint64 // the epoch the refused writer believed in
	Current uint64 // the newer epoch that fenced it (0 if unknown)
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("failover: fenced: epoch %d superseded by %d", e.Mine, e.Current)
}

func (e *FencedError) Is(target error) bool { return target == ErrFenced }

// IsFenced reports whether err is a fencing refusal.
func IsFenced(err error) bool { return errors.Is(err, ErrFenced) }

// Roles a node reports.
const (
	RolePrimary   = "primary"
	RoleFollower  = "follower"
	RoleFenced    = "fenced"
	RolePromoting = "promoting"
)

// NodeStatus is one node's failover view.
type NodeStatus struct {
	Role       string    `json:"role"`
	Epoch      uint64    `json:"epoch"`
	Gen        uint64    `json:"gen"`
	Seq        uint64    `json:"seq"`
	PromotedAt time.Time `json:"promoted_at,omitempty"`
}

// Node is one supervised member: enough surface for the supervisor to
// detect loss, elect, promote, fence, and re-point. Hosts (eil.HANode, or
// a process wrapper in tests) implement it.
type Node interface {
	Name() string
	// Alive reports whether the node is serving at all. A dead node cannot
	// be promoted and does not receive fences (it gets fenced when it
	// resurrects and hellos with a stale epoch).
	Alive() bool
	Status() NodeStatus
	// ReplAddr is the address the node's shipper serves on (or would serve
	// on after promotion) — where survivors re-point.
	ReplAddr() string
	// Promote makes the node the primary under epoch: seal the WAL at the
	// current position, persist the bumped epoch, start shipping.
	Promote(epoch uint64) error
	// Fence tells a (possibly resurrected) stale primary that epoch
	// superseded it: refuse all writes, seal local history, demote to a
	// follower of primaryAddr.
	Fence(epoch uint64, primaryAddr string) error
	// Repoint re-targets a follower at the new primary's ship address.
	Repoint(addr string, epoch uint64) error
}

// Event is one supervisor decision, kept in a bounded ring for status
// surfaces and post-mortems.
type Event struct {
	At   time.Time `json:"at"`
	What string    `json:"what"`
}

// Options tunes the supervisor.
type Options struct {
	// Heartbeat is the poll interval (0 = 200ms).
	Heartbeat time.Duration
	// MissThreshold is how many consecutive dead polls of the primary
	// trigger failover (0 = 3).
	MissThreshold int
	// OnWindow fires when the supervisor declares the primary lost, before
	// election — the host opens the write router's promotion window here.
	OnWindow func()
	// OnPromote fires after a successful promotion with the winner and the
	// new epoch — the host installs the winner as the write target here.
	OnPromote func(winner Node, epoch uint64)
	// Logf receives supervisor decisions; nil discards.
	Logf func(format string, args ...any)
	// Metrics receives eil_failover_* telemetry; nil disables.
	Metrics *obs.Registry
}

// Supervisor watches a fixed member set, fails over when the primary goes
// quiet, and fences stale primaries that resurrect. One supervisor per
// replication group.
type Supervisor struct {
	opts  Options
	nodes []Node

	mu            sync.Mutex
	primary       Node
	epoch         uint64 // highest epoch the supervisor has witnessed
	misses        int
	promoting     bool
	lastPromotion time.Time
	events        []Event

	cancel context.CancelFunc
	done   chan struct{}
}

// NewSupervisor builds a supervisor over the member set. The current
// primary is discovered from node statuses on the first poll (or during
// the first failover if none claims the role).
func NewSupervisor(nodes []Node, opts Options) *Supervisor {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 200 * time.Millisecond
	}
	if opts.MissThreshold <= 0 {
		opts.MissThreshold = 3
	}
	return &Supervisor{opts: opts, nodes: nodes}
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Supervisor) event(format string, args ...any) {
	e := Event{At: time.Now(), What: fmt.Sprintf(format, args...)}
	s.events = append(s.events, e)
	if len(s.events) > 64 {
		s.events = s.events[len(s.events)-64:]
	}
	s.logf("failover: %s", e.What)
}

// Events returns the recent decision log, oldest first.
func (s *Supervisor) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Status summarizes the supervisor's view.
type Status struct {
	Primary       string    `json:"primary,omitempty"`
	Epoch         uint64    `json:"epoch"`
	Promoting     bool      `json:"promoting"`
	LastPromotion time.Time `json:"last_promotion,omitempty"`
	Events        []Event   `json:"events,omitempty"`
}

// Status reports the supervisor's current view.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{Epoch: s.epoch, Promoting: s.promoting, LastPromotion: s.lastPromotion}
	if s.primary != nil {
		st.Primary = s.primary.Name()
	}
	st.Events = append(st.Events, s.events...)
	return st
}

// Start runs the poll loop until Close.
func (s *Supervisor) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.cancel = cancel
	s.done = make(chan struct{})
	done := s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.poll()
			}
		}
	}()
}

// Close stops the poll loop.
func (s *Supervisor) Close() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// poll is one heartbeat round: track epochs, discover or confirm the
// primary, count misses, fence stale primaries, and fail over past the
// miss threshold.
func (s *Supervisor) poll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoting {
		return
	}

	// Witness every alive node's epoch; discover the primary if unknown.
	var stale []Node
	for _, n := range s.nodes {
		if !n.Alive() {
			continue
		}
		st := n.Status()
		if st.Epoch > s.epoch {
			s.epoch = st.Epoch
		}
		if st.Role == RolePrimary {
			if s.primary == nil {
				s.primary = n
				s.misses = 0
				s.event("adopted %s as primary (epoch %d)", n.Name(), st.Epoch)
			} else if n != s.primary && st.Epoch < s.currentPrimaryEpoch() {
				stale = append(stale, n)
			}
		}
	}

	// Fence resurrected stale primaries: they answer polls again but their
	// epoch predates the last promotion.
	for _, n := range stale {
		s.fenceLocked(n)
	}

	if s.primary == nil {
		return
	}
	if s.primary.Alive() {
		s.misses = 0
		return
	}
	s.misses++
	if s.misses < s.opts.MissThreshold {
		return
	}
	s.event("primary %s missed %d heartbeats; failing over", s.primary.Name(), s.misses)
	if s.opts.Metrics != nil {
		s.opts.Metrics.Counter("eil_failover_detections_total").Inc()
	}
	s.failoverLocked(nil)
}

func (s *Supervisor) currentPrimaryEpoch() uint64 {
	if s.primary != nil && s.primary.Alive() {
		return s.primary.Status().Epoch
	}
	return s.epoch
}

func (s *Supervisor) fenceLocked(n Node) {
	addr := ""
	if s.primary != nil {
		addr = s.primary.ReplAddr()
	}
	if err := n.Fence(s.epoch, addr); err != nil {
		s.event("fencing %s at epoch %d failed: %v", n.Name(), s.epoch, err)
		return
	}
	s.event("fenced resurrected primary %s at epoch %d", n.Name(), s.epoch)
	if s.opts.Metrics != nil {
		s.opts.Metrics.Counter("eil_failover_fences_total").Inc()
	}
}

// Promote triggers a manual failover (the /api/promote path): the current
// primary — if still alive — is fenced, and the best candidate (or the
// named one) takes over under a bumped epoch.
func (s *Supervisor) Promote(target string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoting {
		return errors.New("failover: promotion already in flight")
	}
	var want Node
	if target != "" {
		for _, n := range s.nodes {
			if n.Name() == target {
				want = n
				break
			}
		}
		if want == nil {
			return fmt.Errorf("failover: unknown node %q", target)
		}
		if want == s.primary {
			return fmt.Errorf("failover: %s is already the primary", target)
		}
	}
	s.event("manual promotion requested (target %q)", target)
	return s.failoverLocked(want)
}

// failoverLocked runs the election + promotion under s.mu. want, when
// non-nil, overrides the election (manual promotion).
func (s *Supervisor) failoverLocked(want Node) error {
	s.promoting = true
	defer func() { s.promoting = false }()
	if s.opts.OnWindow != nil {
		s.opts.OnWindow()
	}

	oldPrimary := s.primary

	// Election: among alive non-primary candidates, highest (epoch, seq)
	// wins — it has the longest surviving history of the newest lineage.
	type cand struct {
		n  Node
		st NodeStatus
	}
	var cands []cand
	for _, n := range s.nodes {
		if n == oldPrimary || !n.Alive() {
			continue
		}
		st := n.Status()
		if st.Epoch > s.epoch {
			s.epoch = st.Epoch
		}
		cands = append(cands, cand{n, st})
	}
	if len(cands) == 0 {
		s.event("failover aborted: no alive candidate")
		return errors.New("failover: no alive candidate")
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].st.Epoch != cands[j].st.Epoch {
			return cands[i].st.Epoch > cands[j].st.Epoch
		}
		return cands[i].st.Seq > cands[j].st.Seq
	})
	winner := cands[0]
	if want != nil {
		for _, c := range cands {
			if c.n == want {
				winner = c
				break
			}
		}
		if winner.n != want {
			return fmt.Errorf("failover: target %s is not an alive candidate", want.Name())
		}
	}

	newEpoch := s.epoch + 1
	s.event("promoting %s (epoch %d seq %d) under epoch %d", winner.n.Name(), winner.st.Epoch, winner.st.Seq, newEpoch)
	if err := winner.n.Promote(newEpoch); err != nil {
		s.event("promotion of %s failed: %v", winner.n.Name(), err)
		if s.opts.Metrics != nil {
			s.opts.Metrics.Counter("eil_failover_promotion_failures_total").Inc()
		}
		return fmt.Errorf("failover: promote %s: %w", winner.n.Name(), err)
	}
	s.epoch = newEpoch
	s.primary = winner.n
	s.misses = 0
	s.lastPromotion = time.Now()
	if s.opts.Metrics != nil {
		s.opts.Metrics.Counter("eil_failover_promotions_total").Inc()
	}

	// Fence the old primary if it is still (or again) answering, then
	// re-point the surviving followers at the winner.
	addr := winner.n.ReplAddr()
	if oldPrimary != nil && oldPrimary.Alive() {
		s.fenceLocked(oldPrimary)
	}
	for _, c := range cands {
		if c.n == winner.n {
			continue
		}
		if err := c.n.Repoint(addr, newEpoch); err != nil {
			s.event("repointing %s at %s failed: %v", c.n.Name(), addr, err)
		} else {
			s.event("repointed %s at %s (epoch %d)", c.n.Name(), addr, newEpoch)
		}
	}
	if s.opts.OnPromote != nil {
		s.opts.OnPromote(winner.n, newEpoch)
	}
	s.event("promotion complete: %s is primary at epoch %d", winner.n.Name(), newEpoch)
	return nil
}
