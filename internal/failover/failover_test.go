package failover

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// fakeNode is an in-memory Node for deterministic supervisor tests: tests
// drive s.poll() directly instead of racing the heartbeat ticker.
type fakeNode struct {
	mu          sync.Mutex
	name        string
	addr        string
	alive       bool
	role        string
	epoch       uint64
	seq         uint64
	primaryAddr string
	promoteErr  error
	fences      []uint64
	repoints    []string
}

func (n *fakeNode) Name() string { return n.name }

func (n *fakeNode) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

func (n *fakeNode) Status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStatus{Role: n.role, Epoch: n.epoch, Seq: n.seq}
}

func (n *fakeNode) ReplAddr() string { return n.addr }

func (n *fakeNode) Promote(epoch uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoteErr != nil {
		return n.promoteErr
	}
	n.role = RolePrimary
	n.epoch = epoch
	return nil
}

func (n *fakeNode) Fence(epoch uint64, primaryAddr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fences = append(n.fences, epoch)
	n.role = RoleFollower
	n.primaryAddr = primaryAddr
	return nil
}

func (n *fakeNode) Repoint(addr string, epoch uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.repoints = append(n.repoints, addr)
	n.primaryAddr = addr
	return nil
}

func newGroup() (a, b, c *fakeNode, sup *Supervisor) {
	a = &fakeNode{name: "a", addr: "addr-a", alive: true, role: RolePrimary, seq: 10}
	b = &fakeNode{name: "b", addr: "addr-b", alive: true, role: RoleFollower, seq: 10}
	c = &fakeNode{name: "c", addr: "addr-c", alive: true, role: RoleFollower, seq: 8}
	sup = NewSupervisor([]Node{a, b, c}, Options{MissThreshold: 2})
	return a, b, c, sup
}

func pollUntilFailover(sup *Supervisor) {
	for i := 0; i < sup.opts.MissThreshold+1; i++ {
		sup.poll()
	}
}

func TestSupervisorElectsHighestPosition(t *testing.T) {
	a, b, c, sup := newGroup()
	var windows int
	var promoted Node
	var promotedEpoch uint64
	sup.opts.OnWindow = func() { windows++ }
	sup.opts.OnPromote = func(w Node, e uint64) { promoted, promotedEpoch = w, e }

	sup.poll()
	if got := sup.Status().Primary; got != "a" {
		t.Fatalf("adopted primary = %q, want a", got)
	}

	a.mu.Lock()
	a.alive = false
	a.mu.Unlock()
	pollUntilFailover(sup)

	st := sup.Status()
	if st.Primary != "b" {
		t.Fatalf("winner = %q, want b (highest seq)", st.Primary)
	}
	if st.Epoch != 1 || promotedEpoch != 1 {
		t.Fatalf("epoch = %d (hook %d), want 1", st.Epoch, promotedEpoch)
	}
	if promoted != Node(b) || b.Status().Role != RolePrimary {
		t.Fatalf("OnPromote got %v, role %s", promoted, b.Status().Role)
	}
	if windows != 1 {
		t.Fatalf("OnWindow fired %d times, want 1", windows)
	}
	c.mu.Lock()
	repoints := append([]string(nil), c.repoints...)
	c.mu.Unlock()
	if len(repoints) != 1 || repoints[0] != "addr-b" {
		t.Fatalf("survivor repoints = %v, want [addr-b]", repoints)
	}
}

func TestSupervisorElectionPrefersNewerEpoch(t *testing.T) {
	a, b, c, sup := newGroup()
	// c is behind in seq but holds a newer epoch: its history belongs to
	// the newest lineage and must win over a longer stale one.
	c.mu.Lock()
	c.epoch, c.seq = 3, 2
	c.mu.Unlock()
	sup.poll()
	a.mu.Lock()
	a.alive = false
	a.mu.Unlock()
	pollUntilFailover(sup)

	st := sup.Status()
	if st.Primary != "c" {
		t.Fatalf("winner = %q, want c (newest epoch)", st.Primary)
	}
	if st.Epoch != 4 {
		t.Fatalf("epoch = %d, want 4 (witnessed 3 + 1)", st.Epoch)
	}
	_ = b
}

func TestSupervisorFencesResurrectedStalePrimary(t *testing.T) {
	a, b, _, sup := newGroup()
	sup.poll()
	a.mu.Lock()
	a.alive = false
	a.mu.Unlock()
	pollUntilFailover(sup)
	if sup.Status().Primary != "b" {
		t.Fatalf("setup: winner = %q", sup.Status().Primary)
	}

	// The dead primary comes back still believing it rules epoch 0.
	a.mu.Lock()
	a.alive = true
	a.role = RolePrimary
	a.mu.Unlock()
	sup.poll()

	a.mu.Lock()
	fences, primaryAddr, role := append([]uint64(nil), a.fences...), a.primaryAddr, a.role
	a.mu.Unlock()
	if len(fences) != 1 || fences[0] != 1 {
		t.Fatalf("fences = %v, want [1]", fences)
	}
	if role != RoleFollower || primaryAddr != "addr-b" {
		t.Fatalf("fenced node role=%s primary=%s, want follower of addr-b", role, primaryAddr)
	}
	if b.Status().Role != RolePrimary {
		t.Fatal("winner lost the primary role")
	}
}

func TestSupervisorManualPromote(t *testing.T) {
	a, _, _, sup := newGroup()
	sup.poll()

	if err := sup.Promote("nope"); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("promote unknown = %v", err)
	}
	if err := sup.Promote("a"); err == nil || !strings.Contains(err.Error(), "already the primary") {
		t.Fatalf("promote current primary = %v", err)
	}

	// Manual promotion overrides the election: c wins despite the lower
	// seq, and the still-alive old primary is fenced.
	if err := sup.Promote("c"); err != nil {
		t.Fatal(err)
	}
	st := sup.Status()
	if st.Primary != "c" || st.Epoch != 1 {
		t.Fatalf("status = %+v, want primary c at epoch 1", st)
	}
	a.mu.Lock()
	fences, primaryAddr := append([]uint64(nil), a.fences...), a.primaryAddr
	a.mu.Unlock()
	if len(fences) != 1 || fences[0] != 1 || primaryAddr != "addr-c" {
		t.Fatalf("old primary fences=%v primary=%s, want [1] addr-c", fences, primaryAddr)
	}
}

func TestSupervisorRetriesAfterFailedPromotion(t *testing.T) {
	a, b, c, sup := newGroup()
	sup.poll()
	b.mu.Lock()
	b.promoteErr = errors.New("injected: promote refused")
	b.mu.Unlock()
	a.mu.Lock()
	a.alive = false
	a.mu.Unlock()

	pollUntilFailover(sup)
	if got := sup.Status().Primary; got != "a" {
		t.Fatalf("primary after failed promotion = %q, want still a", got)
	}

	// The winner keeps failing until it recovers; each round re-runs the
	// election rather than wedging.
	b.mu.Lock()
	b.promoteErr = nil
	b.mu.Unlock()
	pollUntilFailover(sup)
	if got := sup.Status().Primary; got != "b" {
		t.Fatalf("primary after recovery = %q, want b", got)
	}
	_ = c
}

func TestSupervisorNoCandidateAborts(t *testing.T) {
	a, b, c, sup := newGroup()
	sup.poll()
	for _, n := range []*fakeNode{a, b, c} {
		n.mu.Lock()
		n.alive = false
		n.mu.Unlock()
	}
	pollUntilFailover(sup)
	if got := sup.Status().Primary; got != "a" {
		t.Fatalf("primary = %q; an empty election must not install anyone", got)
	}
	if err := sup.Promote(""); err == nil {
		t.Fatal("manual promotion with no alive candidate succeeded")
	}
}

func TestFencedErrorClassification(t *testing.T) {
	err := error(&FencedError{Mine: 1, Current: 2})
	if !IsFenced(err) {
		t.Fatal("FencedError not classified as fenced")
	}
	if !errors.Is(err, ErrFenced) {
		t.Fatal("errors.Is(FencedError, ErrFenced) = false")
	}
	if IsFenced(errors.New("plain")) {
		t.Fatal("plain error classified as fenced")
	}
}
