package failover

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/durable"
)

// Cross-process coordination: when the supervisor cannot hold direct node
// handles (separate eilserver processes), the same protocol runs through a
// lease file on shared storage. The primary renews lease.json (atomic
// rename, so readers never see a torn record); a follower that sees the
// lease go stale claims the next epoch through an O_EXCL claim file — the
// filesystem arbitrates concurrent claimants — then self-promotes. A
// primary whose renewal discovers a newer lease has been fenced and must
// demote itself.

// LeaseName is the lease record file inside the lease directory.
const LeaseName = "lease.json"

// LeaseRecord is the current holder's claim.
type LeaseRecord struct {
	Epoch     uint64    `json:"epoch"`
	Name      string    `json:"name"`
	Addr      string    `json:"addr"` // holder's replication listen address
	RenewedAt time.Time `json:"renewed_at"`
}

// LeaseConfig identifies this node to the lease protocol.
type LeaseConfig struct {
	Dir  string
	Name string
	Addr string
	// TTL is how stale a lease must be before a claimant may take it
	// (0 = 3s). It bounds unavailability after a primary dies.
	TTL time.Duration
	// RenewEvery is the holder's renewal (and watchers' poll) interval
	// (0 = TTL/3).
	RenewEvery time.Duration
}

func (c LeaseConfig) ttl() time.Duration {
	if c.TTL <= 0 {
		return 3 * time.Second
	}
	return c.TTL
}

func (c LeaseConfig) renewEvery() time.Duration {
	if c.RenewEvery > 0 {
		return c.RenewEvery
	}
	return c.ttl() / 3
}

// ErrLeaseLost means a renewal discovered a newer lease: this node was
// fenced at the lease layer and must demote itself.
var ErrLeaseLost = errors.New("failover: lease lost to a newer epoch")

// ErrLeaseHeld means an acquisition found a live lease held by another
// node.
var ErrLeaseHeld = errors.New("failover: lease held")

// ReadLease loads the current lease record. ok is false when none exists.
func ReadLease(dir string) (rec LeaseRecord, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, LeaseName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return LeaseRecord{}, false, nil
		}
		return LeaseRecord{}, false, err
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		return LeaseRecord{}, false, fmt.Errorf("failover: corrupt lease: %w", err)
	}
	return rec, true, nil
}

// Stale reports whether the lease has gone unrenewed past the TTL.
func (r LeaseRecord) Stale(ttl time.Duration) bool {
	return time.Since(r.RenewedAt) > ttl
}

func writeLease(dir string, rec LeaseRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(nil, filepath.Join(dir, LeaseName), func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	})
}

// Acquire claims the lease at epoch. It refuses when another node holds a
// live lease at this or a newer epoch (ErrLeaseHeld), and loses cleanly
// when a concurrent claimant beats it to the epoch's claim file.
func Acquire(cfg LeaseConfig, epoch uint64) (LeaseRecord, error) {
	cur, ok, err := ReadLease(cfg.Dir)
	if err != nil {
		return LeaseRecord{}, err
	}
	if ok && cur.Name != cfg.Name {
		if cur.Epoch >= epoch && !cur.Stale(cfg.ttl()) {
			return LeaseRecord{}, fmt.Errorf("%w: by %s at epoch %d", ErrLeaseHeld, cur.Name, cur.Epoch)
		}
		if cur.Epoch >= epoch {
			// Stale but not below us: claim the next term, never a reused one.
			epoch = cur.Epoch + 1
		}
	}
	// The claim file is the arbiter: O_EXCL means exactly one claimant
	// wins each epoch, no matter how many watchers saw the lease go stale
	// in the same poll.
	claim := filepath.Join(cfg.Dir, fmt.Sprintf("claim-%016x", epoch))
	f, err := os.OpenFile(claim, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return LeaseRecord{}, fmt.Errorf("%w: epoch %d already claimed", ErrLeaseHeld, epoch)
		}
		return LeaseRecord{}, err
	}
	_, _ = fmt.Fprintf(f, "%s %s\n", cfg.Name, time.Now().UTC().Format(time.RFC3339Nano))
	_ = f.Sync()
	_ = f.Close()
	rec := LeaseRecord{Epoch: epoch, Name: cfg.Name, Addr: cfg.Addr, RenewedAt: time.Now()}
	if err := writeLease(cfg.Dir, rec); err != nil {
		return LeaseRecord{}, err
	}
	return rec, nil
}

// Renew refreshes the holder's lease once. It returns the usurper's
// record with ErrLeaseLost when a newer lease (or the same epoch under
// another name) has fenced this holder — the caller must demote itself
// before acknowledging another write.
func Renew(cfg LeaseConfig, epoch uint64) (LeaseRecord, error) {
	cur, ok, err := ReadLease(cfg.Dir)
	if err != nil {
		return LeaseRecord{}, err
	}
	if ok && (cur.Epoch > epoch || (cur.Epoch == epoch && cur.Name != cfg.Name)) {
		return cur, ErrLeaseLost
	}
	rec := LeaseRecord{Epoch: epoch, Name: cfg.Name, Addr: cfg.Addr, RenewedAt: time.Now()}
	if err := writeLease(cfg.Dir, rec); err != nil {
		return LeaseRecord{}, err
	}
	return rec, nil
}

// Hold renews the lease until ctx cancels or a newer lease fences this
// holder. On fencing it returns the usurper's record with ErrLeaseLost —
// the caller must demote itself before serving another write.
func Hold(ctx context.Context, cfg LeaseConfig, epoch uint64) (LeaseRecord, error) {
	t := time.NewTicker(cfg.renewEvery())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return LeaseRecord{}, ctx.Err()
		case <-t.C:
		}
		rec, err := Renew(cfg, epoch)
		if errors.Is(err, ErrLeaseLost) {
			return rec, err
		}
		// Transient read/write failures keep the lease and retry.
	}
}

// WatchClaim polls the lease until it goes stale, then claims the next
// epoch. A lost claim race just resumes watching; it returns only when it
// wins the lease or ctx cancels.
func WatchClaim(ctx context.Context, cfg LeaseConfig) (LeaseRecord, error) {
	t := time.NewTicker(cfg.renewEvery())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return LeaseRecord{}, ctx.Err()
		case <-t.C:
		}
		cur, ok, err := ReadLease(cfg.Dir)
		if err != nil {
			continue
		}
		if ok && !cur.Stale(cfg.ttl()) {
			continue
		}
		next := uint64(1)
		if ok {
			next = cur.Epoch + 1
		}
		rec, err := Acquire(cfg, next)
		if err != nil {
			continue // lost the race; keep watching
		}
		return rec, nil
	}
}
