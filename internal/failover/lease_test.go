package failover

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func leaseCfg(dir, name string) LeaseConfig {
	return LeaseConfig{Dir: dir, Name: name, Addr: "addr-" + name, TTL: time.Hour}
}

func TestLeaseAcquireRenewLifecycle(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadLease(dir); err != nil || ok {
		t.Fatalf("empty dir lease = ok=%v err=%v", ok, err)
	}

	rec, err := Acquire(leaseCfg(dir, "a"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 1 || rec.Name != "a" || rec.Addr != "addr-a" {
		t.Fatalf("acquired lease = %+v", rec)
	}

	// A live lease refuses other claimants at or below its epoch.
	if _, err := Acquire(leaseCfg(dir, "b"), 1); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second claimant got %v, want ErrLeaseHeld", err)
	}

	// The holder renews; an impostor renewing at the same epoch is fenced.
	if _, err := Renew(leaseCfg(dir, "a"), 1); err != nil {
		t.Fatal(err)
	}
	usurped, err := Renew(leaseCfg(dir, "b"), 1)
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("impostor renew = %v, want ErrLeaseLost", err)
	}
	if usurped.Name != "a" {
		t.Fatalf("usurper record = %+v, want holder a", usurped)
	}
}

func TestLeaseRenewLosesToNewerEpoch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Acquire(leaseCfg(dir, "a"), 1); err != nil {
		t.Fatal(err)
	}
	// A newer claimant takes over (the old lease is forced stale first).
	forceStale(t, dir)
	rec, err := Acquire(leaseCfg(dir, "b"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 2 {
		t.Fatalf("claim over stale epoch-1 lease took epoch %d, want 2 (never reuse a term)", rec.Epoch)
	}
	// The old holder's next renewal discovers it was fenced.
	cur, err := Renew(leaseCfg(dir, "a"), 1)
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale holder renew = %v, want ErrLeaseLost", err)
	}
	if cur.Name != "b" || cur.Epoch != 2 {
		t.Fatalf("usurper = %+v", cur)
	}
}

// forceStale rewrites the current lease as if it had not been renewed for
// a long time, without changing holder or epoch.
func forceStale(t *testing.T, dir string) {
	t.Helper()
	rec, ok, err := ReadLease(dir)
	if err != nil || !ok {
		t.Fatalf("forceStale: lease = ok=%v err=%v", ok, err)
	}
	rec.RenewedAt = time.Now().Add(-24 * time.Hour)
	if err := writeLease(dir, rec); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseClaimFileArbitratesRaces(t *testing.T) {
	dir := t.TempDir()
	// A concurrent claimant already won epoch 1's claim file.
	if err := os.WriteFile(filepath.Join(dir, "claim-0000000000000001"), []byte("rival\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Acquire(leaseCfg(dir, "a"), 1); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("losing claimant got %v, want ErrLeaseHeld", err)
	}
	// The next epoch is still claimable.
	if rec, err := Acquire(leaseCfg(dir, "a"), 2); err != nil || rec.Epoch != 2 {
		t.Fatalf("next-epoch claim = %+v, %v", rec, err)
	}
}

func TestLeaseHoldReturnsOnUsurp(t *testing.T) {
	dir := t.TempDir()
	cfg := leaseCfg(dir, "a")
	cfg.RenewEvery = 5 * time.Millisecond
	if _, err := Acquire(cfg, 1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got := make(chan error, 1)
	go func() {
		_, err := Hold(ctx, cfg, 1)
		got <- err
	}()

	// A newer primary overwrites the lease; the holder must notice.
	if err := writeLease(dir, LeaseRecord{Epoch: 2, Name: "b", Addr: "addr-b", RenewedAt: time.Now().Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if err := <-got; !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Hold returned %v, want ErrLeaseLost", err)
	}
}

func TestWatchClaimTakesStaleLease(t *testing.T) {
	dir := t.TempDir()
	if _, err := Acquire(leaseCfg(dir, "a"), 3); err != nil {
		t.Fatal(err)
	}
	forceStale(t, dir)

	cfg := leaseCfg(dir, "b")
	cfg.RenewEvery = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, err := WatchClaim(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 4 || rec.Name != "b" {
		t.Fatalf("claimed lease = %+v, want b at epoch 4", rec)
	}
}

func TestReadLeaseCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LeaseName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadLease(dir); err == nil {
		t.Fatal("corrupt lease read succeeded; guessing a holder defeats fencing")
	}
}
