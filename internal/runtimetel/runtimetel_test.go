package runtimetel

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSampleNowFillsRuntimeFields(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Registry: reg, RingSize: 4})
	runtime.GC() // at least one pause in the cumulative distribution
	s := c.SampleNow()

	if s.Time.IsZero() {
		t.Fatal("sample has no timestamp")
	}
	if s.Goroutines <= 0 {
		t.Fatalf("goroutines = %d, want > 0", s.Goroutines)
	}
	if s.HeapLiveBytes == 0 || s.HeapGoalBytes == 0 {
		t.Fatalf("heap live/goal = %d/%d, want both nonzero", s.HeapLiveBytes, s.HeapGoalBytes)
	}
	if s.GCCycles == 0 {
		t.Fatal("gc cycles = 0 after an explicit runtime.GC()")
	}
	if v := reg.Gauge("runtime_goroutines").Value(); v != float64(s.Goroutines) {
		t.Fatalf("runtime_goroutines gauge = %v, sample says %d", v, s.Goroutines)
	}
	if v := reg.Gauge("runtime_heap_live_bytes").Value(); v == 0 {
		t.Fatal("runtime_heap_live_bytes gauge not set")
	}
}

func TestRingBoundsHistory(t *testing.T) {
	c := New(Options{RingSize: 3})
	for i := 0; i < 5; i++ {
		c.SampleNow()
	}
	h := c.History()
	if len(h) != 3 {
		t.Fatalf("history length = %d, want ring size 3", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].Time.Before(h[i-1].Time) {
			t.Fatal("history not oldest-first")
		}
	}
	latest, ok := c.Latest()
	if !ok || !latest.Time.Equal(h[len(h)-1].Time) {
		t.Fatal("Latest disagrees with the newest history entry")
	}
}

func TestAppSamplerFoldsInto(t *testing.T) {
	var prevSeen bool
	c := New(Options{
		RingSize: 4,
		AppSampler: func(prev, cur *Sample) {
			prevSeen = prev != nil
			if cur.App == nil {
				cur.App = map[string]float64{}
			}
			cur.App["qps"] = 42
		},
	})
	first := c.SampleNow()
	if prevSeen {
		t.Fatal("AppSampler saw a prev on the first tick")
	}
	if first.App["qps"] != 42 {
		t.Fatalf("first sample App = %v, want qps 42", first.App)
	}
	c.SampleNow()
	if !prevSeen {
		t.Fatal("AppSampler did not receive prev on the second tick")
	}
}

func TestStartStop(t *testing.T) {
	c := New(Options{Interval: time.Millisecond, RingSize: 8})
	c.Start()
	deadline := time.After(time.Second)
	for {
		if _, ok := c.Latest(); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no sample within 1s of Start")
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	c.Stop() // idempotent

	unstarted := New(Options{})
	unstarted.Stop() // must not hang
}

func TestSetBuildInfo(t *testing.T) {
	reg := obs.NewRegistry()
	SetBuildInfo(reg)
	found := false
	for _, s := range reg.Snapshots() {
		if s.Name == "eil_build_info" {
			found = true
			if s.Value != 1 {
				t.Fatalf("eil_build_info = %v, want constant 1", s.Value)
			}
			if s.Labels["go_version"] == "" {
				t.Fatal("eil_build_info lacks go_version label")
			}
			if s.Labels["revision"] == "" {
				t.Fatal("eil_build_info lacks revision label (should be 'unknown' outside VCS)")
			}
		}
	}
	if !found {
		t.Fatal("eil_build_info gauge not exported")
	}
}

func TestHistQuantile(t *testing.T) {
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}
}
