// Package runtimetel is EIL's runtime telemetry collector: a ticker-driven
// sampler that reads the Go runtime's own metrics (GC pause distribution,
// heap live and goal, goroutine count, scheduler latency, process CPU) into
// obs gauges and histograms, and keeps a bounded in-memory ring of
// timestamped samples so the /debug/dash surface can draw history without
// any external time-series store.
//
// The paper's EIL ran as a long-lived service for a community of practice;
// "is the process healthy right now" questions (is the heap growing toward
// its goal, are GC pauses eating the latency budget, is the scheduler
// backed up) are answered here, feeding both the health watermark checks
// (internal/health) and the operator dashboard.
//
// An optional AppSampler hook folds application-level figures (QPS, request
// p99, SLO burn rate, breaker states) into each sample, so one ring carries
// the whole one-screen story.
package runtimetel

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults.
const (
	DefInterval = 10 * time.Second
	DefRingSize = 720 // 2h of history at the default interval
)

// Sample is one timestamped reading of the runtime and (optionally) the
// application. Cumulative fields (GCCycles, CPUSeconds) grow monotonically;
// the dashboard derives per-interval rates from consecutive samples.
type Sample struct {
	Time time.Time `json:"time"`

	Goroutines    int    `json:"goroutines"`
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	HeapGoalBytes uint64 `json:"heap_goal_bytes"`
	GCCycles      uint64 `json:"gc_cycles"`

	// GCPauseP50/P99 are quantiles of the runtime's cumulative GC pause
	// distribution; SchedLatencyP50/P99 likewise for time goroutines spend
	// runnable before running.
	GCPauseP50      float64 `json:"gc_pause_p50_seconds"`
	GCPauseP99      float64 `json:"gc_pause_p99_seconds"`
	SchedLatencyP50 float64 `json:"sched_latency_p50_seconds"`
	SchedLatencyP99 float64 `json:"sched_latency_p99_seconds"`

	// CPUSeconds is the cumulative non-idle CPU estimate for the process;
	// CPUFrac is the utilization over the interval ending at this sample
	// (0..GOMAXPROCS), 0 on the first sample.
	CPUSeconds float64 `json:"cpu_seconds"`
	CPUFrac    float64 `json:"cpu_frac"`

	// App carries application-level figures the AppSampler recorded (for
	// example "qps", "http_p99_seconds", "slo_burn", "breakers_open").
	App map[string]float64 `json:"app,omitempty"`
}

// Options configures a Collector.
type Options struct {
	// Interval is the sampling cadence (0 = DefInterval).
	Interval time.Duration
	// RingSize bounds the retained history (0 = DefRingSize).
	RingSize int
	// Registry receives runtime_* gauges/histograms and process_* gauges on
	// every sample; nil disables metric export (the ring still fills).
	Registry *obs.Registry
	// AppSampler, when set, runs once per tick after the runtime fields are
	// filled, to fold application-level samples into cur.App. prev is nil on
	// the first tick. It runs on the collector goroutine; keep it cheap.
	AppSampler func(prev, cur *Sample)
}

// runtime/metrics names the collector samples. Looked up against
// metrics.All() at construction so a missing name (older/newer toolchain)
// degrades to a zero field instead of a panic.
const (
	mGoroutines = "/sched/goroutines:goroutines"
	mHeapLive   = "/memory/classes/heap/objects:bytes"
	mHeapGoal   = "/gc/heap/goal:bytes"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mGCPauses   = "/sched/pauses/total/gc:seconds"
	mGCPausesGo = "/gc/pauses:seconds" // pre-1.22 spelling
	mSchedLat   = "/sched/latencies:seconds"
	mCPUTotal   = "/cpu/classes/total:cpu-seconds"
	mCPUIdle    = "/cpu/classes/idle:cpu-seconds"
)

// Collector samples the runtime on a fixed cadence into a bounded ring and
// the obs registry. Construct with New; Start launches the sampling
// goroutine, Stop halts it. SampleNow may also be called directly (tests,
// benchmarks, CLI one-shots) without Start.
type Collector struct {
	opts Options

	mu   sync.Mutex
	ring []Sample
	next int
	full bool
	prev *Sample

	// reusable runtime/metrics read batch; index maps name -> batch slot.
	batch []metrics.Sample
	index map[string]int
	// prevGC retains the last GC pause histogram so bucket deltas can be
	// re-observed into the obs histogram.
	prevGC *metrics.Float64Histogram

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New returns a collector; call Start to begin sampling.
func New(opts Options) *Collector {
	if opts.Interval <= 0 {
		opts.Interval = DefInterval
	}
	if opts.RingSize <= 0 {
		opts.RingSize = DefRingSize
	}
	c := &Collector{
		opts:  opts,
		ring:  make([]Sample, opts.RingSize),
		index: map[string]int{},
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	known := map[string]bool{}
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	want := []string{mGoroutines, mHeapLive, mHeapGoal, mGCCycles, mGCPauses, mGCPausesGo, mSchedLat, mCPUTotal, mCPUIdle}
	for _, name := range want {
		if !known[name] {
			continue
		}
		c.index[name] = len(c.batch)
		c.batch = append(c.batch, metrics.Sample{Name: name})
	}
	return c
}

// Interval reports the sampling cadence.
func (c *Collector) Interval() time.Duration { return c.opts.Interval }

// Start launches the sampling goroutine (idempotent). One sample is taken
// immediately so the ring is never empty while running.
func (c *Collector) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			c.SampleNow()
			tick := time.NewTicker(c.opts.Interval)
			defer tick.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tick.C:
					c.SampleNow()
				}
			}
		}()
	})
}

// Stop halts the sampling goroutine and waits for it to exit (idempotent;
// a never-started collector stops trivially).
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.done:
	default:
		// Not started: nothing to wait for.
		c.startOnce.Do(func() { close(c.done) })
		<-c.done
	}
}

// uint64At reads one batch slot as a uint64 (0 when absent or non-integer).
func (c *Collector) uint64At(name string) uint64 {
	i, ok := c.index[name]
	if !ok {
		return 0
	}
	v := c.batch[i].Value
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return v.Uint64()
}

// float64At reads one batch slot as a float64 (0 when absent).
func (c *Collector) float64At(name string) float64 {
	i, ok := c.index[name]
	if !ok {
		return 0
	}
	v := c.batch[i].Value
	if v.Kind() != metrics.KindFloat64 {
		return 0
	}
	return v.Float64()
}

// histAt reads one batch slot as a histogram (nil when absent).
func (c *Collector) histAt(name string) *metrics.Float64Histogram {
	i, ok := c.index[name]
	if !ok {
		return nil
	}
	v := c.batch[i].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return v.Float64Histogram()
}

// histQuantile estimates the q-quantile of a runtime histogram by taking
// the upper bound of the owning bucket (runtime buckets are fine-grained
// enough that interpolation adds nothing). Infinite bounds clamp to the
// nearest finite one.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, n := range h.Counts {
		cum += n
		if float64(cum) >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			hi := h.Buckets[i+1]
			if hi > 1e308 || hi < -1e308 { // +/-Inf edge bucket
				hi = h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// observeHistDelta replays the bucket-count growth between two readings of
// a cumulative runtime histogram into an obs histogram, observing each new
// event at its bucket midpoint. Per-bucket replay is capped so a huge burst
// cannot stall the sampler; the cap loses resolution, not totals, for the
// gauges (which come from the cumulative distribution anyway).
func observeHistDelta(dst *obs.Histogram, prev, cur *metrics.Float64Histogram) {
	if dst == nil || cur == nil {
		return
	}
	const maxPerBucket = 1024
	for i, n := range cur.Counts {
		var before uint64
		if prev != nil && len(prev.Counts) == len(cur.Counts) {
			before = prev.Counts[i]
		}
		if n <= before {
			continue
		}
		delta := n - before
		if delta > maxPerBucket {
			delta = maxPerBucket
		}
		lo, hi := cur.Buckets[i], cur.Buckets[i+1]
		if lo < -1e308 {
			lo = hi
		}
		if hi > 1e308 {
			hi = lo
		}
		mid := (lo + hi) / 2
		for k := uint64(0); k < delta; k++ {
			dst.Observe(mid)
		}
	}
}

// cloneHist deep-copies a runtime histogram's counts (bucket bounds are
// immutable and shared).
func cloneHist(h *metrics.Float64Histogram) *metrics.Float64Histogram {
	if h == nil {
		return nil
	}
	out := &metrics.Float64Histogram{Buckets: h.Buckets}
	out.Counts = append([]uint64(nil), h.Counts...)
	return out
}

// SampleNow takes one sample synchronously: reads the runtime, updates the
// registry, runs the AppSampler, and appends to the ring. It returns the
// sample taken.
func (c *Collector) SampleNow() Sample {
	c.mu.Lock()
	defer c.mu.Unlock()

	metrics.Read(c.batch)
	cur := Sample{Time: time.Now()}
	cur.Goroutines = int(c.uint64At(mGoroutines))
	if cur.Goroutines == 0 {
		cur.Goroutines = runtime.NumGoroutine()
	}
	cur.HeapLiveBytes = c.uint64At(mHeapLive)
	cur.HeapGoalBytes = c.uint64At(mHeapGoal)
	cur.GCCycles = c.uint64At(mGCCycles)

	gcHist := c.histAt(mGCPauses)
	if gcHist == nil {
		gcHist = c.histAt(mGCPausesGo)
	}
	cur.GCPauseP50 = histQuantile(gcHist, 0.50)
	cur.GCPauseP99 = histQuantile(gcHist, 0.99)
	schedHist := c.histAt(mSchedLat)
	cur.SchedLatencyP50 = histQuantile(schedHist, 0.50)
	cur.SchedLatencyP99 = histQuantile(schedHist, 0.99)

	if total := c.float64At(mCPUTotal); total > 0 {
		cur.CPUSeconds = total - c.float64At(mCPUIdle)
	}
	if c.prev != nil {
		if dt := cur.Time.Sub(c.prev.Time).Seconds(); dt > 0 && cur.CPUSeconds >= c.prev.CPUSeconds {
			cur.CPUFrac = (cur.CPUSeconds - c.prev.CPUSeconds) / dt
		}
	}

	if reg := c.opts.Registry; reg != nil {
		reg.Gauge("runtime_goroutines").Set(float64(cur.Goroutines))
		reg.Gauge("runtime_heap_live_bytes").Set(float64(cur.HeapLiveBytes))
		reg.Gauge("runtime_heap_goal_bytes").Set(float64(cur.HeapGoalBytes))
		reg.Gauge("runtime_gc_cycles_total").Set(float64(cur.GCCycles))
		reg.Gauge("runtime_gc_pause_p99_seconds").Set(cur.GCPauseP99)
		reg.Gauge("runtime_sched_latency_p99_seconds").Set(cur.SchedLatencyP99)
		reg.Gauge("process_cpu_seconds_total").Set(cur.CPUSeconds)
		reg.Gauge("process_cpu_utilization").Set(cur.CPUFrac)
		observeHistDelta(reg.Histogram("runtime_gc_pause_seconds", nil), c.prevGC, gcHist)
	}
	c.prevGC = cloneHist(gcHist)

	if c.opts.AppSampler != nil {
		c.opts.AppSampler(c.prev, &cur)
	}

	c.ring[c.next] = cur
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.full = true
	}
	snap := cur
	c.prev = &snap
	return cur
}

// Latest returns the most recent sample (ok=false before the first one).
func (c *Collector) Latest() (Sample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prev == nil {
		return Sample{}, false
	}
	return *c.prev, true
}

// History returns the retained samples, oldest first.
func (c *Collector) History() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.full {
		out := make([]Sample, c.next)
		copy(out, c.ring[:c.next])
		return out
	}
	out := make([]Sample, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	out = append(out, c.ring[:c.next]...)
	return out
}

// Info reports the build's identity: Go version plus the VCS revision,
// commit time, and dirty flag embedded by the toolchain (empty when built
// outside a VCS checkout, e.g. go test binaries).
func Info() (goVersion, revision, vcsTime string, modified bool) {
	goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, "", "", false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.time":
			vcsTime = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return goVersion, revision, vcsTime, modified
}

// ReportHeader is the build-identity block every committed benchmark
// artifact embeds: which build produced the numbers and on what hardware
// shape. A BENCH json without this is uninterpretable a few PRs later —
// "was that before or after the sharding change, and on how many CPUs?"
type ReportHeader struct {
	GoVersion string `json:"go_version"`
	// Module and ModuleVersion identify the main module ("(devel)" for a
	// working-tree build).
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	// Revision/VCSTime/Dirty are the toolchain-stamped VCS identity; empty
	// outside a checkout (e.g. go test binaries).
	Revision string `json:"revision,omitempty"`
	VCSTime  string `json:"vcs_time,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`

	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// NewReportHeader snapshots the current build and host identity.
func NewReportHeader() ReportHeader {
	h := ReportHeader{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	h.GoVersion, h.Revision, h.VCSTime, h.Dirty = Info()
	if bi, ok := debug.ReadBuildInfo(); ok {
		h.Module = bi.Main.Path
		h.ModuleVersion = bi.Main.Version
	}
	return h
}

// SetBuildInfo exports the build identity as the conventional constant-1
// info gauge (eil_build_info{go_version=...,revision=...,vcs_time=...}),
// so dashboards and scrapes can tell exactly which build is serving.
func SetBuildInfo(reg *obs.Registry) {
	goVer, rev, at, modified := Info()
	if rev == "" {
		rev = "unknown"
	}
	mod := "false"
	if modified {
		mod = "true"
	}
	reg.Gauge("eil_build_info",
		"go_version", goVer,
		"revision", rev,
		"vcs_time", at,
		"modified", mod,
	).Set(1)
}
