// Package studies reproduces the paper's §2 information-needs study: the
// classification of 120 email-distribution-list threads into the four
// meta-query categories (and the social-networking solicitation count).
// The paper's authors read the threads by hand; here a rule-based
// categorizer (and, for comparison, a trained naive Bayes model) recovers
// the planted intents, and the reported percentages are measured over the
// categorizer's output.
package studies

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/synth"
	"repro/internal/textproc"
)

// Categories of the study.
const (
	MQ1    = "mq1"    // scope queries: 38% in the paper
	MQ2    = "mq2"    // worked-with-person queries: 17%
	MQ3    = "mq3"    // worked-in-role queries: 36%
	MQ4    = "mq4"    // service+keyword queries: 29%
	Social = "social" // social-networking solicitations: 63/120
)

// Categorize applies the rule-based categorizer to one thread's text and
// returns its labels. The rules mirror the linguistic shape of the four
// meta-queries in §2.
func Categorize(text string) (labels []string, social bool) {
	t := strings.ToLower(text)
	if strings.Contains(t, "scope that involves") || strings.Contains(t, "have a scope") ||
		strings.Contains(t, "in scope") && strings.Contains(t, "engagement") {
		labels = append(labels, MQ1)
	}
	if strings.Contains(t, "worked with") {
		labels = append(labels, MQ2)
	}
	if strings.Contains(t, "capacity of") || strings.Contains(t, "in the capacity") {
		labels = append(labels, MQ3)
	}
	if strings.Contains(t, "that involved") || strings.Contains(t, "engagements that") {
		labels = append(labels, MQ4)
	}
	social = strings.Contains(t, "worked with") || strings.Contains(t, "capacity of") ||
		strings.Contains(t, "right person") || strings.Contains(t, "point me to") ||
		strings.Contains(t, "person to talk")
	return labels, social
}

// Result is the measured study outcome.
type Result struct {
	Threads int
	// Measured counts per category from the rule-based categorizer.
	Measured map[string]int
	// Planted counts (generator ground truth).
	Planted map[string]int
	// Accuracy is the per-label agreement of the categorizer with the
	// planted intents, micro-averaged.
	Accuracy float64
	// NBAccuracy is the naive Bayes classifier's single-label accuracy on
	// a held-out half of the single-intent threads.
	NBAccuracy float64
}

// Percent renders a measured count as a percentage of threads.
func (r Result) Percent(label string) float64 {
	if r.Threads == 0 {
		return 0
	}
	return 100 * float64(r.Measured[label]) / float64(r.Threads)
}

// Run generates the 120-thread list and measures the category mix.
func Run(seed int64) (Result, error) {
	threads := synth.GenerateEmailStudy(seed)
	r := Result{
		Threads:  len(threads),
		Measured: map[string]int{},
		Planted:  map[string]int{},
	}
	agree, total := 0, 0
	for i := range threads {
		th := &threads[i]
		labels, social := Categorize(th.Subject + "\n" + th.Body)
		for _, l := range labels {
			r.Measured[l]++
		}
		if social {
			r.Measured[Social]++
		}
		for _, l := range th.Intents {
			r.Planted[l]++
		}
		if th.Social {
			r.Planted[Social]++
		}
		for _, l := range []string{MQ1, MQ2, MQ3, MQ4} {
			total++
			if contains(labels, l) == th.HasIntent(l) {
				agree++
			}
		}
		total++
		if social == th.Social {
			agree++
		}
	}
	if total > 0 {
		r.Accuracy = float64(agree) / float64(total)
	}

	nb, err := nbCrossValidate(threads)
	if err != nil {
		return r, err
	}
	r.NBAccuracy = nb
	return r, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// nbCrossValidate trains a naive Bayes model on the even-indexed
// single-intent threads and tests on the odd-indexed ones — the
// classifier-based annotator's accuracy story.
func nbCrossValidate(threads []synth.EmailThread) (float64, error) {
	var single []*synth.EmailThread
	for i := range threads {
		if len(threads[i].Intents) == 1 {
			single = append(single, &threads[i])
		}
	}
	if len(single) < 4 {
		return 0, fmt.Errorf("studies: too few single-intent threads: %d", len(single))
	}
	model := classify.New(textproc.DefaultAnalyzer)
	trained := 0
	for i, th := range single {
		if i%2 == 0 {
			model.Learn(th.Intents[0], th.Subject+"\n"+th.Body)
			trained++
		}
	}
	if trained == 0 {
		return 0, fmt.Errorf("studies: empty training split")
	}
	correct, tested := 0, 0
	for i, th := range single {
		if i%2 == 0 {
			continue
		}
		label, _, err := model.Classify(th.Subject + "\n" + th.Body)
		if err != nil {
			return 0, err
		}
		tested++
		if label == th.Intents[0] {
			correct++
		}
	}
	if tested == 0 {
		return 0, fmt.Errorf("studies: empty test split")
	}
	return float64(correct) / float64(tested), nil
}
