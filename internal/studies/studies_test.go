package studies

import (
	"math"
	"testing"
)

func TestCategorizeRules(t *testing.T) {
	cases := []struct {
		text   string
		labels []string
		social bool
	}{
		{"Which business engagements have a scope that involves Network Services?", []string{MQ1}, false},
		{"Who in the CSE role has worked with Pat Lee in Borealis?", []string{MQ2}, true},
		{"Has anyone worked in the capacity of cross tower TSA?", []string{MQ3}, true},
		{"Who has worked on Storage engagements that involved data replication?", []string{MQ4}, false},
		{"Please point me to the right person to talk to about payroll.", nil, true},
		{"Sharing the quarterly collateral.", nil, false},
	}
	for _, c := range cases {
		labels, social := Categorize(c.text)
		if social != c.social {
			t.Errorf("Categorize(%q) social = %v, want %v", c.text, social, c.social)
		}
		if len(labels) != len(c.labels) {
			t.Errorf("Categorize(%q) labels = %v, want %v", c.text, labels, c.labels)
			continue
		}
		for i := range labels {
			if labels[i] != c.labels[i] {
				t.Errorf("Categorize(%q) labels = %v, want %v", c.text, labels, c.labels)
			}
		}
	}
}

func TestRunRecoversMarginals(t *testing.T) {
	r, err := Run(2008)
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads != 120 {
		t.Fatalf("threads = %d", r.Threads)
	}
	// Paper percentages: MQ1 38%, MQ2 17%, MQ3 36%, MQ4 29%, social 63/120
	// = 52.5%. The rule-based categorizer should land within a few points.
	paper := map[string]float64{MQ1: 38, MQ2: 17, MQ3: 36, MQ4: 29, Social: 52.5}
	for label, want := range paper {
		got := r.Percent(label)
		if math.Abs(got-want) > 8 {
			t.Errorf("%s = %.1f%%, paper reports %.1f%%", label, got, want)
		}
	}
	if r.Accuracy < 0.9 {
		t.Errorf("categorizer accuracy = %.2f", r.Accuracy)
	}
	if r.NBAccuracy < 0.6 {
		t.Errorf("naive Bayes accuracy = %.2f", r.NBAccuracy)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{MQ1, MQ2, MQ3, MQ4, Social} {
		if a.Measured[label] != b.Measured[label] {
			t.Fatalf("nondeterministic study: %s %d vs %d", label, a.Measured[label], b.Measured[label])
		}
	}
}

func TestPercentZeroThreads(t *testing.T) {
	var r Result
	if r.Percent(MQ1) != 0 {
		t.Fatal("Percent on empty result")
	}
}
