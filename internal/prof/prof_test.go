package prof

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

func TestRingAddListOpen(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRing(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(KindHeap, "unit test", []byte("profile-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(KindCPU, "page /api/search!", []byte("profile-b")); err != nil {
		t.Fatal(err)
	}
	caps := r.List()
	if len(caps) != 2 {
		t.Fatalf("list = %d captures, want 2", len(caps))
	}
	if caps[0].Kind != KindHeap || caps[0].Reason != "unit-test" || caps[0].Seq != 1 {
		t.Errorf("first capture = %+v", caps[0])
	}
	if caps[1].Kind != KindCPU || !strings.Contains(caps[1].Reason, "page") {
		t.Errorf("second capture = %+v", caps[1])
	}
	rc, err := r.Open(caps[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "profile-b" {
		t.Errorf("content = %q", data)
	}
}

func TestRingSeqSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	r, _ := OpenRing(dir, 8, 0)
	r.Add(KindHeap, "one", []byte("x"))
	r.Add(KindHeap, "two", []byte("y"))
	r2, err := OpenRing(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := r2.Add(KindHeap, "three", []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq != 3 {
		t.Errorf("seq after reopen = %d, want 3", c.Seq)
	}
}

func TestRingPrunesOldest(t *testing.T) {
	dir := t.TempDir()
	r, _ := OpenRing(dir, 3, 0)
	for i := 0; i < 6; i++ {
		if _, err := r.Add(KindHeap, "n", []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	caps := r.List()
	if len(caps) != 3 {
		t.Fatalf("retained %d captures, want 3", len(caps))
	}
	if caps[0].Seq != 4 || caps[2].Seq != 6 {
		t.Errorf("retained seqs %d..%d, want 4..6", caps[0].Seq, caps[2].Seq)
	}

	// Byte budget prunes too.
	rb, _ := OpenRing(t.TempDir(), 100, 10)
	rb.Add(KindHeap, "a", []byte("12345678")) // 8 bytes
	rb.Add(KindHeap, "b", []byte("12345678")) // 16 total > 10: a goes
	caps = rb.List()
	if len(caps) != 1 || caps[0].Reason != "b" {
		t.Errorf("byte-pruned ring = %+v, want only b", caps)
	}
}

func TestRingOpenRejectsTraversal(t *testing.T) {
	dir := t.TempDir()
	r, _ := OpenRing(dir, 8, 0)
	// A real file outside the capture namespace must be unreachable.
	os.WriteFile(filepath.Join(dir, "secrets.txt"), []byte("no"), 0o644)
	for _, name := range []string{
		"../secrets.txt", "..%2Fsecrets.txt", "/etc/passwd",
		"secrets.txt", "00000001-heap.pprof", "x-heap-y.pprof",
	} {
		if _, err := r.Open(name); err == nil {
			t.Errorf("Open(%q) succeeded, want rejection", name)
		}
	}
}

func TestCaptureNowHeapAndGoroutine(t *testing.T) {
	r, _ := OpenRing(t.TempDir(), 8, 0)
	p := New(Options{Ring: r})
	caps, err := p.CaptureNow("unit", KindHeap, KindGoroutine)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 2 {
		t.Fatalf("captures = %d, want 2", len(caps))
	}
	for _, c := range caps {
		if c.Size == 0 {
			t.Errorf("capture %s is empty", c.Name)
		}
	}
}

func TestCaptureEventRateLimited(t *testing.T) {
	r, _ := OpenRing(t.TempDir(), 16, 0)
	p := New(Options{Ring: r, EventKinds: []string{KindGoroutine}, MinEventGap: time.Hour})
	p.CaptureEvent("page-1")
	p.CaptureEvent("page-2") // inside the gap: dropped
	p.Stop()                 // waits for the async capture
	caps := r.List()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1 (second event rate-limited)", len(caps))
	}
	if caps[0].Reason != "page-1" {
		t.Errorf("capture reason = %q", caps[0].Reason)
	}
}

func TestCPUGuard(t *testing.T) {
	r, _ := OpenRing(t.TempDir(), 8, 0)
	p := New(Options{Ring: r, CPUSeconds: 1})

	// Someone else (an eilbench -cpuprofile, say) holds the CPU profiler.
	var sink strings.Builder
	if err := pprof.StartCPUProfile(&sink); err != nil {
		t.Skipf("cannot start ambient cpu profile: %v", err)
	}
	_, err := p.CaptureNow("busy", KindCPU)
	pprof.StopCPUProfile()
	if err == nil {
		t.Fatal("cpu capture with ambient profile active should fail")
	}

	// Our own guard: ProfilePhase still runs f and stores the heap capture.
	caps, err := p.ProfilePhase("phase", func() {})
	if err != nil {
		t.Fatalf("ProfilePhase after guard release: %v", err)
	}
	kinds := map[string]bool{}
	for _, c := range caps {
		kinds[c.Kind] = true
	}
	if !kinds[KindCPU] || !kinds[KindHeap] {
		t.Errorf("phase captures = %+v, want cpu + heap", caps)
	}
}

func TestProfilePhaseWhileCPUBusy(t *testing.T) {
	r, _ := OpenRing(t.TempDir(), 8, 0)
	p := New(Options{Ring: r})
	var sink strings.Builder
	if err := pprof.StartCPUProfile(&sink); err != nil {
		t.Skipf("cannot start ambient cpu profile: %v", err)
	}
	defer pprof.StopCPUProfile()
	ran := false
	caps, err := p.ProfilePhase("busy-phase", func() { ran = true })
	if !ran {
		t.Fatal("f did not run")
	}
	if !errors.Is(err, ErrCPUBusy) {
		t.Errorf("err = %v, want ErrCPUBusy", err)
	}
	for _, c := range caps {
		if c.Kind == KindCPU {
			t.Errorf("stored a cpu capture while the profiler was busy: %+v", c)
		}
	}
}

func TestScheduledCaptures(t *testing.T) {
	r, _ := OpenRing(t.TempDir(), 16, 0)
	p := New(Options{Ring: r, Interval: 30 * time.Millisecond, ScheduledKinds: []string{KindGoroutine}})
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for len(r.List()) < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()
	if got := len(r.List()); got < 2 {
		t.Fatalf("scheduled captures = %d, want >= 2", got)
	}
	for _, c := range r.List() {
		if c.Reason != "schedule" || c.Kind != KindGoroutine {
			t.Errorf("capture = %+v", c)
		}
	}
}
