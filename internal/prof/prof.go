// Package prof is the continuous-profiling subsystem: it captures pprof
// profiles (CPU, heap, mutex, block, goroutine) on a schedule, on demand,
// and automatically when the SLO engine pages, and keeps them in a bounded
// on-disk ring an operator can browse over /debug/prof and pull into
// `go tool pprof` — so the profile that explains an incident exists even
// when nobody was watching when it happened.
//
// Two invariants shape the design. First, the runtime allows one CPU
// profile per process: every CPU capture goes through a package-level
// guard, and a capture that loses the race reports ErrCPUBusy instead of
// poisoning an eilbench -cpuprofile run (or another capture) already in
// flight. Second, disk is bounded: the ring prunes oldest-first past a
// capture-count and byte budget, so a paging route that flaps all night
// cannot fill the volume — the rate limit on event captures keeps the ring
// from churning past the incident window, too.
package prof

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Profile kinds.
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindMutex     = "mutex"
	KindBlock     = "block"
	KindGoroutine = "goroutine"
)

// ErrCPUBusy reports that a CPU profile is already being collected in this
// process (by this package or anyone else calling pprof.StartCPUProfile).
var ErrCPUBusy = errors.New("prof: cpu profile already in progress")

// cpuActive is the process-wide CPU-profile guard.
var cpuActive atomic.Bool

// Capture describes one stored profile.
type Capture struct {
	Name    string    `json:"name"` // file name within the ring dir
	Kind    string    `json:"kind"`
	Reason  string    `json:"reason"`
	Seq     uint64    `json:"seq"`
	Size    int64     `json:"size_bytes"`
	ModTime time.Time `json:"captured_at"`
}

// Ring is a bounded on-disk store of captures. Files are named
// NNNNNNNN-kind-reason.pprof; the sequence number survives restarts (a
// reopened ring resumes after the highest stored seq), so sorting by name
// is sorting by capture order.
type Ring struct {
	dir         string
	maxCaptures int
	maxBytes    int64

	mu  sync.Mutex
	seq uint64
}

// Ring defaults.
const (
	DefMaxCaptures = 64
	DefMaxBytes    = 256 << 20 // 256 MiB
)

// OpenRing creates (or reopens) a capture ring at dir. Zero bounds get
// DefMaxCaptures / DefMaxBytes.
func OpenRing(dir string, maxCaptures int, maxBytes int64) (*Ring, error) {
	if maxCaptures <= 0 {
		maxCaptures = DefMaxCaptures
	}
	if maxBytes <= 0 {
		maxBytes = DefMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: open ring: %w", err)
	}
	r := &Ring{dir: dir, maxCaptures: maxCaptures, maxBytes: maxBytes}
	for _, c := range r.List() {
		if c.Seq > r.seq {
			r.seq = c.Seq
		}
	}
	return r, nil
}

// Dir reports the ring's directory.
func (r *Ring) Dir() string { return r.dir }

var reasonClean = regexp.MustCompile(`[^a-z0-9_.]+`)

// sanitizeReason makes an arbitrary reason string filename- and URL-safe.
func sanitizeReason(reason string) string {
	s := reasonClean.ReplaceAllString(strings.ToLower(reason), "-")
	s = strings.Trim(s, "-")
	if s == "" {
		s = "manual"
	}
	if len(s) > 80 {
		s = s[:80]
	}
	return s
}

// Add stores one profile and prunes the ring to its bounds.
func (r *Ring) Add(kind, reason string, data []byte) (Capture, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	name := fmt.Sprintf("%08d-%s-%s.pprof", r.seq, kind, sanitizeReason(reason))
	path := filepath.Join(r.dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return Capture{}, fmt.Errorf("prof: store capture: %w", err)
	}
	r.pruneLocked()
	fi, err := os.Stat(path)
	if err != nil {
		// Pruning can legitimately evict the capture we just wrote if it
		// alone exceeds the byte budget.
		return Capture{}, fmt.Errorf("prof: capture evicted at write: %w", err)
	}
	c, _ := parseCaptureName(name)
	c.Size = fi.Size()
	c.ModTime = fi.ModTime()
	return c, nil
}

// pruneLocked deletes oldest captures until the count and byte budgets hold.
func (r *Ring) pruneLocked() {
	caps := r.listLocked()
	var total int64
	for _, c := range caps {
		total += c.Size
	}
	for i := 0; i < len(caps) && (len(caps)-i > r.maxCaptures || total > r.maxBytes); i++ {
		if err := os.Remove(filepath.Join(r.dir, caps[i].Name)); err == nil {
			total -= caps[i].Size
		}
	}
}

// List returns stored captures, oldest first.
func (r *Ring) List() []Capture {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.listLocked()
}

func (r *Ring) listLocked() []Capture {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	caps := make([]Capture, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		c, ok := parseCaptureName(e.Name())
		if !ok {
			continue
		}
		if fi, err := e.Info(); err == nil {
			c.Size = fi.Size()
			c.ModTime = fi.ModTime()
		}
		caps = append(caps, c)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].Seq < caps[j].Seq })
	return caps
}

// parseCaptureName decodes NNNNNNNN-kind-reason.pprof.
func parseCaptureName(name string) (Capture, bool) {
	base, ok := strings.CutSuffix(name, ".pprof")
	if !ok {
		return Capture{}, false
	}
	parts := strings.SplitN(base, "-", 3)
	if len(parts) != 3 {
		return Capture{}, false
	}
	seq, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return Capture{}, false
	}
	return Capture{Name: name, Seq: seq, Kind: parts[1], Reason: parts[2]}, true
}

// Open returns a reader over one stored capture. The name must be exactly
// a name List reported — anything with a path separator or that does not
// parse as a capture file is rejected, so a handler can pass user input
// straight through without directory-traversal risk.
func (r *Ring) Open(name string) (io.ReadCloser, error) {
	if name != filepath.Base(name) || strings.ContainsAny(name, `/\`) {
		return nil, fmt.Errorf("prof: invalid capture name %q", name)
	}
	if _, ok := parseCaptureName(name); !ok {
		return nil, fmt.Errorf("prof: invalid capture name %q", name)
	}
	return os.Open(filepath.Join(r.dir, name))
}

// Options configure a Profiler.
type Options struct {
	// Ring stores captures (required).
	Ring *Ring
	// Interval between scheduled background captures (0 disables the
	// schedule; on-demand and event captures still work).
	Interval time.Duration
	// ScheduledKinds are captured each Interval (default heap + goroutine:
	// cheap enough to take forever; CPU is reserved for events and phases
	// unless listed explicitly).
	ScheduledKinds []string
	// CPUSeconds is the CPU-profile window (default 5s).
	CPUSeconds int
	// EventKinds are captured by CaptureEvent (default cpu + heap + mutex
	// + goroutine — the incident bundle).
	EventKinds []string
	// MinEventGap rate-limits CaptureEvent so a flapping alert cannot churn
	// the ring past its own incident (default 1m).
	MinEventGap time.Duration
	// MutexFraction / BlockRate enable the runtime's mutex and block
	// profilers at Start (0 leaves the runtime setting untouched; mutex
	// and block captures without them are empty).
	MutexFraction int
	BlockRate     int
	// Registry, if set, gets eil_prof_captures_total / eil_prof_capture_errors_total.
	Registry *obs.Registry
	// Logf, if set, receives capture failures (schedule and event captures
	// have no caller to return errors to).
	Logf func(format string, args ...any)
}

// Profiler runs the capture schedule and serves on-demand captures.
type Profiler struct {
	opts Options

	mu        sync.Mutex
	stop      chan struct{}
	done      chan struct{}
	lastEvent time.Time
	events    sync.WaitGroup // in-flight async event captures
}

// New returns a profiler with defaults filled. Call Start for the
// background schedule, or use CaptureNow/CaptureEvent/ProfilePhase directly.
func New(opts Options) *Profiler {
	if len(opts.ScheduledKinds) == 0 {
		opts.ScheduledKinds = []string{KindHeap, KindGoroutine}
	}
	if len(opts.EventKinds) == 0 {
		opts.EventKinds = []string{KindCPU, KindHeap, KindMutex, KindGoroutine}
	}
	if opts.CPUSeconds <= 0 {
		opts.CPUSeconds = 5
	}
	if opts.MinEventGap <= 0 {
		opts.MinEventGap = time.Minute
	}
	return &Profiler{opts: opts}
}

// Ring exposes the profiler's capture store.
func (p *Profiler) Ring() *Ring { return p.opts.Ring }

func (p *Profiler) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// Start enables the runtime mutex/block profilers (if configured) and, when
// Interval is set, launches the background capture loop. Safe to call once.
func (p *Profiler) Start() {
	if p.opts.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(p.opts.MutexFraction)
	}
	if p.opts.BlockRate > 0 {
		runtime.SetBlockProfileRate(p.opts.BlockRate)
	}
	if p.opts.Interval <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Stop halts the schedule and waits for in-flight event captures.
func (p *Profiler) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	p.events.Wait()
}

func (p *Profiler) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(p.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if _, err := p.CaptureNow("schedule", p.opts.ScheduledKinds...); err != nil {
				p.logf("prof: scheduled capture: %v", err)
			}
		}
	}
}

// CaptureNow synchronously captures the given kinds (default: the
// scheduled set) under the given reason. A CPU capture blocks for
// CPUSeconds. Partial success is success: the error reflects the first
// failed kind, but every capturable kind is stored.
func (p *Profiler) CaptureNow(reason string, kinds ...string) ([]Capture, error) {
	if len(kinds) == 0 {
		kinds = p.opts.ScheduledKinds
	}
	var (
		caps     []Capture
		firstErr error
	)
	for _, kind := range kinds {
		data, err := p.capture(kind)
		if err == nil {
			var c Capture
			if c, err = p.opts.Ring.Add(kind, reason, data); err == nil {
				caps = append(caps, c)
			}
		}
		if err != nil {
			p.opts.Registry.Counter("eil_prof_capture_errors_total", "kind", kind).Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", kind, err)
			}
			continue
		}
		p.opts.Registry.Counter("eil_prof_captures_total", "kind", kind).Inc()
	}
	return caps, firstErr
}

// CaptureEvent asynchronously captures the incident bundle (EventKinds)
// for an alert or other trigger, rate-limited by MinEventGap. It returns
// immediately; the capture (CPU window included) runs on its own
// goroutine, so a paging SLO tick is not delayed by profiling.
func (p *Profiler) CaptureEvent(reason string) {
	p.mu.Lock()
	now := time.Now()
	if now.Sub(p.lastEvent) < p.opts.MinEventGap {
		p.mu.Unlock()
		return
	}
	p.lastEvent = now
	p.events.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.events.Done()
		if _, err := p.CaptureNow(reason, p.opts.EventKinds...); err != nil {
			p.logf("prof: event capture (%s): %v", reason, err)
		}
	}()
}

// ProfilePhase wraps f in a CPU profile and follows it with a heap
// capture — how eilbench profiles each load phase. If the CPU profiler is
// busy (say the run also passed -cpuprofile), f still runs and only the
// heap capture is stored.
func (p *Profiler) ProfilePhase(reason string, f func()) ([]Capture, error) {
	var caps []Capture
	var buf bytes.Buffer
	cpuOK := cpuActive.CompareAndSwap(false, true)
	if cpuOK {
		if err := pprof.StartCPUProfile(&buf); err != nil {
			cpuActive.Store(false)
			cpuOK = false
		}
	}
	f()
	var firstErr error
	if cpuOK {
		pprof.StopCPUProfile()
		cpuActive.Store(false)
		if c, err := p.opts.Ring.Add(KindCPU, reason, buf.Bytes()); err == nil {
			caps = append(caps, c)
			p.opts.Registry.Counter("eil_prof_captures_total", "kind", KindCPU).Inc()
		} else {
			firstErr = err
		}
	} else {
		firstErr = ErrCPUBusy
	}
	if hc, err := p.CaptureNow(reason, KindHeap); err == nil {
		caps = append(caps, hc...)
	} else if firstErr == nil {
		firstErr = err
	}
	return caps, firstErr
}

// capture renders one profile kind to bytes.
func (p *Profiler) capture(kind string) ([]byte, error) {
	var buf bytes.Buffer
	switch kind {
	case KindCPU:
		if !cpuActive.CompareAndSwap(false, true) {
			return nil, ErrCPUBusy
		}
		defer cpuActive.Store(false)
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return nil, err
		}
		time.Sleep(time.Duration(p.opts.CPUSeconds) * time.Second)
		pprof.StopCPUProfile()
	case KindHeap, KindMutex, KindBlock, KindGoroutine:
		prof := pprof.Lookup(kind)
		if prof == nil {
			return nil, fmt.Errorf("prof: unknown runtime profile %q", kind)
		}
		if err := prof.WriteTo(&buf, 0); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("prof: unknown profile kind %q", kind)
	}
	return buf.Bytes(), nil
}
