// Package analysis is EIL's text-analysis framework — the UIMA substitute.
// It provides the CAS (Common Analysis Structure) holding a document and its
// annotations, the Annotator interface with an aggregate composition, and
// the Pipeline that drives a CollectionReader through document-level
// annotators (in parallel) and then through Collection Processing Engines
// (Consumers) in stable document order.
package analysis

import (
	"sort"

	"repro/internal/docmodel"
)

// Annotation is one analysis result attached to a document. Span annotations
// carry [Begin, End) byte offsets into the document body; document-level
// annotations use Begin = End = -1.
type Annotation struct {
	// Type names the annotation kind: "scope", "person", "winstrategy",
	// "techsolution", "contract", ...
	Type string
	// Begin and End are byte offsets into the CAS document's Body, or -1
	// for document-level annotations.
	Begin, End int
	// Features carries the extracted fields (name, email, role, tower...).
	Features map[string]string
	// Confidence in [0, 1]; annotators default to 1 when they have no
	// calibrated signal.
	Confidence float64
	// Source records which annotator produced the annotation; collection
	// processing uses it to arbitrate between conflicting extractors.
	Source string
}

// Feature returns a feature value or "".
func (a Annotation) Feature(key string) string {
	if a.Features == nil {
		return ""
	}
	return a.Features[key]
}

// DocLevel reports whether the annotation is document-level (no span).
func (a Annotation) DocLevel() bool { return a.Begin < 0 }

// CAS is the per-document analysis container.
type CAS struct {
	Doc  *docmodel.Document
	anns []Annotation
}

// NewCAS wraps a document for analysis.
func NewCAS(doc *docmodel.Document) *CAS { return &CAS{Doc: doc} }

// Add appends an annotation. A zero Confidence is promoted to 1.
func (c *CAS) Add(a Annotation) {
	if a.Confidence == 0 {
		a.Confidence = 1
	}
	c.anns = append(c.anns, a)
}

// All returns all annotations in insertion order. The slice is shared; do
// not mutate.
func (c *CAS) All() []Annotation { return c.anns }

// Select returns annotations of one type, in insertion order.
func (c *CAS) Select(typ string) []Annotation {
	var out []Annotation
	for _, a := range c.anns {
		if a.Type == typ {
			out = append(out, a)
		}
	}
	return out
}

// Types returns the distinct annotation types present, sorted.
func (c *CAS) Types() []string {
	set := map[string]bool{}
	for _, a := range c.anns {
		set[a.Type] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Covered returns the body text covered by a span annotation, or "" for
// document-level annotations and out-of-range spans.
func (c *CAS) Covered(a Annotation) string {
	if a.Begin < 0 || a.End > len(c.Doc.Body) || a.Begin >= a.End {
		return ""
	}
	return c.Doc.Body[a.Begin:a.End]
}
