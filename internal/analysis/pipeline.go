package analysis

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/docmodel"
)

// Annotator processes one document's CAS, adding annotations. Annotators
// must be safe for concurrent Process calls on distinct CASes.
type Annotator interface {
	// Name identifies the annotator in annotation Source fields and stats.
	Name() string
	// Process analyzes the CAS and adds annotations. Errors abort only
	// this document; the pipeline records and continues.
	Process(cas *CAS) error
}

// AnnotatorFunc adapts a function to the Annotator interface.
type AnnotatorFunc struct {
	ID string
	Fn func(cas *CAS) error
}

// Name implements Annotator.
func (a AnnotatorFunc) Name() string { return a.ID }

// Process implements Annotator.
func (a AnnotatorFunc) Process(cas *CAS) error { return a.Fn(cas) }

// Aggregate composes annotators into a fixed flow, the "composite annotator"
// of the paper's Table 1: primitives run in order, each seeing the
// annotations of its predecessors (capturing control and data flow).
type Aggregate struct {
	ID    string
	Steps []Annotator
}

// Name implements Annotator.
func (g *Aggregate) Name() string { return g.ID }

// Process implements Annotator by running each step in order. A step error
// stops the flow for this document.
func (g *Aggregate) Process(cas *CAS) error {
	for _, s := range g.Steps {
		if err := s.Process(cas); err != nil {
			return fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return nil
}

// CollectionReader produces the document stream (the Data Acquisition box of
// the EIL architecture). Next returns io.EOF when exhausted.
type CollectionReader interface {
	Next() (*docmodel.Document, error)
}

// SliceReader reads documents from a slice.
type SliceReader struct {
	Docs []*docmodel.Document
	i    int
}

// Next implements CollectionReader.
func (r *SliceReader) Next() (*docmodel.Document, error) {
	if r.i >= len(r.Docs) {
		return nil, io.EOF
	}
	d := r.Docs[r.i]
	r.i++
	return d, nil
}

// Consumer is a Collection Processing Engine: it sees every analyzed CAS in
// reader order (Consume) and then finalizes collection-level results (End).
// The paper's §3.4 CPEs — scope aggregation with occurrence counting,
// de-duplication, normalization — implement this interface.
type Consumer interface {
	Name() string
	Consume(cas *CAS) error
	End() error
}

// Stats summarizes a pipeline run.
type Stats struct {
	Docs        int // documents read
	Failed      int // documents whose annotator flow errored
	Annotations int // total annotations produced on successful documents
	Errors      []error
}

// Pipeline wires a reader through an annotator to consumers.
type Pipeline struct {
	Reader    CollectionReader
	Annotator Annotator
	Consumers []Consumer
	// Workers bounds annotator parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxErrors aborts the run when more than this many documents fail;
	// 0 means unlimited tolerance.
	MaxErrors int
}

// errTooManyFailures aborts a run that exceeds MaxErrors.
var errTooManyFailures = errors.New("analysis: too many document failures")

// Run drives the pipeline to completion. Document-level analysis runs on
// Workers goroutines; consumers then see the analyzed CASes serially, in
// reader order, so collection-level processing is deterministic.
func (p *Pipeline) Run() (Stats, error) {
	var stats Stats
	if p.Reader == nil {
		return stats, errors.New("analysis: pipeline has no reader")
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Read everything first: the corpus is in-memory by design, and a
	// materialized list gives a stable order for the consumer phase.
	var docs []*docmodel.Document
	for {
		d, err := p.Reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, fmt.Errorf("analysis: reader: %w", err)
		}
		docs = append(docs, d)
	}
	stats.Docs = len(docs)

	cases := make([]*CAS, len(docs))
	errs := make([]error, len(docs))
	if p.Annotator != nil {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, d := range docs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, d *docmodel.Document) {
				defer wg.Done()
				defer func() { <-sem }()
				cas := NewCAS(d)
				if err := p.Annotator.Process(cas); err != nil {
					errs[i] = fmt.Errorf("doc %s: %w", d.Path, err)
					return
				}
				cases[i] = cas
			}(i, d)
		}
		wg.Wait()
	} else {
		for i, d := range docs {
			cases[i] = NewCAS(d)
		}
	}

	for i := range docs {
		if errs[i] != nil {
			stats.Failed++
			stats.Errors = append(stats.Errors, errs[i])
			if p.MaxErrors > 0 && stats.Failed > p.MaxErrors {
				return stats, fmt.Errorf("%w: %d", errTooManyFailures, stats.Failed)
			}
			continue
		}
		stats.Annotations += len(cases[i].All())
		for _, c := range p.Consumers {
			if err := c.Consume(cases[i]); err != nil {
				return stats, fmt.Errorf("analysis: consumer %s: %w", c.Name(), err)
			}
		}
	}
	for _, c := range p.Consumers {
		if err := c.End(); err != nil {
			return stats, fmt.Errorf("analysis: consumer %s end: %w", c.Name(), err)
		}
	}
	return stats, nil
}
