package analysis

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/docmodel"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Annotator processes one document's CAS, adding annotations. Annotators
// must be safe for concurrent Process calls on distinct CASes.
type Annotator interface {
	// Name identifies the annotator in annotation Source fields and stats.
	Name() string
	// Process analyzes the CAS and adds annotations. Errors abort only
	// this document; the pipeline records and continues.
	Process(cas *CAS) error
}

// AnnotatorFunc adapts a function to the Annotator interface.
type AnnotatorFunc struct {
	ID string
	Fn func(cas *CAS) error
}

// Name implements Annotator.
func (a AnnotatorFunc) Name() string { return a.ID }

// Process implements Annotator.
func (a AnnotatorFunc) Process(cas *CAS) error { return a.Fn(cas) }

// Aggregate composes annotators into a fixed flow, the "composite annotator"
// of the paper's Table 1: primitives run in order, each seeing the
// annotations of its predecessors (capturing control and data flow).
type Aggregate struct {
	ID    string
	Steps []Annotator
}

// Name implements Annotator.
func (g *Aggregate) Name() string { return g.ID }

// Process implements Annotator by running each step in order. A step error
// stops the flow for this document.
func (g *Aggregate) Process(cas *CAS) error {
	for _, s := range g.Steps {
		if err := s.Process(cas); err != nil {
			return fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return nil
}

// CollectionReader produces the document stream (the Data Acquisition box of
// the EIL architecture). Next returns io.EOF when exhausted.
type CollectionReader interface {
	Next() (*docmodel.Document, error)
}

// SliceReader reads documents from a slice.
type SliceReader struct {
	Docs []*docmodel.Document
	i    int
}

// Next implements CollectionReader.
func (r *SliceReader) Next() (*docmodel.Document, error) {
	if r.i >= len(r.Docs) {
		return nil, io.EOF
	}
	d := r.Docs[r.i]
	r.i++
	return d, nil
}

// Consumer is a Collection Processing Engine: it sees every analyzed CAS in
// reader order (Consume) and then finalizes collection-level results (End).
// The paper's §3.4 CPEs — scope aggregation with occurrence counting,
// de-duplication, normalization — implement this interface.
type Consumer interface {
	Name() string
	Consume(cas *CAS) error
	End() error
}

// StageStat is one pipeline stage's aggregate cost: an annotator's wall
// time summed across workers (so it can exceed the run's elapsed time when
// the pipeline is parallel) or a collection processing engine's serial
// consume-plus-end time.
type StageStat struct {
	Name string
	Docs int // documents the stage processed
	// Failed counts documents the stage errored on (for an aggregate flow,
	// the step that failed charges the failure; later steps never see the
	// document).
	Failed int
	Wall   time.Duration
}

// Stats summarizes a pipeline run.
type Stats struct {
	Docs        int // documents read
	Failed      int // documents whose annotator flow errored
	Annotations int // total annotations produced on successful documents
	// Wall is the total elapsed time of Run, from first read to last
	// consumer End.
	Wall time.Duration
	// Annotators carries the per-annotator cost breakdown, in flow order.
	Annotators []StageStat
	// Consumers carries the per-CPE cost breakdown, in consumer order.
	Consumers []StageStat
	Errors    []error
}

// DocsPerSec is the run's document throughput (0 before Run completes).
func (s Stats) DocsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Docs) / s.Wall.Seconds()
}

// Pipeline wires a reader through an annotator to consumers.
type Pipeline struct {
	Reader    CollectionReader
	Annotator Annotator
	Consumers []Consumer
	// Workers bounds annotator parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxErrors aborts the run when more than this many documents fail;
	// 0 means unlimited tolerance.
	MaxErrors int
	// Metrics, when set, receives per-stage histograms and run counters
	// (ingest_* metric names); nil disables metric recording. Stats carries
	// the same timings either way.
	Metrics *obs.Registry
	// Tracer, when set, samples per-document traces of the annotator flow
	// (one child span per primitive annotator), so a pathological workbook
	// is attributable by path. Sampling rate is the tracer's SampleEvery.
	Tracer *trace.Tracer
}

// stageClock accumulates one stage's cost across concurrent workers.
type stageClock struct {
	name   string
	nanos  atomic.Int64
	docs   atomic.Int64
	failed atomic.Int64
	hist   *obs.Histogram // per-document duration; nil-safe
}

func (c *stageClock) stat() StageStat {
	return StageStat{
		Name:   c.name,
		Docs:   int(c.docs.Load()),
		Failed: int(c.failed.Load()),
		Wall:   time.Duration(c.nanos.Load()),
	}
}

// timedStep wraps an annotator, charging each Process call to its clock.
type timedStep struct {
	inner Annotator
	clock *stageClock
}

// Name implements Annotator.
func (t *timedStep) Name() string { return t.inner.Name() }

// Process implements Annotator.
func (t *timedStep) Process(cas *CAS) error {
	start := time.Now()
	err := t.inner.Process(cas)
	d := time.Since(start)
	t.clock.nanos.Add(d.Nanoseconds())
	t.clock.docs.Add(1)
	t.clock.hist.ObserveDuration(d)
	if err != nil {
		t.clock.failed.Add(1)
	}
	return err
}

// instrument wraps the pipeline's annotator with per-stage clocks. An
// aggregate flow is unwrapped so each primitive is charged separately —
// the per-annotator accounting of the paper's Table 1 components.
func (p *Pipeline) instrument() (Annotator, []*stageClock) {
	wrap := func(a Annotator) (*timedStep, *stageClock) {
		c := &stageClock{
			name: a.Name(),
			hist: p.Metrics.Histogram("ingest_annotator_seconds", nil, "annotator", a.Name()),
		}
		return &timedStep{inner: a, clock: c}, c
	}
	if agg, ok := p.Annotator.(*Aggregate); ok {
		steps := make([]Annotator, len(agg.Steps))
		clocks := make([]*stageClock, len(agg.Steps))
		for i, s := range agg.Steps {
			steps[i], clocks[i] = wrap(s)
		}
		return &Aggregate{ID: agg.ID, Steps: steps}, clocks
	}
	step, clock := wrap(p.Annotator)
	return step, []*stageClock{clock}
}

// processDoc runs the annotator flow for one document, under a sampled
// per-document trace when the pipeline has a tracer. The root span records
// the document path and deal; each primitive annotator gets a child span.
func (p *Pipeline) processDoc(annotator Annotator, cas *CAS) error {
	ctx, dtr := p.Tracer.Start(context.Background(), "ingest.doc", trace.StartOptions{})
	if dtr == nil {
		return annotator.Process(cas)
	}
	root := trace.FromContext(ctx)
	root.Set("path", cas.Doc.Path)
	if cas.Doc.DealID != "" {
		root.Set("deal", cas.Doc.DealID)
	}
	err := processSteps(ctx, annotator, cas)
	if err != nil {
		root.Set("error", err.Error())
	} else {
		root.SetInt("annotations", len(cas.All()))
	}
	dtr.Finish()
	return err
}

// processSteps mirrors Aggregate.Process with a span per step, so a traced
// document shows where its analysis time went.
func processSteps(ctx context.Context, a Annotator, cas *CAS) error {
	agg, ok := a.(*Aggregate)
	if !ok {
		_, sp := trace.StartSpan(ctx, a.Name())
		err := a.Process(cas)
		sp.End()
		return err
	}
	for _, s := range agg.Steps {
		_, sp := trace.StartSpan(ctx, s.Name())
		err := s.Process(cas)
		sp.End()
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name(), err)
		}
	}
	return nil
}

// errTooManyFailures aborts a run that exceeds MaxErrors.
var errTooManyFailures = errors.New("analysis: too many document failures")

// Run drives the pipeline to completion. Document-level analysis runs on
// Workers goroutines; consumers then see the analyzed CASes serially, in
// reader order, so collection-level processing is deterministic.
func (p *Pipeline) Run() (stats Stats, err error) {
	if p.Reader == nil {
		return stats, errors.New("analysis: pipeline has no reader")
	}
	runStart := time.Now()
	finish := func(clocks, cpeClocks []*stageClock) {
		stats.Wall = time.Since(runStart)
		for _, c := range clocks {
			stats.Annotators = append(stats.Annotators, c.stat())
		}
		for _, c := range cpeClocks {
			stats.Consumers = append(stats.Consumers, c.stat())
		}
		p.Metrics.Histogram("ingest_pipeline_seconds", nil).ObserveDuration(stats.Wall)
		p.Metrics.Counter("ingest_docs_total").Add(int64(stats.Docs))
		p.Metrics.Counter("ingest_doc_failures_total").Add(int64(stats.Failed))
		p.Metrics.Counter("ingest_annotations_total").Add(int64(stats.Annotations))
		p.Metrics.Gauge("ingest_docs_per_second").Set(stats.DocsPerSec())
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Read everything first: the corpus is in-memory by design, and a
	// materialized list gives a stable order for the consumer phase.
	var docs []*docmodel.Document
	for {
		d, err := p.Reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, fmt.Errorf("analysis: reader: %w", err)
		}
		docs = append(docs, d)
	}
	stats.Docs = len(docs)

	var annotator Annotator
	var clocks []*stageClock
	if p.Annotator != nil {
		annotator, clocks = p.instrument()
	}
	cpeClocks := make([]*stageClock, len(p.Consumers))
	for i, c := range p.Consumers {
		cpeClocks[i] = &stageClock{
			name: c.Name(),
			hist: p.Metrics.Histogram("ingest_cpe_seconds", nil, "cpe", c.Name()),
		}
	}
	defer finish(clocks, cpeClocks)

	cases := make([]*CAS, len(docs))
	errs := make([]error, len(docs))
	if annotator != nil {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, d := range docs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, d *docmodel.Document) {
				defer wg.Done()
				defer func() { <-sem }()
				cas := NewCAS(d)
				if err := p.processDoc(annotator, cas); err != nil {
					errs[i] = fmt.Errorf("doc %s: %w", d.Path, err)
					return
				}
				cases[i] = cas
			}(i, d)
		}
		wg.Wait()
	} else {
		for i, d := range docs {
			cases[i] = NewCAS(d)
		}
	}

	for i := range docs {
		if errs[i] != nil {
			stats.Failed++
			stats.Errors = append(stats.Errors, errs[i])
			if p.MaxErrors > 0 && stats.Failed > p.MaxErrors {
				return stats, fmt.Errorf("%w: %d", errTooManyFailures, stats.Failed)
			}
			continue
		}
		stats.Annotations += len(cases[i].All())
		for ci, c := range p.Consumers {
			start := time.Now()
			err := c.Consume(cases[i])
			d := time.Since(start)
			cpeClocks[ci].nanos.Add(d.Nanoseconds())
			cpeClocks[ci].docs.Add(1)
			cpeClocks[ci].hist.ObserveDuration(d)
			if err != nil {
				cpeClocks[ci].failed.Add(1)
				return stats, fmt.Errorf("analysis: consumer %s: %w", c.Name(), err)
			}
		}
	}
	for ci, c := range p.Consumers {
		start := time.Now()
		err := c.End()
		cpeClocks[ci].nanos.Add(time.Since(start).Nanoseconds())
		if err != nil {
			cpeClocks[ci].failed.Add(1)
			return stats, fmt.Errorf("analysis: consumer %s end: %w", c.Name(), err)
		}
	}
	return stats, nil
}
