package analysis

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/docmodel"
	"repro/internal/obs"
	"repro/internal/trace"
)

func doc(path, body string) *docmodel.Document {
	return &docmodel.Document{Path: path, Body: body, DealID: "DEAL X"}
}

func TestCASAddSelect(t *testing.T) {
	c := NewCAS(doc("a", "hello world"))
	c.Add(Annotation{Type: "person", Begin: 0, End: 5, Features: map[string]string{"name": "hello"}})
	c.Add(Annotation{Type: "scope", Begin: -1, End: -1})
	c.Add(Annotation{Type: "person", Begin: 6, End: 11})
	if got := len(c.Select("person")); got != 2 {
		t.Fatalf("persons = %d", got)
	}
	if got := len(c.Select("scope")); got != 1 {
		t.Fatalf("scopes = %d", got)
	}
	if got := len(c.All()); got != 3 {
		t.Fatalf("all = %d", got)
	}
	if types := c.Types(); len(types) != 2 || types[0] != "person" || types[1] != "scope" {
		t.Fatalf("types = %v", types)
	}
}

func TestCASConfidenceDefault(t *testing.T) {
	c := NewCAS(doc("a", "x"))
	c.Add(Annotation{Type: "t"})
	if c.All()[0].Confidence != 1 {
		t.Fatalf("confidence = %v", c.All()[0].Confidence)
	}
	c.Add(Annotation{Type: "t", Confidence: 0.5})
	if c.All()[1].Confidence != 0.5 {
		t.Fatalf("explicit confidence overwritten")
	}
}

func TestCASCovered(t *testing.T) {
	c := NewCAS(doc("a", "hello world"))
	span := Annotation{Type: "t", Begin: 6, End: 11}
	if got := c.Covered(span); got != "world" {
		t.Fatalf("covered = %q", got)
	}
	if got := c.Covered(Annotation{Begin: -1, End: -1}); got != "" {
		t.Fatalf("doc-level covered = %q", got)
	}
	if got := c.Covered(Annotation{Begin: 0, End: 999}); got != "" {
		t.Fatalf("out-of-range covered = %q", got)
	}
}

func TestAnnotationHelpers(t *testing.T) {
	a := Annotation{Begin: -1, Features: map[string]string{"k": "v"}}
	if !a.DocLevel() || a.Feature("k") != "v" || a.Feature("missing") != "" {
		t.Fatal("annotation helpers broken")
	}
	var empty Annotation
	if empty.Feature("k") != "" {
		t.Fatal("nil features")
	}
}

func TestAggregateRunsInOrder(t *testing.T) {
	var order []string
	step := func(name string) Annotator {
		return AnnotatorFunc{ID: name, Fn: func(cas *CAS) error {
			order = append(order, name)
			cas.Add(Annotation{Type: name, Begin: -1, End: -1, Source: name})
			return nil
		}}
	}
	agg := &Aggregate{ID: "flow", Steps: []Annotator{step("a"), step("b"), step("c")}}
	cas := NewCAS(doc("d", "x"))
	if err := agg.Process(cas); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "abc" {
		t.Fatalf("order = %v", order)
	}
	if len(cas.All()) != 3 {
		t.Fatalf("annotations = %d", len(cas.All()))
	}
}

func TestAggregateStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	ran := false
	agg := &Aggregate{ID: "flow", Steps: []Annotator{
		AnnotatorFunc{ID: "fail", Fn: func(*CAS) error { return boom }},
		AnnotatorFunc{ID: "after", Fn: func(*CAS) error { ran = true; return nil }},
	}}
	err := agg.Process(NewCAS(doc("d", "x")))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("step after failure ran")
	}
}

type collectingConsumer struct {
	name  string
	paths []string
	ended bool
}

func (c *collectingConsumer) Name() string { return c.name }
func (c *collectingConsumer) Consume(cas *CAS) error {
	c.paths = append(c.paths, cas.Doc.Path)
	return nil
}
func (c *collectingConsumer) End() error {
	c.ended = true
	return nil
}

func TestPipelineOrderAndStats(t *testing.T) {
	var docs []*docmodel.Document
	for i := 0; i < 20; i++ {
		docs = append(docs, doc(fmt.Sprintf("doc%02d", i), "body"))
	}
	var processed int32
	ann := AnnotatorFunc{ID: "mark", Fn: func(cas *CAS) error {
		atomic.AddInt32(&processed, 1)
		cas.Add(Annotation{Type: "mark", Begin: -1, End: -1})
		return nil
	}}
	cons := &collectingConsumer{name: "collect"}
	p := &Pipeline{Reader: &SliceReader{Docs: docs}, Annotator: ann, Consumers: []Consumer{cons}, Workers: 4}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Docs != 20 || stats.Failed != 0 || stats.Annotations != 20 {
		t.Fatalf("stats = %+v", stats)
	}
	if int(processed) != 20 {
		t.Fatalf("processed = %d", processed)
	}
	if !cons.ended {
		t.Fatal("consumer End not called")
	}
	// Consumers must observe reader order despite parallel annotation.
	for i, p := range cons.paths {
		if p != fmt.Sprintf("doc%02d", i) {
			t.Fatalf("consumer order broken: %v", cons.paths)
		}
	}
}

func TestPipelineDocFailureTolerated(t *testing.T) {
	docs := []*docmodel.Document{doc("good1", "x"), doc("bad", "x"), doc("good2", "x")}
	ann := AnnotatorFunc{ID: "a", Fn: func(cas *CAS) error {
		if cas.Doc.Path == "bad" {
			return errors.New("parse explosion")
		}
		return nil
	}}
	cons := &collectingConsumer{name: "c"}
	p := &Pipeline{Reader: &SliceReader{Docs: docs}, Annotator: ann, Consumers: []Consumer{cons}}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || len(stats.Errors) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(cons.paths) != 2 {
		t.Fatalf("consumer saw %v", cons.paths)
	}
}

func TestPipelineMaxErrors(t *testing.T) {
	var docs []*docmodel.Document
	for i := 0; i < 5; i++ {
		docs = append(docs, doc(fmt.Sprintf("d%d", i), "x"))
	}
	ann := AnnotatorFunc{ID: "a", Fn: func(*CAS) error { return errors.New("nope") }}
	p := &Pipeline{Reader: &SliceReader{Docs: docs}, Annotator: ann, MaxErrors: 2}
	if _, err := p.Run(); err == nil {
		t.Fatal("expected failure-threshold abort")
	}
}

func TestPipelineNoReader(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Run(); err == nil {
		t.Fatal("expected error")
	}
}

func TestPipelineNilAnnotator(t *testing.T) {
	cons := &collectingConsumer{name: "c"}
	p := &Pipeline{Reader: &SliceReader{Docs: []*docmodel.Document{doc("a", "x")}}, Consumers: []Consumer{cons}}
	stats, err := p.Run()
	if err != nil || stats.Docs != 1 || len(cons.paths) != 1 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
}

type failingEndConsumer struct{ collectingConsumer }

func (f *failingEndConsumer) End() error { return errors.New("end failed") }

func TestPipelineConsumerEndError(t *testing.T) {
	p := &Pipeline{
		Reader:    &SliceReader{Docs: []*docmodel.Document{doc("a", "x")}},
		Consumers: []Consumer{&failingEndConsumer{collectingConsumer{name: "f"}}},
	}
	if _, err := p.Run(); err == nil {
		t.Fatal("expected End error to surface")
	}
}

func TestSliceReaderEOF(t *testing.T) {
	r := &SliceReader{}
	if _, err := r.Next(); err == nil {
		t.Fatal("expected EOF")
	}
}

func TestPipelineStageStats(t *testing.T) {
	var docs []*docmodel.Document
	for i := 0; i < 10; i++ {
		docs = append(docs, doc(fmt.Sprintf("doc%02d", i), "body"))
	}
	flow := &Aggregate{ID: "flow", Steps: []Annotator{
		AnnotatorFunc{ID: "first", Fn: func(cas *CAS) error {
			cas.Add(Annotation{Type: "t", Begin: -1, End: -1})
			return nil
		}},
		AnnotatorFunc{ID: "second", Fn: func(cas *CAS) error {
			if cas.Doc.Path == "doc03" {
				return errors.New("boom")
			}
			return nil
		}},
	}}
	reg := obs.NewRegistry()
	cons := &collectingConsumer{name: "cpe"}
	p := &Pipeline{Reader: &SliceReader{Docs: docs}, Annotator: flow, Consumers: []Consumer{cons}, Workers: 4, Metrics: reg}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Wall <= 0 {
		t.Fatalf("wall = %v", stats.Wall)
	}
	if stats.DocsPerSec() <= 0 {
		t.Fatalf("docs/sec = %v", stats.DocsPerSec())
	}
	if len(stats.Annotators) != 2 {
		t.Fatalf("annotator stages = %+v", stats.Annotators)
	}
	first, second := stats.Annotators[0], stats.Annotators[1]
	if first.Name != "first" || first.Docs != 10 || first.Failed != 0 {
		t.Fatalf("first stage = %+v", first)
	}
	// The failure is charged to the step that errored.
	if second.Name != "second" || second.Docs != 10 || second.Failed != 1 {
		t.Fatalf("second stage = %+v", second)
	}
	if len(stats.Consumers) != 1 || stats.Consumers[0].Name != "cpe" || stats.Consumers[0].Docs != 9 {
		t.Fatalf("consumer stages = %+v", stats.Consumers)
	}
	// Metrics mirror the stats.
	if got := reg.Counter("ingest_docs_total").Value(); got != 10 {
		t.Fatalf("ingest_docs_total = %d", got)
	}
	if got := reg.Counter("ingest_doc_failures_total").Value(); got != 1 {
		t.Fatalf("ingest_doc_failures_total = %d", got)
	}
	if got := reg.Histogram("ingest_annotator_seconds", nil, "annotator", "second").Count(); got != 10 {
		t.Fatalf("annotator histogram count = %d", got)
	}
	if got := reg.Histogram("ingest_cpe_seconds", nil, "cpe", "cpe").Count(); got != 9 {
		t.Fatalf("cpe histogram count = %d", got)
	}
	if got := reg.Gauge("ingest_docs_per_second").Value(); got <= 0 {
		t.Fatalf("ingest_docs_per_second = %v", got)
	}
}

func TestPipelineStageStatsWithoutMetrics(t *testing.T) {
	p := &Pipeline{
		Reader:    &SliceReader{Docs: []*docmodel.Document{doc("a", "x")}},
		Annotator: AnnotatorFunc{ID: "solo", Fn: func(*CAS) error { return nil }},
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Annotators) != 1 || stats.Annotators[0].Name != "solo" || stats.Annotators[0].Docs != 1 {
		t.Fatalf("stages = %+v", stats.Annotators)
	}
}

func TestPipelineDocTracing(t *testing.T) {
	var docs []*docmodel.Document
	for i := 0; i < 8; i++ {
		docs = append(docs, doc(fmt.Sprintf("deal/doc%d", i), "body"))
	}
	step := func(name string) Annotator {
		return AnnotatorFunc{ID: name, Fn: func(cas *CAS) error {
			cas.Add(Annotation{Type: name, Begin: -1, End: -1})
			return nil
		}}
	}
	tracer := trace.New(trace.Options{SampleEvery: 2})
	p := &Pipeline{
		Reader:    &SliceReader{Docs: docs},
		Annotator: &Aggregate{ID: "flow", Steps: []Annotator{step("tokenize"), step("scope")}},
		Workers:   2,
		Tracer:    tracer,
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	traces := tracer.Recent(0)
	if len(traces) != 4 {
		t.Fatalf("sampled traces = %d, want 4 (1 in 2 of 8)", len(traces))
	}
	for _, tr := range traces {
		if tr.Route != "ingest.doc" {
			t.Fatalf("route = %q", tr.Route)
		}
		spans := tr.Spans()
		// Root + one span per primitive annotator.
		if len(spans) != 3 {
			t.Fatalf("spans = %d", len(spans))
		}
		names := map[string]bool{}
		for _, s := range spans {
			names[s.Name] = true
		}
		if !names["tokenize"] || !names["scope"] {
			t.Fatalf("annotator spans missing: %v", names)
		}
		attrs := map[string]string{}
		for _, a := range spans[0].Attrs {
			attrs[a.Key] = a.Value
		}
		if !strings.HasPrefix(attrs["path"], "deal/doc") || attrs["deal"] != "DEAL X" || attrs["annotations"] != "2" {
			t.Fatalf("root attrs = %v", attrs)
		}
	}
}

func TestPipelineTracingRecordsFailure(t *testing.T) {
	boom := errors.New("boom")
	tracer := trace.New(trace.Options{})
	p := &Pipeline{
		Reader:    &SliceReader{Docs: []*docmodel.Document{doc("bad", "x")}},
		Annotator: AnnotatorFunc{ID: "fail", Fn: func(*CAS) error { return boom }},
		Tracer:    tracer,
	}
	stats, err := p.Run()
	if err != nil || stats.Failed != 1 {
		t.Fatalf("stats = %+v, err = %v", stats, err)
	}
	traces := tracer.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	found := false
	for _, a := range traces[0].Spans()[0].Attrs {
		if a.Key == "error" && strings.Contains(a.Value, "boom") {
			found = true
		}
	}
	if !found {
		t.Fatal("failed document's trace has no error attribute")
	}
}
