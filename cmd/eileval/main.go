// Command eileval regenerates the paper's evaluation: every table and
// figure of §4 plus the §2 study and the design-choice ablations, printed
// as paper-vs-measured reports.
//
// Usage:
//
//	eileval                  # everything, paper-scale corpus
//	eileval -exp table2      # one experiment
//	eileval -scale small     # fast corpus for smoke runs
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/eval"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eileval: ")
	var (
		exp   = flag.String("exp", "all", "experiment: all|study|table2|fig4|fig5|fig6|mq2|mq3|mq4|rollout|ablations")
		scale = flag.String("scale", "eval", "corpus scale: eval (23 deals, ~15k docs) or small")
		seed  = flag.Int64("seed", 0, "override the corpus seed")
	)
	flag.Parse()

	cfg := synth.EvalConfig()
	if *scale == "small" {
		cfg = synth.SmallConfig()
	} else if *scale != "eval" {
		log.Fatalf("unknown scale %q", *scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	log.Printf("generating and ingesting the %s corpus...", *scale)
	start := time.Now()
	f, err := eval.NewFixture(cfg, eil.Options{})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("corpus: %d deals, %d documents; ingested in %v\n",
		len(f.Corpus.DealIDs), f.Sys.Index.DocCount(), time.Since(start).Round(time.Millisecond))

	if err := eval.Report(os.Stdout, f, *exp); err != nil {
		log.Fatal(err)
	}
}
