// Command eilgen generates a synthetic engagement-workbook corpus on disk:
// one directory per deal, a JSON personnel directory, and a ground-truth
// summary — the stand-in for the paper's proprietary repositories.
//
// Usage:
//
//	eilgen -out ./workbooks [-seed 2008] [-deals 23] [-noise 610] [-profile eval|small]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/crawler"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilgen: ")
	var (
		out     = flag.String("out", "workbooks", "output directory")
		profile = flag.String("profile", "eval", "corpus profile: eval (23 deals, ~15k docs) or small")
		seed    = flag.Int64("seed", 0, "override the profile seed")
		deals   = flag.Int("deals", 0, "override the number of deals")
		noise   = flag.Int("noise", 0, "override noise documents per deal")
	)
	flag.Parse()

	cfg := synth.EvalConfig()
	if *profile == "small" {
		cfg = synth.SmallConfig()
	} else if *profile != "eval" {
		log.Fatalf("unknown profile %q", *profile)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *deals != 0 {
		cfg.Deals = *deals
	}
	if *noise != 0 {
		cfg.NoiseDocsPerDeal = *noise
	}

	corpus, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := crawler.WriteTree(*out, corpus.Docs, corpus.Raw); err != nil {
		log.Fatal(err)
	}
	if err := corpus.Directory.SaveFile(filepath.Join(*out, "personnel.jsonl")); err != nil {
		log.Fatal(err)
	}
	truth, err := os.Create(filepath.Join(*out, "TRUTH.meta"))
	if err != nil {
		log.Fatal(err)
	}
	defer truth.Close()
	for _, id := range corpus.DealIDs {
		t := corpus.Truth[id]
		fmt.Fprintf(truth, "%s | customer=%s industry=%s towers=%v team=%d\n",
			id, t.Customer, t.Industry, t.Towers, len(t.Team))
	}
	s := corpus.Stats()
	log.Printf("wrote %d documents across %d deals (%d people) to %s", s.Docs, s.Deals, s.People, *out)
}
