// Command eil is the command-line search front-end: the Figure 8 search
// editor as flags. It loads a system persisted by eilingest and runs either
// a business-activity driven search or the keyword baseline.
//
// Usage:
//
//	eil -sys ./eilsys -tower "Storage Management Services" -exact "data replication"
//	eil -sys ./eilsys -person "Sam White" -org ABC
//	eil -sys ./eilsys -kw '"cross tower TSA"'          # OmniFind-style baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eil: ")
	var (
		sysDir     = flag.String("sys", "eilsys", "system directory written by eilingest")
		tower      = flag.String("tower", "", "tower / sub-tower concept (name, acronym, or alias)")
		industry   = flag.String("industry", "", "sector / industry")
		consultant = flag.String("consultant", "", "outsourcing consultant")
		geography  = flag.String("geography", "", "geography")
		country    = flag.String("country", "", "country")
		all        = flag.String("all", "", "all of these words")
		exact      = flag.String("exact", "", "the exact phrase")
		anyW       = flag.String("any", "", "any of these words")
		none       = flag.String("none", "", "none of these words")
		target     = flag.String("target", "anywhere", "text target: anywhere | techsolution | title")
		person     = flag.String("person", "", "person name")
		org        = flag.String("org", "", "person organization")
		limit      = flag.Int("limit", 10, "maximum activities")
		kw         = flag.String("kw", "", "run the keyword-search baseline instead")
		explore    = flag.String("explore", "", "drill into one deal's documents (use with text flags)")
		similar    = flag.String("similar", "", "list deals similar to this deal")
		asUser     = flag.String("user", "cli", "user id")
		roles      = flag.String("roles", "admin", "comma-separated roles: sales,delivery,admin")
	)
	flag.Parse()

	sys, err := eil.LoadSystem(*sysDir, nil)
	if err != nil {
		log.Fatal(err)
	}

	if *kw != "" {
		hits := sys.KeywordSearch(*kw, *limit)
		fmt.Printf("%d documents (showing %d)\n", sys.KeywordCount(*kw), len(hits))
		for _, h := range hits {
			fmt.Printf("%6.2f  %-28s %s\n        %s\n", h.Score, h.DealID, h.Path, h.Snippet)
		}
		return
	}

	user := access.User{ID: *asUser, Name: *asUser}
	for _, r := range strings.Split(*roles, ",") {
		if r = strings.TrimSpace(r); r != "" {
			user.Roles = append(user.Roles, access.Role(r))
		}
	}
	if *similar != "" {
		hits, err := sys.SimilarDeals(user, *similar, *limit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d deals similar to %s\n", len(hits), *similar)
		for _, h := range hits {
			fmt.Printf("  %-14s %.2f shared: %s\n", h.DealID, h.Score, strings.Join(h.SharedTowers, ", "))
		}
		return
	}
	q := core.FormQuery{
		Tower:       *tower,
		Industry:    *industry,
		Consultant:  *consultant,
		Geography:   *geography,
		Country:     *country,
		AllWords:    strings.Fields(*all),
		ExactPhrase: *exact,
		AnyWords:    strings.Fields(*anyW),
		NoneWords:   strings.Fields(*none),
		Target:      core.TextTarget(*target),
		PersonName:  *person,
		PersonOrg:   *org,
		Limit:       *limit,
	}
	if *explore != "" {
		hits, err := sys.Explore(user, *explore, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d documents in %s\n", len(hits), *explore)
		for _, h := range hits {
			fmt.Printf("  %6.2f %s\n         %s\n", h.Score, h.Path, h.Snippet)
		}
		return
	}
	if !q.HasConcepts() && !q.HasText() {
		log.Fatal("no criteria; set -tower / -exact / -person / ... or use -kw for the baseline")
	}
	res, err := sys.Search(user, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range res.Explain {
		fmt.Printf("# %s\n", line)
	}
	if len(res.Suggestions) > 0 {
		fmt.Printf("# did you mean: %s\n", strings.Join(res.Suggestions, ", "))
	}
	fmt.Printf("%d relevant business activities\n", len(res.Activities))
	for _, a := range res.Activities {
		fmt.Printf("\n%s  score %.2f  (access: %s)\n", a.DealID, a.Score, a.Level)
		if a.Synopsis != nil {
			var towers []string
			for _, tw := range a.Synopsis.Towers {
				if tw.SubTower == "" {
					towers = append(towers, tw.Tower)
				}
			}
			o := a.Synopsis.Overview
			fmt.Printf("  towers: %s\n", strings.Join(towers, ", "))
			fmt.Printf("  %s; %s; %s; %s\n", o.Industry, o.Consultant, o.TCVBand, o.Country)
			if *person != "" || *org != "" {
				fmt.Printf("  people:\n")
				for _, p := range a.Synopsis.People {
					fmt.Printf("    %-24s %-22s %-24s %s\n", p.Name, p.Role, p.Email, p.Category)
				}
			}
		}
		for _, d := range a.Docs {
			fmt.Printf("  %6.2f %s\n         %s\n", d.Score, d.Path, d.Snippet)
		}
	}
}
