// Command eilserver serves EIL over HTTP: an HTML search editor (the Lotus
// Notes GUI substitute) and a JSON API. It loads a persisted system or, with
// -demo, generates and ingests a synthetic corpus on startup.
//
// Observability: every route is wrapped with request/latency metrics,
// served at /metrics (Prometheus text exposition) and /api/metrics (JSON);
// request traces are sampled per -trace-sample and browsable at
// /debug/traces and /debug/trace/{id} (an inbound X-Trace-ID is adopted and
// echoed; ?explain=1 on /api/search returns the span tree and score
// decomposition); -pprof mounts net/http/pprof under /debug/pprof/;
// -access-log emits one structured log line per request. SIGINT/SIGTERM
// drain in-flight requests before exit so metrics and query-log state are
// not torn down mid-request.
//
// Durability: -wal journals every incremental update (AddDocuments,
// RemoveDeal, Compact) into the system directory before acknowledging it;
// after a crash, the next load replays the journal on top of the last
// committed snapshot. -snapshot-interval checkpoints the system periodically
// (each checkpoint commits a new generation and truncates the journal), and
// a graceful shutdown commits a final generation.
//
// Usage:
//
//	eilserver -sys ./eilsys -addr :8080
//	eilserver -demo -addr :8080 -wal -snapshot-interval 5m
//	eilserver -demo -addr :8080 -pprof -access-log
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"encoding/json"
	"net"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/qlog"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/runtimetel"
	"repro/internal/siapi"
	"repro/internal/slo"
	"repro/internal/synopsis"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/web"
)

// backend abstracts the serving surface over a single System or an N-shard
// Cluster: the web.Backend routes plus the lifecycle hooks main drives.
type backend interface {
	web.Backend
	NewHealth(opts eil.HealthOptions) *health.Registry
	AppSampler(sloEng *slo.Engine) func(prev, cur *runtimetel.Sample)
	EnableWAL(dir string, syncEvery int) error
	CloseWAL() error
}

// haBackend adapts a failover-managed HANode to the serving surface: every
// call delegates to whichever role object (primary System or replicating
// Follower) the node currently holds, so the HTTP layer survives role
// transitions without rewiring. Transitions swap the role object under the
// node's lock, so cur never observes a half-switched node; the last
// resolved backend is kept as a fallback for the brief shutdown window.
type haBackend struct {
	node *eil.HANode

	mu   sync.Mutex
	last backend
}

func (b *haBackend) cur() backend {
	b.mu.Lock()
	defer b.mu.Unlock()
	if sys := b.node.System(); sys != nil {
		b.last = sys
	} else if fol := b.node.Follower(); fol != nil {
		b.last = fol
	}
	return b.last
}

func (b *haBackend) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	return b.cur().SearchCtx(ctx, user, q)
}

func (b *haBackend) SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error) {
	return b.cur().SearchExplain(ctx, user, q)
}

func (b *haBackend) KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit {
	return b.cur().KeywordSearchCtx(ctx, query, limit)
}

func (b *haBackend) KeywordCount(query string) int { return b.cur().KeywordCount(query) }

func (b *haBackend) ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	return b.cur().ExploreCtx(ctx, user, dealID, q)
}

func (b *haBackend) SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error) {
	return b.cur().SimilarDeals(user, dealID, k)
}

func (b *haBackend) Deal(user access.User, dealID string) (synopsis.Deal, error) {
	return b.cur().Deal(user, dealID)
}

func (b *haBackend) Registry() *obs.Registry           { return b.cur().Registry() }
func (b *haBackend) RequestTracer() *trace.Tracer      { return b.cur().RequestTracer() }
func (b *haBackend) Log() *qlog.Log                    { return b.cur().Log() }
func (b *haBackend) CoreEngine() *core.Engine          { return b.cur().CoreEngine() }
func (b *haBackend) EnableWAL(dir string, n int) error { return b.cur().EnableWAL(dir, n) }
func (b *haBackend) CloseWAL() error                   { return b.cur().CloseWAL() }

func (b *haBackend) NewHealth(opts eil.HealthOptions) *health.Registry {
	return b.cur().NewHealth(opts)
}

func (b *haBackend) AppSampler(sloEng *slo.Engine) func(prev, cur *runtimetel.Sample) {
	return b.cur().AppSampler(sloEng)
}

// loadCurves reads throughput-vs-latency series from a committed eilbench
// artifact (the load_curve block of a BENCH json) or from a bare curve
// array.
func loadCurves(path string) ([]loadgen.Curve, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep struct {
		LoadCurve *struct {
			Curves []loadgen.Curve `json:"curves"`
		} `json:"load_curve"`
	}
	if err := json.Unmarshal(raw, &rep); err == nil && rep.LoadCurve != nil && len(rep.LoadCurve.Curves) > 0 {
		return rep.LoadCurve.Curves, nil
	}
	var curves []loadgen.Curve
	if err := json.Unmarshal(raw, &curves); err == nil && len(curves) > 0 {
		return curves, nil
	}
	return nil, fmt.Errorf("%s carries no load curves", path)
}

func clusterDocCount(c *eil.Cluster) int {
	total := 0
	for _, s := range c.Shards {
		total += s.Index.DocCount()
	}
	return total
}

// shardPosition is one shard's replication position in the primary's
// /api/repl report.
type shardPosition struct {
	Shard string `json:"shard,omitempty"`
	Gen   uint64 `json:"gen"`
	Seq   uint64 `json:"seq"`
}

// primaryReport assembles the primary's /api/repl payload: the journal
// position of every shipped shard plus each connected follower's view.
func primaryReport(sys *eil.System, cluster *eil.Cluster, shipper *repl.Shipper) any {
	var positions []shardPosition
	if cluster != nil {
		for i, s := range cluster.Shards {
			_, seq := s.ReplPosition()
			positions = append(positions, shardPosition{
				Shard: fmt.Sprintf("shard-%04d", i), Gen: s.Generation(), Seq: seq,
			})
		}
	} else {
		_, seq := sys.ReplPosition()
		positions = append(positions, shardPosition{Gen: sys.Generation(), Seq: seq})
	}
	var epoch uint64
	if sys != nil {
		epoch = sys.FenceEpoch()
	}
	return struct {
		Role      string                `json:"role"`
		Epoch     uint64                `json:"epoch"`
		Positions []shardPosition       `json:"positions"`
		Followers []repl.FollowerStatus `json:"followers"`
	}{"primary", epoch, positions, shipper.Status()}
}

// churnDocs builds one synthetic deal's documents for -demo-churn write
// traffic: enough structure (overview, scope, team, service grid) to
// exercise the full analysis/index/synopsis apply path on every batch.
func churnDocs(dealID string, round int) ([]*docmodel.Document, error) {
	files := []struct{ name, content string }{
		{"overview.txt", fmt.Sprintf("Deal Overview\nCustomer: Churn Corp %d\nIndustry: Retail\nTotal Contract Value: over 100M\nScope summary: Network Services.\n", round)},
		{"scope.deck", "# Services Scope Baseline\n- Network Services\n- Voice Services coverage\n"},
		{"team.grid", "GRID Deal Team Roster\nName | Role | Email | Phone\nChurn Person | CSE | churn.person@example.com |\n"},
		{"tsa-1.grid", fmt.Sprintf("GRID Network Services Service Details\nService Item | cross tower TSA | Notes\nNetwork Services item %d | | pending\n", round)},
	}
	var docs []*docmodel.Document
	for _, f := range files {
		doc, err := docparse.Parse(dealID+"/"+f.name, f.content)
		if err != nil {
			return nil, err
		}
		doc.DealID = dealID
		docs = append(docs, doc)
	}
	return docs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilserver: ")
	var (
		sysDir    = flag.String("sys", "eilsys", "system directory written by eilingest")
		addr      = flag.String("addr", ":8080", "listen address")
		demo      = flag.Bool("demo", false, "ignore -sys; generate and ingest a demo corpus")
		shards    = flag.Int("shards", 1, "partition the demo corpus into N scatter-gather shards (persisted directories carry their own shard count)")
		secure    = flag.Bool("access-control", false, "enforce role-based access (default: everyone sees everything)")
		logCap    = flag.Int("querylog", 1024, "query-log capacity (0 disables; summary at /api/qlog)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		accessLog = flag.Bool("access-log", false, "log every request (structured, to stderr)")
		drain     = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain window")

		traceSample = flag.Int("trace-sample", 1, "trace 1 in N requests (1 = every request, 0 disables tracing)")
		traceRing   = flag.Int("trace-ring", trace.DefRingSize, "recent completed traces retained for /debug/traces")
		traceSlow   = flag.Int("trace-slow", trace.DefSlowPerRoute, "slowest traces retained per route")

		snapInterval = flag.Duration("snapshot-interval", 0, "checkpoint the system to -sys every interval (0 disables background snapshots)")
		snapKeep     = flag.Int("snapshot-keep", 0, "committed snapshot generations retained as corruption fallbacks (0 = default)")
		walOn        = flag.Bool("wal", false, "journal every update to -sys before acknowledging it (crash recovery replays the journal)")
		walSync      = flag.Int("wal-sync-every", 1, "fsync the journal every N records (1 = every record; higher trades durability for throughput)")

		budget    = flag.Duration("search-budget", 0, "total time budget per search; backend attempts get slices of it (0 = unbounded)")
		retries   = flag.Int("search-retries", 1, "retries per failed backend call within the budget")
		faultSpec = flag.String("fault-spec", "", "inject backend faults, e.g. 'synopsis.search:error:p=0.01;siapi.search:slow:25ms' (chaos testing)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for fault-injection randomness")

		telInterval = flag.Duration("runtimetel-interval", 10*time.Second, "runtime telemetry sampling interval (0 disables the collector and /debug/dash history)")
		sloAvail    = flag.Float64("slo-availability", 0.999, "per-route availability objective (fraction of non-5xx responses)")
		sloP99      = flag.Duration("slo-latency-p99", 250*time.Millisecond, "per-route p99 latency objective")
		maxGoros    = flag.Int("max-goroutines", 0, "goroutine watermark for the readiness check (0 = default 10000)")

		replListen = flag.String("repl-listen", "", "ship the write-ahead journal to read replicas connecting on this address (requires -wal)")
		replicaOf  = flag.String("replica-of", "", "run as a read replica: bootstrap from the primary's -repl-listen address and keep replaying its journal into -sys")
		replName   = flag.String("repl-name", "", "follower identity reported to the primary (default follower-<pid>)")
		maxLag     = flag.Uint64("max-lag", 4096, "follower staleness bound in journal records: beyond it /readyz fails and routers drain this replica (0 = unbounded)")
		churn      = flag.Duration("demo-churn", 0, "with -demo: apply a synthetic document batch every interval (write traffic for replication demos; 0 disables)")

		failoverOn = flag.Bool("failover", false, "manage this node's primary/follower role through the fencing-epoch protocol: promotions bump a durable epoch, stale primaries are fenced (single-system only; requires -repl-listen for the address this node ships from while primary)")
		leaseDir   = flag.String("lease-dir", "", "shared lease directory for automatic failover: the primary renews lease.json here, a follower that sees it go stale claims the next epoch and self-promotes (requires -failover)")
		leaseTTL   = flag.Duration("lease-ttl", 3*time.Second, "lease staleness bound: a dead primary is replaced within roughly this window")

		profDir      = flag.String("prof-dir", "", "continuous-profiling ring directory; enables scheduled pprof captures, automatic captures on SLO page events, and the /debug/prof browser")
		profInterval = flag.Duration("prof-interval", 10*time.Minute, "scheduled profile capture cadence when -prof-dir is set (0 disables the schedule; page-event captures still fire)")
		profCPUSecs  = flag.Int("prof-cpu-seconds", 5, "CPU profile window for scheduled and event captures")
		curveFile    = flag.String("loadcurve-file", "", "BENCH json with a load_curve block (e.g. BENCH_pr8.json); its throughput-vs-latency curves render on /debug/dash")
	)
	flag.Parse()

	// Log the build identity and the effective configuration up front: the
	// first question about any misbehaving instance is "what exactly is
	// running, with which flags".
	goVer, rev, vcsTime, modified := runtimetel.Info()
	if rev == "" {
		rev = "unknown"
	} else if modified {
		rev += "+dirty"
	}
	log.Printf("build: %s, revision %s %s", goVer, rev, vcsTime)
	flag.VisitAll(func(f *flag.Flag) {
		log.Printf("flag: -%s=%s", f.Name, f.Value)
	})

	if *leaseDir != "" && !*failoverOn {
		log.Fatal("-lease-dir requires -failover")
	}

	var ctl *access.Controller
	if *secure {
		ctl = access.NewController()
	}

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Options{
			RingSize:     *traceRing,
			SlowPerRoute: *traceSlow,
			SampleEvery:  *traceSample,
		})
	}

	var (
		sys       *eil.System
		cluster   *eil.Cluster
		follower  *eil.Follower
		cfollower *eil.ClusterFollower
		node      *eil.HANode
		wr        *router.WriteRouter
		err       error
	)
	switch {
	case *failoverOn:
		// Failover-managed node: an HANode owns the role (primary, follower,
		// fenced) and every transition; the lease loop below (or a manual
		// POST /api/promote) drives promotions.
		if *shards > 1 || eil.IsCluster(*sysDir) {
			log.Fatal("-failover supports single-system deployments (drop -shards)")
		}
		if *replListen == "" {
			log.Fatal("-failover requires -repl-listen: the address this node ships from while primary (use an explicit host, e.g. 127.0.0.1:9301, so peers can dial it)")
		}
		name := *replName
		if name == "" {
			name = fmt.Sprintf("node-%d", os.Getpid())
		}
		haOpts := eil.HANodeOptions{
			Name:       name,
			Dir:        *sysDir,
			ListenAddr: *replListen,
			SyncEvery:  *walSync,
			MaxLag:     *maxLag,
			Access:     ctl,
			Logf:       log.Printf,
		}
		if *replicaOf != "" {
			if *demo || *snapInterval > 0 || *faultSpec != "" || *budget > 0 {
				log.Fatal("-failover -replica-of starts read-only: drop -demo, -snapshot-interval, -fault-spec, and -search-budget")
			}
			node, err = eil.NewFollowerHANode(*replicaOf, haOpts)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("failover node %q: following %s into %s; promotable", name, *replicaOf, *sysDir)
		} else {
			var seed *eil.System
			if *demo {
				log.Printf("generating demo corpus...")
				corpus, gerr := synth.Generate(synth.SmallConfig())
				if gerr != nil {
					log.Fatal(gerr)
				}
				seed, err = eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory, Access: ctl, Tracer: tracer})
			} else {
				seed, err = eil.LoadSystem(*sysDir, ctl)
			}
			if err != nil {
				log.Fatal(err)
			}
			seed.Access = ctl
			seed.Tracer = tracer
			haOpts.Metrics = seed.Registry()
			node, err = eil.NewPrimaryHANode(seed, haOpts)
			if err != nil {
				log.Fatal(err)
			}
			if seed.FencedBy() != 0 {
				log.Printf("WARNING: failover node %q was fenced by epoch %d; serving reads only until repointed at the current primary", name, seed.FencedBy())
			} else {
				log.Printf("failover node %q: primary at epoch %d, shipping on %s", name, seed.FenceEpoch(), node.ReplAddr())
			}
		}
		// Mutations (the churn loop, and anything the host adds) go through
		// the write router: they follow the current primary, queue briefly
		// through a promotion window, and fail crisply past it.
		wr = router.NewWriteRouter(router.WriteOptions{IsFenced: failover.IsFenced, Metrics: node.Metrics()})
		if node.Role() == failover.RolePrimary {
			wr.SetPrimary(node, node.Status().Epoch)
		}
	case *replicaOf != "":
		// Read replica: no local corpus, no journal, no checkpoints of its
		// own — state arrives over the replication stream and persists at
		// the primary's rotation points.
		if *demo || *walOn || *snapInterval > 0 || *faultSpec != "" || *budget > 0 {
			log.Fatal("-replica-of is read-only: drop -demo, -wal, -snapshot-interval, -fault-spec, and -search-budget")
		}
		fopts := eil.FollowerOptions{
			Dir:     *sysDir,
			Addr:    *replicaOf,
			Name:    *replName,
			MaxLag:  *maxLag,
			Access:  ctl,
			Metrics: obs.NewRegistry(),
			Tracer:  tracer,
			Logf:    log.Printf,
		}
		if *shards > 1 {
			cfollower, err = eil.StartClusterFollower(*shards, fopts)
		} else {
			follower, err = eil.StartFollower(fopts)
		}
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replicating from %s into %s (staleness bound %d records); serving begins at first sync",
			*replicaOf, *sysDir, *maxLag)
	case *demo && *shards > 1:
		log.Printf("generating demo corpus...")
		corpus, gerr := synth.Generate(synth.SmallConfig())
		if gerr != nil {
			log.Fatal(gerr)
		}
		start := time.Now()
		cluster, err = eil.IngestSharded(corpus.Docs, *shards, eil.Options{Directory: corpus.Directory, Access: ctl, Tracer: tracer})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %d documents into %d shards in %v",
			clusterDocCount(cluster), *shards, time.Since(start).Round(time.Millisecond))
	case *demo:
		log.Printf("generating demo corpus...")
		corpus, gerr := synth.Generate(synth.SmallConfig())
		if gerr != nil {
			log.Fatal(gerr)
		}
		start := time.Now()
		sys, err = eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory, Access: ctl, Tracer: tracer})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %d documents in %v (%.0f docs/sec)",
			sys.Index.DocCount(), time.Since(start).Round(time.Millisecond), sys.Stats.DocsPerSec())
	case eil.IsCluster(*sysDir):
		cluster, err = eil.LoadCluster(*sysDir, ctl)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Tracer = tracer
		log.Printf("loaded %d documents from %d-shard cluster %s",
			clusterDocCount(cluster), len(cluster.Shards), *sysDir)
	default:
		if *shards > 1 {
			log.Printf("note: -shards ignored; %s holds a single-system snapshot", *sysDir)
		}
		sys, err = eil.LoadSystem(*sysDir, ctl)
		if err != nil {
			log.Fatal(err)
		}
		sys.Access = ctl
		sys.Tracer = tracer
		log.Printf("loaded %d documents from %s", sys.Index.DocCount(), *sysDir)
	}
	var be backend
	switch {
	case node != nil:
		be = &haBackend{node: node}
	case cfollower != nil:
		be = cfollower
	case follower != nil:
		be = follower
	case cluster != nil:
		be = cluster
	default:
		be = sys
	}
	if tracer != nil {
		log.Printf("tracing 1 in %d requests (debug surfaces at /debug/traces)", *traceSample)
	}

	if *logCap > 0 {
		switch {
		case node != nil:
			if s := node.System(); s != nil {
				s.QueryLog = qlog.New(*logCap)
			}
		case cluster != nil:
			cluster.QueryLog = qlog.New(*logCap)
		case sys != nil:
			sys.QueryLog = qlog.New(*logCap)
		}
	}

	// checkpoint commits the current state to -sys: one generation for a
	// single system, one per shard (plus the manifest) for a cluster.
	checkpoint := func() (string, error) {
		if node != nil {
			// Only a serving primary checkpoints: a follower persists at the
			// stream's rotation points, and a fenced node's journal is sealed.
			s := node.System()
			if s == nil || node.Role() != failover.RolePrimary {
				return "skipped (not primary)", nil
			}
			gen, err := s.Checkpoint(*sysDir)
			return fmt.Sprintf("generation %d", gen), err
		}
		if cluster != nil {
			gens, err := cluster.Checkpoint(*sysDir)
			return fmt.Sprintf("generations %v", gens), err
		}
		gen, err := sys.Checkpoint(*sysDir)
		return fmt.Sprintf("generation %d", gen), err
	}

	switch {
	case node != nil:
		if s := node.System(); s != nil {
			s.SnapshotKeep = *snapKeep
		}
	case cluster != nil:
		cluster.SnapshotKeep = *snapKeep
	case sys != nil:
		sys.SnapshotKeep = *snapKeep
	}
	if *walOn && node != nil {
		log.Printf("note: -wal is implied by -failover; the node journals whenever it is primary")
	}
	if *walOn && node == nil {
		// EnableWAL checkpoints first when -sys has no snapshot matching the
		// in-memory state, so this also bootstraps the store in -demo mode.
		if err := be.EnableWAL(*sysDir, *walSync); err != nil {
			log.Fatal(err)
		}
		if cluster != nil {
			log.Printf("write-ahead journals enabled in %s (generations %v)", *sysDir, cluster.Generations())
		} else {
			log.Printf("write-ahead journal enabled in %s (generation %d)", *sysDir, sys.Generation())
		}
	}

	// Primary-side replication: ship the journal to any follower that
	// connects. Requires the journal — the stream is the journal.
	var shipper *repl.Shipper
	if *replListen != "" && node == nil {
		if !*walOn {
			log.Fatal("-repl-listen requires -wal: replication ships the write-ahead journal")
		}
		lis, lerr := net.Listen("tcp", *replListen)
		if lerr != nil {
			log.Fatal(lerr)
		}
		// A parsed -fault-spec reaches the wire too (repl.send / repl.recv /
		// repl.corrupt), so replication chaos composes with backend chaos.
		var inj *fault.Injector
		if *faultSpec != "" {
			inj = be.CoreEngine().Faults
		}
		if cluster != nil {
			shipper, err = cluster.ServeReplication(lis, inj)
		} else {
			shipper, err = sys.ServeReplication(lis, inj)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer shipper.Close()
		log.Printf("shipping journal to followers on %s (status at /api/repl)", lis.Addr())
	}

	eng := be.CoreEngine()
	if *budget > 0 || *retries != 1 {
		eng.Resilient = core.Resilience{Budget: *budget, MaxRetries: *retries}
		log.Printf("search budget %v, %d retries per backend call", *budget, *retries)
	}
	if *faultSpec != "" {
		inj, ferr := fault.ParseSpec(*faultSpec, *faultSeed)
		if ferr != nil {
			log.Fatal(ferr)
		}
		eng.Faults = inj
		log.Printf("WARNING: fault injection active (seed %d): %s", *faultSeed, *faultSpec)
	}

	// The judgment layer: SLO burn rates over the HTTP metrics, component
	// checks behind /readyz, and the runtime collector whose sample ring
	// backs /debug/dash. The collector's tick drives the SLO engine; with
	// the collector disabled the engine gets its own ticker below.
	runtimetel.SetBuildInfo(be.Registry())

	// Continuous profiling: a bounded on-disk ring of pprof captures, filled
	// on a schedule and — via the SLO engine's page transitions below —
	// automatically at the moment an error/latency budget starts burning
	// fast, so the "what was it doing during the incident" evidence exists
	// even when nobody was watching.
	var profiler *prof.Profiler
	if *profDir != "" {
		ring, rerr := prof.OpenRing(*profDir, 0, 0)
		if rerr != nil {
			log.Fatal(rerr)
		}
		profiler = prof.New(prof.Options{
			Ring:       ring,
			Interval:   *profInterval,
			CPUSeconds: *profCPUSecs,
			Registry:   be.Registry(),
			Logf:       log.Printf,
		})
		profiler.Start()
		defer profiler.Stop()
		log.Printf("continuous profiling to %s (schedule %v, browser at /debug/prof)", *profDir, *profInterval)
	}

	sloOpts := slo.Options{
		Registry: be.Registry(),
		Default:  slo.Objective{Availability: *sloAvail, LatencyP99: *sloP99},
		Interval: *telInterval,
	}
	if profiler != nil {
		sloOpts.OnAlert = func(route, alert string) {
			if alert == "page" {
				profiler.CaptureEvent("page-" + route)
			}
		}
	}
	sloEng := slo.New(sloOpts)
	var collector *runtimetel.Collector
	if *telInterval > 0 {
		collector = runtimetel.New(runtimetel.Options{
			Interval:   *telInterval,
			Registry:   be.Registry(),
			AppSampler: be.AppSampler(sloEng),
		})
		collector.Start()
		defer collector.Stop()
		log.Printf("runtime telemetry every %v (dashboard at /debug/dash)", *telInterval)
	}
	checks := be.NewHealth(eil.HealthOptions{
		Collector:        collector,
		SnapshotInterval: *snapInterval,
		MaxGoroutines:    *maxGoros,
	})
	log.Printf("SLO objectives: availability %.4f, p99 %v (report at /api/slo, readiness at /readyz)", *sloAvail, *sloP99)

	var opts []web.Option
	if *pprofOn {
		opts = append(opts, web.WithPprof())
		log.Printf("pprof enabled at /debug/pprof/")
	}
	if *accessLog {
		opts = append(opts, web.WithAccessLog(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	}
	opts = append(opts, web.WithHealth(checks), web.WithSLO(sloEng), web.WithRuntime(collector))
	// leaseCfg names this node to the lease protocol; Addr is the bound ship
	// address survivors repoint at (empty until the first primary stint).
	leaseCfg := func() failover.LeaseConfig {
		return failover.LeaseConfig{Dir: *leaseDir, Name: node.Name(), Addr: node.ReplAddr(), TTL: *leaseTTL, RenewEvery: *leaseTTL / 3}
	}
	switch {
	case node != nil:
		opts = append(opts, web.WithReplStatus(func() any {
			return struct {
				failover.NodeStatus
				Writes    router.WriteStatus    `json:"writes"`
				Followers []repl.FollowerStatus `json:"followers,omitempty"`
			}{node.Status(), wr.Status(), node.ShipperStatus()}
		}))
		promote := func(target string) error {
			if target != "" && target != node.Name() {
				return fmt.Errorf("this node is %q: POST /api/promote to the node being promoted", node.Name())
			}
			if node.Role() == failover.RolePrimary {
				return errors.New("already primary")
			}
			epoch := node.Status().Epoch + 1
			if *leaseDir != "" {
				cur, ok, lerr := failover.ReadLease(*leaseDir)
				if lerr != nil {
					return lerr
				}
				next := epoch
				if ok && cur.Epoch+1 > next {
					next = cur.Epoch + 1
				}
				rec, aerr := failover.Acquire(leaseCfg(), next)
				if aerr != nil {
					return aerr
				}
				epoch = rec.Epoch
			}
			if perr := node.Promote(epoch); perr != nil {
				return perr
			}
			wr.SetPrimary(node, epoch)
			if *leaseDir != "" {
				// Publish the now-bound ship address for survivors to repoint at.
				if _, rerr := failover.Renew(leaseCfg(), epoch); rerr != nil {
					log.Printf("failover: lease renew after promote: %v", rerr)
				}
			}
			log.Printf("failover: promoted to primary at epoch %d (manual)", epoch)
			return nil
		}
		opts = append(opts, web.WithFailover(func() web.FailoverInfo {
			st := node.Status()
			return web.FailoverInfo{Role: st.Role, Epoch: st.Epoch, PromotedAt: st.PromotedAt}
		}, promote))
	case cfollower != nil:
		opts = append(opts, web.WithReplStatus(func() any { return cfollower.Status() }))
	case follower != nil:
		opts = append(opts, web.WithReplStatus(func() any { return follower.Status() }))
	case shipper != nil:
		opts = append(opts, web.WithReplStatus(func() any {
			return primaryReport(sys, cluster, shipper)
		}))
	}
	if profiler != nil {
		opts = append(opts, web.WithProfiles(profiler.Ring()))
	}
	if *curveFile != "" {
		curves, cerr := loadCurves(*curveFile)
		if cerr != nil {
			log.Fatal(cerr)
		}
		opts = append(opts, web.WithLoadCurves(curves))
		log.Printf("rendering %d load-curve series from %s on /debug/dash", len(curves), *curveFile)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           web.HandlerFor(be, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if collector == nil {
		// No collector to pace the SLO engine: give it its own ticker.
		go sloEng.Run(ctx.Done(), 10*time.Second)
	}

	if node != nil && *leaseDir != "" {
		// The lease loop is the cross-process supervisor: a primary renews
		// lease.json every TTL/3 and demotes itself the moment a newer lease
		// appears; a follower (or fenced ex-primary) watches for staleness,
		// claims the next epoch through the O_EXCL claim file, and
		// self-promotes when it wins.
		if err := os.MkdirAll(*leaseDir, 0o755); err != nil {
			log.Fatal(err)
		}
		go func() {
			renew := *leaseTTL / 3
			if renew <= 0 {
				renew = time.Second
			}
			t := time.NewTicker(renew)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				st := node.Status()
				switch st.Role {
				case failover.RolePrimary:
					ep := st.Epoch
					if ep == 0 {
						ep = 1 // pre-failover lineage serves under term 1 at the lease layer
					}
					rec, rerr := failover.Renew(leaseCfg(), ep)
					if errors.Is(rerr, failover.ErrLeaseLost) {
						log.Printf("failover: lease lost to %s (epoch %d); demoting", rec.Name, rec.Epoch)
						wr.SetPrimary(nil, 0)
						if ferr := node.Fence(rec.Epoch, rec.Addr); ferr != nil {
							log.Printf("failover: demote: %v", ferr)
						}
					}
				case failover.RoleFollower, failover.RoleFenced:
					cur, ok, rerr := failover.ReadLease(*leaseDir)
					if rerr != nil {
						continue
					}
					if ok && !cur.Stale(*leaseTTL) {
						// Live primary. Make sure this node follows it — a
						// fenced ex-primary rejoins here, re-syncing its
						// divergent suffix away.
						if cur.Addr != "" && cur.Name != node.Name() {
							if perr := node.Repoint(cur.Addr, cur.Epoch); perr != nil {
								log.Printf("failover: repoint at %s: %v", cur.Addr, perr)
							}
						}
						continue
					}
					next := uint64(1)
					if ok {
						next = cur.Epoch + 1
					}
					if next <= st.Epoch {
						next = st.Epoch + 1
					}
					rec, aerr := failover.Acquire(leaseCfg(), next)
					if aerr != nil {
						continue // lost the claim race; keep watching
					}
					log.Printf("failover: lease claimed at epoch %d; promoting", rec.Epoch)
					if perr := node.Promote(rec.Epoch); perr != nil {
						log.Printf("failover: promotion at epoch %d failed: %v", rec.Epoch, perr)
						continue
					}
					wr.SetPrimary(node, rec.Epoch)
					// Publish the bound ship address for survivors.
					if _, perr := failover.Renew(leaseCfg(), rec.Epoch); perr != nil {
						log.Printf("failover: lease renew after promote: %v", perr)
					}
				}
			}
		}()
		log.Printf("failover: lease protocol active in %s (ttl %v)", *leaseDir, *leaseTTL)
	}

	if *churn > 0 && (sys != nil || cluster != nil || node != nil) {
		// Synthetic write traffic: add a rotating window of churn deals,
		// removing the oldest once ten are live, so replication demos have a
		// continuous journal stream of both AddDocuments and RemoveDeal.
		go func() {
			tick := time.NewTicker(*churn)
			defer tick.Stop()
			round := 0
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					round++
					dealID := fmt.Sprintf("CHURN DEAL %d", round)
					docs, derr := churnDocs(dealID, round)
					if derr != nil {
						log.Printf("churn: %v", derr)
						continue
					}
					var aerr error
					switch {
					case node != nil:
						aerr = wr.AddDocuments(docs)
					case cluster != nil:
						aerr = cluster.AddDocuments(docs)
					default:
						aerr = sys.AddDocuments(docs)
					}
					if aerr != nil {
						log.Printf("churn: add %s: %v", dealID, aerr)
						continue
					}
					if round > 10 {
						old := fmt.Sprintf("CHURN DEAL %d", round-10)
						switch {
						case node != nil:
							aerr = wr.RemoveDeal(old)
						case cluster != nil:
							aerr = cluster.RemoveDeal(old)
						default:
							aerr = sys.RemoveDeal(old)
						}
						if aerr != nil {
							log.Printf("churn: remove %s: %v", old, aerr)
						}
					}
				}
			}
		}()
		log.Printf("churning one synthetic deal every %v", *churn)
	}

	if *snapInterval > 0 {
		go func() {
			tick := time.NewTicker(*snapInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					desc, err := checkpoint()
					if err != nil {
						log.Printf("snapshot: %v", err)
						continue
					}
					log.Printf("snapshot committed: %s", desc)
				}
			}
		}()
		log.Printf("background snapshots every %v to %s", *snapInterval, *sysDir)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (metrics at /metrics)", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills us
		log.Printf("shutting down, draining for up to %v...", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("shutdown: %v", err)
		}
		switch {
		case node != nil:
			if desc, err := checkpoint(); err != nil {
				log.Printf("final snapshot: %v", err)
			} else {
				log.Printf("final snapshot committed: %s", desc)
			}
			if err := node.Close(); err != nil {
				log.Printf("failover node close: %v", err)
			}
		case *walOn || *snapInterval > 0:
			// Fold journaled operations into a final generation so the next
			// start loads a clean snapshot instead of replaying.
			if desc, err := checkpoint(); err != nil {
				log.Printf("final snapshot: %v", err)
			} else {
				log.Printf("final snapshot committed: %s", desc)
			}
			if err := be.CloseWAL(); err != nil {
				log.Printf("close journal: %v", err)
			}
		}
		log.Printf("bye")
	}
}
