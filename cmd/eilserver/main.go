// Command eilserver serves EIL over HTTP: an HTML search editor (the Lotus
// Notes GUI substitute) and a JSON API. It loads a persisted system or, with
// -demo, generates and ingests a synthetic corpus on startup.
//
// Usage:
//
//	eilserver -sys ./eilsys -addr :8080
//	eilserver -demo -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/qlog"
	"repro/internal/synth"
	"repro/internal/web"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilserver: ")
	var (
		sysDir = flag.String("sys", "eilsys", "system directory written by eilingest")
		addr   = flag.String("addr", ":8080", "listen address")
		demo   = flag.Bool("demo", false, "ignore -sys; generate and ingest a demo corpus")
		secure = flag.Bool("access-control", false, "enforce role-based access (default: everyone sees everything)")
		logCap = flag.Int("querylog", 1024, "query-log capacity (0 disables; summary at /api/qlog)")
	)
	flag.Parse()

	var ctl *access.Controller
	if *secure {
		ctl = access.NewController()
	}

	var sys *eil.System
	var err error
	if *demo {
		log.Printf("generating demo corpus...")
		corpus, gerr := synth.Generate(synth.SmallConfig())
		if gerr != nil {
			log.Fatal(gerr)
		}
		start := time.Now()
		sys, err = eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory, Access: ctl})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %d documents in %v", sys.Index.DocCount(), time.Since(start).Round(time.Millisecond))
	} else {
		sys, err = eil.LoadSystem(*sysDir, ctl)
		if err != nil {
			log.Fatal(err)
		}
		sys.Access = ctl
		log.Printf("loaded %d documents from %s", sys.Index.DocCount(), *sysDir)
	}

	if *logCap > 0 {
		sys.QueryLog = qlog.New(*logCap)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           web.Handler(sys),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
