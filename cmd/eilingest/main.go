// Command eilingest runs EIL's offline pipeline over a repository tree:
// crawl, parse, annotate, collection-process, and persist the semantic
// index and the business-context database — the Data Acquisition,
// Information Analysis, and Organized Information boxes of the
// architecture diagram.
//
// Usage:
//
//	eilingest -repo ./workbooks -out ./eilsys [-personnel ./workbooks/personnel.jsonl] [-workers N]
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/crawler"
	"repro/internal/directory"
	"repro/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilingest: ")
	var (
		repo       = flag.String("repo", "workbooks", "repository tree to crawl")
		out        = flag.String("out", "eilsys", "system output directory")
		personnel  = flag.String("personnel", "", "personnel directory file (default: <repo>/personnel.jsonl when present)")
		workers    = flag.Int("workers", 0, "annotator and index-build parallelism (0 = GOMAXPROCS)")
		blob       = flag.Bool("blob", false, "degrade to structure-blind parsing (the §3.3 ablation)")
		threshold  = flag.Float64("scope-threshold", 0, "override the scope CPE significance threshold")
		taxFile    = flag.String("taxonomy", "", "custom services taxonomy (JSON; default: built-in IT services vocabulary)")
		dedup      = flag.Bool("dedup", false, "drop near-duplicate documents before analysis (§3.4 redundancy cleanup)")
		stats      = flag.Bool("stats", false, "print the per-annotator and per-CPE wall-time breakdown")
		metricsOut = flag.String("metrics-out", "", "write the ingest metrics snapshot (JSON) to this file")
	)
	flag.Parse()

	var tax *taxonomy.Taxonomy
	if *taxFile != "" {
		var err error
		tax, err = taxonomy.LoadFile(*taxFile)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded custom taxonomy with %d towers from %s", len(tax.Towers()), *taxFile)
	}

	var dir *directory.Directory
	path := *personnel
	if path == "" {
		candidate := filepath.Join(*repo, "personnel.jsonl")
		if _, err := os.Stat(candidate); err == nil {
			path = candidate
		}
	}
	if path != "" {
		var err error
		dir, err = directory.LoadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d personnel records from %s", dir.Len(), path)
	} else {
		log.Printf("no personnel directory: contact enrichment disabled")
	}

	reader, err := crawler.NewFSReader(*repo)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	sys, err := eil.IngestFrom(reader, eil.Options{
		Workers:        *workers,
		Directory:      dir,
		Taxonomy:       tax,
		BlobParsing:    *blob,
		Dedup:          *dedup,
		MinScopeWeight: *threshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	if reader.Skipped() > 0 {
		log.Printf("skipped %d unparseable files", reader.Skipped())
	}
	if len(sys.Duplicates) > 0 {
		log.Printf("dropped %d near-duplicate documents", len(sys.Duplicates))
	}
	if sys.Stats.Failed > 0 {
		log.Printf("warning: %d documents failed analysis", sys.Stats.Failed)
	}
	if *stats {
		for _, st := range sys.Stats.Annotators {
			log.Printf("  annotator %-22s %8s over %d docs (%d failed)",
				st.Name, st.Wall.Round(time.Microsecond), st.Docs, st.Failed)
		}
		for _, st := range sys.Stats.Consumers {
			log.Printf("  cpe       %-22s %8s over %d docs",
				st.Name, st.Wall.Round(time.Microsecond), st.Docs)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Metrics.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote metrics snapshot to %s", *metricsOut)
	}
	if err := sys.Save(*out); err != nil {
		log.Fatal(err)
	}
	ids, err := sys.Synopses.DealIDs()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ingested %d documents (%d annotations) across %d business activities in %v (%.0f docs/sec); saved to %s",
		sys.Index.DocCount(), sys.Stats.Annotations, len(ids), time.Since(start).Round(time.Millisecond),
		sys.Stats.DocsPerSec(), *out)
}
