// Command eilingest runs EIL's offline pipeline over a repository tree:
// crawl, parse, annotate, collection-process, and persist the semantic
// index and the business-context database — the Data Acquisition,
// Information Analysis, and Organized Information boxes of the
// architecture diagram.
//
// Usage:
//
//	eilingest -repo ./workbooks -out ./eilsys [-personnel ./workbooks/personnel.jsonl] [-workers N]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/crawler"
	"repro/internal/directory"
	"repro/internal/obs"
	"repro/internal/runtimetel"
	"repro/internal/taxonomy"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilingest: ")
	var (
		repo       = flag.String("repo", "workbooks", "repository tree to crawl")
		out        = flag.String("out", "eilsys", "system output directory")
		personnel  = flag.String("personnel", "", "personnel directory file (default: <repo>/personnel.jsonl when present)")
		workers    = flag.Int("workers", 0, "annotator and index-build parallelism (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "partition by hashed deal ID into N scatter-gather shards (eilserver auto-detects the cluster on load)")
		blob       = flag.Bool("blob", false, "degrade to structure-blind parsing (the §3.3 ablation)")
		threshold  = flag.Float64("scope-threshold", 0, "override the scope CPE significance threshold")
		taxFile    = flag.String("taxonomy", "", "custom services taxonomy (JSON; default: built-in IT services vocabulary)")
		dedup      = flag.Bool("dedup", false, "drop near-duplicate documents before analysis (§3.4 redundancy cleanup)")
		stats      = flag.Bool("stats", false, "print the per-annotator and per-CPE wall-time breakdown")
		snapKeep   = flag.Int("snapshot-keep", 0, "committed snapshot generations retained in -out as corruption fallbacks (0 = default)")
		metricsOut = flag.String("metrics-out", "", "write the ingest metrics snapshot (JSON) to this file")

		traceSample = flag.Int("trace-sample", 16, "trace 1 in N documents through the annotator flow (0 disables)")
		traceOut    = flag.String("trace-out", "", "write retained document and flush traces (JSON) to this file")
	)
	flag.Parse()

	// Identify the build in the run log: ingest artifacts outlive the
	// binary that wrote them, so "which revision produced this system
	// directory" should be answerable from the log alone.
	goVer, rev, _, modified := runtimetel.Info()
	if rev == "" {
		rev = "unknown"
	} else if modified {
		rev += "+dirty"
	}
	log.Printf("build: %s, revision %s", goVer, rev)

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Options{SampleEvery: *traceSample})
	}

	var tax *taxonomy.Taxonomy
	if *taxFile != "" {
		var err error
		tax, err = taxonomy.LoadFile(*taxFile)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded custom taxonomy with %d towers from %s", len(tax.Towers()), *taxFile)
	}

	var dir *directory.Directory
	path := *personnel
	if path == "" {
		candidate := filepath.Join(*repo, "personnel.jsonl")
		if _, err := os.Stat(candidate); err == nil {
			path = candidate
		}
	}
	if path != "" {
		var err error
		dir, err = directory.LoadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d personnel records from %s", dir.Len(), path)
	} else {
		log.Printf("no personnel directory: contact enrichment disabled")
	}

	// One registry spans the crawl and the pipeline, so the metrics
	// snapshot includes ingest_parse_errors_total alongside the rest.
	metrics := obs.NewRegistry()
	reader, err := crawler.NewFSReader(*repo)
	if err != nil {
		log.Fatal(err)
	}
	reader.Metrics = metrics
	start := time.Now()

	if *shards > 1 {
		cluster, err := eil.IngestShardedFrom(reader, *shards, eil.Options{
			Workers:        *workers,
			Directory:      dir,
			Taxonomy:       tax,
			BlobParsing:    *blob,
			Dedup:          *dedup,
			MinScopeWeight: *threshold,
			Metrics:        metrics,
			Tracer:         tracer,
		})
		if err != nil {
			log.Fatal(err)
		}
		if reader.Skipped() > 0 {
			log.Printf("skipped %d unparseable files", reader.Skipped())
			for _, s := range reader.SkippedFiles() {
				log.Printf("  skip %s: %v", s.Path, s.Err)
			}
		}
		docs, deals, annotations, failed := 0, 0, 0, 0
		for i, s := range cluster.Shards {
			ids, err := s.Synopses.DealIDs()
			if err != nil {
				log.Fatal(err)
			}
			docs += s.Index.DocCount()
			deals += len(ids)
			annotations += s.Stats.Annotations
			failed += s.Stats.Failed
			if *stats {
				log.Printf("  shard %d: %d documents, %d deals", i, s.Index.DocCount(), len(ids))
			}
		}
		if failed > 0 {
			log.Printf("warning: %d documents failed analysis", failed)
		}
		if *metricsOut != "" {
			if err := writeMetrics(metrics, *metricsOut); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote metrics snapshot to %s", *metricsOut)
		}
		if *traceOut != "" && tracer != nil {
			if err := dumpTraces(tracer, *traceOut); err != nil {
				log.Fatal(err)
			}
		}
		cluster.SnapshotKeep = *snapKeep
		gens, err := cluster.Checkpoint(*out)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %d documents (%d annotations) across %d business activities into %d shards in %v; saved to %s (generations %v)",
			docs, annotations, deals, *shards, time.Since(start).Round(time.Millisecond), *out, gens)
		return
	}

	sys, err := eil.IngestFrom(reader, eil.Options{
		Workers:        *workers,
		Directory:      dir,
		Taxonomy:       tax,
		BlobParsing:    *blob,
		Dedup:          *dedup,
		MinScopeWeight: *threshold,
		Metrics:        metrics,
		Tracer:         tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	if reader.Skipped() > 0 {
		log.Printf("skipped %d unparseable files", reader.Skipped())
		for _, s := range reader.SkippedFiles() {
			log.Printf("  skip %s: %v", s.Path, s.Err)
		}
	}
	if len(sys.Duplicates) > 0 {
		log.Printf("dropped %d near-duplicate documents", len(sys.Duplicates))
	}
	if sys.Stats.Failed > 0 {
		log.Printf("warning: %d documents failed analysis", sys.Stats.Failed)
	}
	if *stats {
		for _, st := range sys.Stats.Annotators {
			log.Printf("  annotator %-22s %8s over %d docs (%d failed)",
				st.Name, st.Wall.Round(time.Microsecond), st.Docs, st.Failed)
		}
		for _, st := range sys.Stats.Consumers {
			log.Printf("  cpe       %-22s %8s over %d docs",
				st.Name, st.Wall.Round(time.Microsecond), st.Docs)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(sys.Metrics, *metricsOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote metrics snapshot to %s", *metricsOut)
	}
	if *traceOut != "" && tracer != nil {
		if err := dumpTraces(tracer, *traceOut); err != nil {
			log.Fatal(err)
		}
	}
	sys.SnapshotKeep = *snapKeep
	gen, err := sys.Checkpoint(*out)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := sys.Synopses.DealIDs()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ingested %d documents (%d annotations) across %d business activities in %v (%.0f docs/sec); saved to %s (generation %d)",
		sys.Index.DocCount(), sys.Stats.Annotations, len(ids), time.Since(start).Round(time.Millisecond),
		sys.Stats.DocsPerSec(), *out, gen)
}

// writeMetrics writes the registry's JSON snapshot to path.
func writeMetrics(metrics *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpTraces writes every retained trace — the recent ring plus the slowest
// per route — as one JSON array of {summary, tree} objects, slowest first
// within the slow set, newest first within the recent set.
func dumpTraces(tracer *trace.Tracer, path string) error {
	type dumped struct {
		Summary trace.Summary `json:"summary"`
		Tree    *trace.Node   `json:"tree"`
	}
	seen := map[string]bool{}
	var out []dumped
	for _, tr := range append(tracer.Slowest(""), tracer.Recent(0)...) {
		if seen[tr.ID] {
			continue
		}
		seen[tr.ID] = true
		out = append(out, dumped{Summary: tr.Summarize(), Tree: tr.Tree()})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %d traces to %s", len(out), path)
	return nil
}
