// Command eilbench records an ingest+search throughput snapshot through the
// obs instrumentation: it generates a synthetic corpus, ingests it, runs a
// mixed form/keyword query workload, and writes a JSON report (summary plus
// the full metrics snapshot). The committed BENCH_baseline.json was produced
// by this tool; future performance PRs re-run it to show a trajectory.
//
// Usage:
//
//	eilbench -deals 23 -noise 610 -queries 500 -out BENCH_pr2.json
//	eilbench -procs 1,4 -compare BENCH_baseline.json -out BENCH_pr2.json
//
// -procs runs the whole benchmark once per GOMAXPROCS value (the first is
// the primary run reported at the top level; the rest land in "runs").
// -compare prints per-metric deltas against a previous report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/trace"
)

// ingestSummary and searchSummary are the per-run measurement blocks.
type ingestSummary struct {
	Docs        int     `json:"docs"`
	Deals       int     `json:"deals"`
	Annotations int     `json:"annotations"`
	WallSeconds float64 `json:"wall_seconds"`
	DocsPerSec  float64 `json:"docs_per_sec"`
}

type searchSummary struct {
	Queries       int     `json:"queries"`
	FormQueries   int     `json:"form_queries"`
	KeywordHits   int     `json:"keyword_queries"`
	WallSeconds   float64 `json:"wall_seconds"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Seconds    float64 `json:"p50_seconds"`
	P95Seconds    float64 `json:"p95_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
	// Stages breaks form-query time down by pipeline stage, measured from
	// the per-query trace spans (search.compose, search.synopsis,
	// search.siapi, search.combine, search.access).
	Stages map[string]stageSummary `json:"stages,omitempty"`
}

// stageSummary is one search stage's aggregate span timing.
type stageSummary struct {
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// runReport is one complete benchmark pass at a fixed GOMAXPROCS.
type runReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Ingest     ingestSummary  `json:"ingest"`
	Search     searchSummary  `json:"search"`
	Metrics    []obs.Snapshot `json:"metrics"`
}

// report is the JSON document eilbench writes. The top-level fields mirror
// the original single-run layout (so -compare can read any vintage);
// additional -procs runs are appended under "runs".
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Ingest  ingestSummary  `json:"ingest"`
	Search  searchSummary  `json:"search"`
	Metrics []obs.Snapshot `json:"metrics"`

	Runs []runReport `json:"runs,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilbench: ")
	var (
		deals   = flag.Int("deals", 23, "synthetic corpus size in deals (paper evaluation: 23)")
		noise   = flag.Int("noise", 610, "noise documents per deal (paper evaluation: ~610)")
		queries = flag.Int("queries", 500, "workload size (3:1 form-to-keyword mix)")
		out     = flag.String("out", "", "write the JSON report to this file (default: stdout)")
		procs   = flag.String("procs", "", "comma-separated GOMAXPROCS values to benchmark (default: current)")
		compare = flag.String("compare", "", "previous report JSON to diff against")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := synth.EvalConfig()
	cfg.Deals = *deals
	cfg.NoiseDocsPerDeal = *noise

	procList, err := parseProcs(*procs)
	if err != nil {
		log.Fatal(err)
	}

	var runs []runReport
	for _, p := range procList {
		prev := runtime.GOMAXPROCS(p)
		run, err := benchOnce(cfg, *queries)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, run)
	}

	var r report
	r.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runs[0].GOMAXPROCS
	r.Ingest = runs[0].Ingest
	r.Search = runs[0].Search
	r.Metrics = runs[0].Metrics
	r.Runs = runs[1:]

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		log.Printf("wrote %s", *out)
	}
	if *compare != "" {
		if err := printComparison(*compare, r); err != nil {
			log.Fatal(err)
		}
	}
}

// parseProcs turns "1,4" into [1, 4]; empty means the current GOMAXPROCS.
func parseProcs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{runtime.GOMAXPROCS(0)}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -procs value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// benchOnce generates the corpus, ingests it, and runs the query workload at
// the current GOMAXPROCS.
func benchOnce(cfg synth.Config, queries int) (runReport, error) {
	var run runReport
	run.GOMAXPROCS = runtime.GOMAXPROCS(0)
	log.Printf("[procs=%d] generating %d deals x ~%d docs...", run.GOMAXPROCS, cfg.Deals, cfg.NoiseDocsPerDeal)
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return run, err
	}

	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return run, err
	}
	log.Printf("[procs=%d] ingested %d docs in %v (%.0f docs/sec)",
		run.GOMAXPROCS, sys.Stats.Docs, sys.Stats.Wall.Round(time.Millisecond), sys.Stats.DocsPerSec())

	// Mixed workload: cycle concept-scoped form queries (with and without
	// text predicates) and keyword-baseline queries over the taxonomy
	// vocabulary, so every search stage is exercised.
	towers := sys.Taxonomy.TowerNames()
	user := access.User{ID: "bench"}
	phrases := []string{"data replication", "service desk", "disaster recovery", "asset management"}

	// Every form query runs traced (a tiny ring: spans are read inline, not
	// retained), so the report can break latency down by pipeline stage.
	tracer := trace.New(trace.Options{RingSize: 16, SlowPerRoute: 1})
	stageTotals := map[string]time.Duration{}
	stageCounts := map[string]int{}
	recordStages := func(tr *trace.Trace) {
		for _, s := range tr.Spans() {
			if strings.HasPrefix(s.Name, "search.") {
				stageTotals[s.Name] += s.Duration
				stageCounts[s.Name]++
			}
		}
	}
	formQuery := func(q core.FormQuery) error {
		ctx, tr := tracer.Start(context.Background(), "bench.form", trace.StartOptions{})
		_, err := sys.SearchCtx(ctx, user, q)
		tr.Finish()
		if err == nil {
			recordStages(tr)
		}
		return err
	}

	searchWall := obs.StartTimer()
	var formN, keywordN int
	for i := 0; i < queries; i++ {
		switch i % 4 {
		case 0:
			err = formQuery(core.FormQuery{Tower: towers[i%len(towers)]})
		case 1:
			err = formQuery(core.FormQuery{
				Tower:       towers[i%len(towers)],
				ExactPhrase: phrases[i%len(phrases)],
			})
		case 2:
			err = formQuery(core.FormQuery{AnyWords: []string{"replication", "outsourcing"}})
		case 3:
			sys.KeywordSearch(fmt.Sprintf("%q", phrases[i%len(phrases)]), 20)
			keywordN++
			continue
		}
		if err != nil {
			return run, err
		}
		formN++
	}
	searchElapsed := searchWall.Elapsed()

	run.Ingest.Docs = sys.Stats.Docs
	run.Ingest.Deals = cfg.Deals
	run.Ingest.Annotations = sys.Stats.Annotations
	run.Ingest.WallSeconds = sys.Stats.Wall.Seconds()
	run.Ingest.DocsPerSec = sys.Stats.DocsPerSec()
	run.Search.Queries = queries
	run.Search.FormQueries = formN
	run.Search.KeywordHits = keywordN
	run.Search.WallSeconds = searchElapsed.Seconds()
	run.Search.QueriesPerSec = float64(queries) / searchElapsed.Seconds()
	h := sys.Metrics.Histogram("search_seconds", nil)
	run.Search.P50Seconds = h.Quantile(0.50)
	run.Search.P95Seconds = h.Quantile(0.95)
	run.Search.P99Seconds = h.Quantile(0.99)
	run.Search.Stages = map[string]stageSummary{}
	for name, total := range stageTotals {
		n := stageCounts[name]
		run.Search.Stages[name] = stageSummary{
			Count:        n,
			TotalSeconds: total.Seconds(),
			MeanSeconds:  total.Seconds() / float64(n),
		}
	}
	run.Metrics = sys.Metrics.Snapshots()

	log.Printf("[procs=%d] search: %d queries in %v (%.0f q/s, p50 %.3gms p95 %.3gms p99 %.3gms)",
		run.GOMAXPROCS, queries, searchElapsed.Round(time.Millisecond), run.Search.QueriesPerSec,
		run.Search.P50Seconds*1000, run.Search.P95Seconds*1000, run.Search.P99Seconds*1000)
	return run, nil
}

// printComparison loads a previous report and prints per-metric deltas
// between its primary run and this one's.
func printComparison(path string, cur report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("compare: parse %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "\ncomparison vs %s (baseline procs=%d, current procs=%d):\n",
		path, base.GOMAXPROCS, cur.GOMAXPROCS)
	row := func(name string, baseV, curV float64, higherBetter bool) {
		if baseV == 0 {
			fmt.Fprintf(os.Stderr, "  %-22s %12.4g -> %12.4g\n", name, baseV, curV)
			return
		}
		ratio := curV / baseV
		verdict := "slower"
		if (higherBetter && ratio >= 1) || (!higherBetter && ratio <= 1) {
			verdict = "faster"
		}
		fmt.Fprintf(os.Stderr, "  %-22s %12.4g -> %12.4g   %.2fx (%s)\n", name, baseV, curV, ratio, verdict)
	}
	row("ingest docs/sec", base.Ingest.DocsPerSec, cur.Ingest.DocsPerSec, true)
	row("search queries/sec", base.Search.QueriesPerSec, cur.Search.QueriesPerSec, true)
	row("search p50 (ms)", base.Search.P50Seconds*1000, cur.Search.P50Seconds*1000, false)
	row("search p95 (ms)", base.Search.P95Seconds*1000, cur.Search.P95Seconds*1000, false)
	row("search p99 (ms)", base.Search.P99Seconds*1000, cur.Search.P99Seconds*1000, false)
	for _, run := range cur.Runs {
		fmt.Fprintf(os.Stderr, "  [procs=%d run] ingest %.4g docs/sec, search %.4g q/s, p99 %.4gms\n",
			run.GOMAXPROCS, run.Ingest.DocsPerSec, run.Search.QueriesPerSec, run.Search.P99Seconds*1000)
	}
	return nil
}
