// Command eilbench records an ingest+search throughput snapshot through the
// obs instrumentation: it generates a synthetic corpus, ingests it, runs a
// mixed form/keyword query workload, and writes a JSON report (summary plus
// the full metrics snapshot). The committed BENCH_baseline.json was produced
// by this tool; future performance PRs re-run it to show a trajectory.
//
// Usage:
//
//	eilbench -deals 23 -noise 610 -queries 500 -out BENCH_pr2.json
//	eilbench -procs 1,4 -compare BENCH_baseline.json -out BENCH_pr2.json
//
// -procs runs the whole benchmark once per GOMAXPROCS value (the first is
// the primary run reported at the top level; the rest land in "runs").
// -compare prints per-metric deltas against a previous report.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runtimetel"
	"repro/internal/slo"
	"repro/internal/synth"
	"repro/internal/trace"
)

// ingestSummary and searchSummary are the per-run measurement blocks.
type ingestSummary struct {
	Docs        int     `json:"docs"`
	Deals       int     `json:"deals"`
	Annotations int     `json:"annotations"`
	WallSeconds float64 `json:"wall_seconds"`
	DocsPerSec  float64 `json:"docs_per_sec"`
}

type searchSummary struct {
	Queries       int     `json:"queries"`
	FormQueries   int     `json:"form_queries"`
	KeywordHits   int     `json:"keyword_queries"`
	WallSeconds   float64 `json:"wall_seconds"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// Unavailable counts queries refused outright (no serving tier left) —
	// nonzero only under fault injection.
	Unavailable int `json:"unavailable,omitempty"`
	// Concurrency is the closed-loop worker count (0/absent = sequential).
	Concurrency int     `json:"concurrency,omitempty"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	// Stages breaks form-query time down by pipeline stage, measured from
	// the per-query trace spans (search.compose, search.synopsis,
	// search.siapi, search.combine, search.access).
	Stages map[string]stageSummary `json:"stages,omitempty"`
}

// stageSummary is one search stage's aggregate span timing.
type stageSummary struct {
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// runReport is one complete benchmark pass at a fixed GOMAXPROCS.
type runReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Ingest     ingestSummary  `json:"ingest"`
	Search     searchSummary  `json:"search"`
	Metrics    []obs.Snapshot `json:"metrics"`
}

// report is the JSON document eilbench writes. The top-level fields mirror
// the original single-run layout (so -compare can read any vintage);
// additional -procs runs are appended under "runs".
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	// NumCPU is the host's logical CPU count. GOMAXPROCS above the CPU
	// count only timeslices; the shard A/B's parallel speedup is bounded
	// by this number, so a committed artifact is uninterpretable without it.
	NumCPU int `json:"num_cpu"`

	Ingest  ingestSummary  `json:"ingest"`
	Search  searchSummary  `json:"search"`
	Metrics []obs.Snapshot `json:"metrics"`

	Runs []runReport `json:"runs,omitempty"`

	// Chaos is the -chaos mode block: resilience overhead when nothing
	// fails, and availability/latency under injected fault rates.
	Chaos *chaosSummary `json:"chaos,omitempty"`

	// Durability is the -durability mode block: snapshot save/load cost,
	// journaled-update throughput, and crash-recovery (snapshot + journal
	// replay) wall time.
	Durability *durabilitySummary `json:"durability,omitempty"`

	// SLO judges the primary run against the availability/latency
	// objectives, so BENCH artifacts carry objective pass/fail, not just
	// raw latencies.
	SLO *sloCompliance `json:"slo,omitempty"`

	// Telemetry is the -telemetry mode block: the A/B cost of running the
	// runtime collector plus SLO evaluation alongside the search workload.
	Telemetry *telemetrySummary `json:"telemetry,omitempty"`

	// Shard is the -shards A/B block: the same varied workload against the
	// monolithic engine and an N-shard scatter-gather cluster, at each
	// requested concurrency.
	Shard *shardSummary `json:"shard,omitempty"`

	// Repl is the -repl mode block: read-scaling of a primary plus N
	// WAL-shipped read replicas behind the router, as a cpu-bound pair and
	// a remote-replica latency-model pair (see replSummary).
	Repl *replSummary `json:"repl,omitempty"`

	// LoadCurve is the -loadcurve mode block: open-loop throughput-vs-
	// latency curves per engine and GOMAXPROCS.
	LoadCurve *loadCurveSummary `json:"load_curve,omitempty"`

	// Build stamps the exact build (module version, VCS revision, dirty
	// flag) and host shape that produced this artifact. The legacy
	// top-level go_version/gomaxprocs/num_cpu fields stay for -compare
	// compatibility with older reports.
	Build *runtimetel.ReportHeader `json:"build,omitempty"`
}

// shardSide is one engine's side of a shard A/B measurement.
type shardSide struct {
	QPS         float64 `json:"qps"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	Unavailable int     `json:"unavailable,omitempty"`
}

// shardPair compares monolith vs sharded at one closed-loop concurrency.
type shardPair struct {
	Concurrency int       `json:"concurrency"`
	Monolith    shardSide `json:"monolith"`
	Sharded     shardSide `json:"sharded"`
	// Speedup is sharded QPS over monolith QPS.
	Speedup float64 `json:"speedup_qps"`
}

// shardSummary is the -shards report block.
type shardSummary struct {
	Shards  int         `json:"shards"`
	Queries int         `json:"queries"`
	Pairs   []shardPair `json:"pairs"`
}

// sloCompliance is the objective verdict over a measured workload.
type sloCompliance struct {
	AvailabilityObjective      float64 `json:"availability_objective"`
	LatencyP99ObjectiveSeconds float64 `json:"latency_p99_objective_seconds"`
	ObservedAvailability       float64 `json:"observed_availability"`
	ObservedP99Seconds         float64 `json:"observed_p99_seconds"`
	AvailabilityPass           bool    `json:"availability_pass"`
	LatencyPass                bool    `json:"latency_pass"`
	Pass                       bool    `json:"pass"`
}

// judgeSLO evaluates observed figures against the objectives.
func judgeSLO(availObj, p99Obj, availability, p99 float64) *sloCompliance {
	c := &sloCompliance{
		AvailabilityObjective:      availObj,
		LatencyP99ObjectiveSeconds: p99Obj,
		ObservedAvailability:       availability,
		ObservedP99Seconds:         p99,
		AvailabilityPass:           availability >= availObj,
		LatencyPass:                p99 <= p99Obj,
	}
	c.Pass = c.AvailabilityPass && c.LatencyPass
	return c
}

// telemetrySummary is the -telemetry report block: identical workloads with
// the judgment layer off and on, best-of-three walls each.
type telemetrySummary struct {
	IntervalSeconds float64 `json:"interval_seconds"`
	PlainQPS        float64 `json:"plain_qps"`
	TelemetryQPS    float64 `json:"telemetry_qps"`
	// OverheadFraction is (telemetry wall / plain wall) - 1: what the
	// collector ticks plus SLO evaluation cost the workload.
	OverheadFraction float64 `json:"overhead_fraction"`
}

// durabilitySummary is the -durability report block.
type durabilitySummary struct {
	// Snapshot checkpoint of the full ingested system.
	SnapshotSaveSeconds float64 `json:"snapshot_save_seconds"`
	SnapshotBytes       int64   `json:"snapshot_bytes"`
	SnapshotLoadSeconds float64 `json:"snapshot_load_seconds"`

	// Journaled updates: AddDocuments batches applied with the WAL enabled
	// (fsync per batch), then recovery replaying them all from the journal.
	JournaledBatches     int     `json:"journaled_batches"`
	JournaledDocs        int     `json:"journaled_docs"`
	JournalSeconds       float64 `json:"journal_seconds"`
	JournalBatchesPerSec float64 `json:"journal_batches_per_sec"`
	WALBytes             int64   `json:"wal_bytes"`
	RecoverySeconds      float64 `json:"recovery_seconds"`

	// Raw journal micro-benchmark: 256-byte records, fsync every record vs
	// batched fsync, and replay throughput.
	RawRecords             int     `json:"raw_records"`
	RawAppendSyncedPerSec  float64 `json:"raw_append_synced_per_sec"`
	RawAppendBatchedPerSec float64 `json:"raw_append_batched_per_sec"`
	RawReplayPerSec        float64 `json:"raw_replay_per_sec"`
}

// chaosScenario is one fault-rate pass of the chaos workload.
type chaosScenario struct {
	// FaultRate is the per-call injection probability applied to the
	// synopsis and SIAPI call sites (error plus 20ms latency rules).
	FaultRate float64 `json:"fault_rate"`
	Queries   int     `json:"queries"`
	OK        int     `json:"ok"`
	Degraded  int     `json:"degraded"`
	// Unavailable counts queries with no serving tier left (the 503 class).
	Unavailable int `json:"unavailable"`
	// Availability is the fraction of queries answered (full or degraded).
	Availability float64 `json:"availability"`
	DegradedFrac float64 `json:"degraded_fraction"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	// SLO judges this scenario against the run's objectives.
	SLO *sloCompliance `json:"slo,omitempty"`
}

// chaosSummary is the -chaos report block.
type chaosSummary struct {
	BudgetSeconds float64 `json:"budget_seconds"`
	MaxRetries    int     `json:"max_retries"`
	// OverheadFraction is (resilient wall / plain wall) - 1 with no faults
	// injected: the cost of the budget/retry/breaker envelope itself.
	OverheadFraction float64         `json:"overhead_fraction"`
	PlainQPS         float64         `json:"plain_qps"`
	ResilientQPS     float64         `json:"resilient_qps"`
	Scenarios        []chaosScenario `json:"scenarios"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilbench: ")
	var (
		deals   = flag.Int("deals", 23, "synthetic corpus size in deals (paper evaluation: 23)")
		noise   = flag.Int("noise", 610, "noise documents per deal (paper evaluation: ~610)")
		queries = flag.Int("queries", 500, "workload size (3:1 form-to-keyword mix)")
		out     = flag.String("out", "", "write the JSON report to this file (default: stdout)")
		procs   = flag.String("procs", "", "comma-separated GOMAXPROCS values to benchmark (default: current)")
		compare = flag.String("compare", "", "previous report JSON to diff against")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")

		shardN      = flag.Int("shards", 0, "run the shard A/B: monolithic engine vs N-shard scatter-gather over the same corpus and a varied low-cache-hit workload (adds the 'shard' report block)")
		replN       = flag.Int("repl", 0, "run the replication read-scaling A/B: a lone primary vs the same primary plus N WAL-shipped read replicas behind the router (adds the 'repl' report block)")
		concurrency = flag.Int("concurrency", 1, "closed-loop workload workers; >1 runs a short untimed ramp, then N workers drain the query set")

		chaos      = flag.Bool("chaos", false, "measure resilience: fault-free overhead, then availability/latency at 0/1/5%% injected fault rates")
		durability = flag.Bool("durability", false, "measure durability: snapshot save/load, journaled-update throughput, crash recovery")
		budget     = flag.Duration("search-budget", 2*time.Second, "search time budget used by -chaos and -fault-spec runs")
		faultSpec  = flag.String("fault-spec", "", "inject faults into the standard workload, e.g. 'synopsis.search:error:p=0.01'")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for fault-injection randomness")

		telemetry   = flag.Bool("telemetry", false, "measure the A/B overhead of running the runtime collector + SLO evaluation alongside the workload")
		telInterval = flag.Duration("telemetry-interval", 250*time.Millisecond, "collector sampling interval for the -telemetry A/B (aggressive on purpose; production default is 10s)")
		sloAvail    = flag.Float64("slo-availability", 0.999, "availability objective the report's SLO verdicts judge against")
		sloP99      = flag.Duration("slo-latency-p99", 250*time.Millisecond, "p99 latency objective the report's SLO verdicts judge against")
	)
	lcf := registerLoadCurveFlags()
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := synth.EvalConfig()
	cfg.Deals = *deals
	cfg.NoiseDocsPerDeal = *noise

	procList, err := parseProcs(*procs)
	if err != nil {
		log.Fatal(err)
	}

	var inj *fault.Injector
	if *faultSpec != "" {
		inj, err = fault.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("fault injection active (seed %d): %s", *faultSeed, *faultSpec)
	}

	var r report
	r.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.NumCPU = runtime.NumCPU()
	hdr := runtimetel.NewReportHeader()
	r.Build = &hdr

	if *durability {
		run, ds, err := durabilityBench(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r.GOMAXPROCS = run.GOMAXPROCS
		r.Ingest = run.Ingest
		r.Metrics = run.Metrics
		r.Durability = ds
	} else if *lcf.enabled {
		run, lc, err := loadCurveBench(cfg, lcf, *shardN, procList)
		if err != nil {
			log.Fatal(err)
		}
		r.GOMAXPROCS = run.GOMAXPROCS
		r.Ingest = run.Ingest
		r.Metrics = run.Metrics
		r.LoadCurve = lc
	} else if *chaos {
		run, cs, err := chaosBench(cfg, *queries, *budget, *faultSeed)
		if err != nil {
			log.Fatal(err)
		}
		r.GOMAXPROCS = run.GOMAXPROCS
		r.Ingest = run.Ingest
		r.Search = run.Search
		r.Metrics = run.Metrics
		r.Chaos = cs
	} else {
		var runs []runReport
		for _, p := range procList {
			prev := runtime.GOMAXPROCS(p)
			run, err := benchOnce(cfg, *queries, *budget, inj, *concurrency)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				log.Fatal(err)
			}
			runs = append(runs, run)
		}
		r.GOMAXPROCS = runs[0].GOMAXPROCS
		r.Ingest = runs[0].Ingest
		r.Search = runs[0].Search
		r.Metrics = runs[0].Metrics
		r.Runs = runs[1:]
	}

	// Judge the primary run against the objectives so the artifact carries
	// pass/fail, and per-scenario verdicts when chaos ran.
	if r.Search.Queries > 0 {
		availability := float64(r.Search.Queries-r.Search.Unavailable) / float64(r.Search.Queries)
		r.SLO = judgeSLO(*sloAvail, sloP99.Seconds(), availability, r.Search.P99Seconds)
		log.Printf("[slo] availability %.4f (objective %.4f, pass=%v), p99 %.3gms (objective %v, pass=%v)",
			r.SLO.ObservedAvailability, r.SLO.AvailabilityObjective, r.SLO.AvailabilityPass,
			r.SLO.ObservedP99Seconds*1000, *sloP99, r.SLO.LatencyPass)
	}
	if r.Chaos != nil {
		for i := range r.Chaos.Scenarios {
			sc := &r.Chaos.Scenarios[i]
			sc.SLO = judgeSLO(*sloAvail, sloP99.Seconds(), sc.Availability, sc.P99Seconds)
		}
	}
	if *telemetry {
		ts, err := telemetryBench(cfg, *queries, *telInterval)
		if err != nil {
			log.Fatal(err)
		}
		r.Telemetry = ts
	}
	if *shardN > 1 && !*lcf.enabled { // -loadcurve consumes -shards itself
		if runtime.NumCPU() < *shardN {
			log.Printf("[shard] warning: %d shards on %d CPU(s) — the scatter timeslices instead of "+
				"running in parallel, so the A/B measures overhead and locality, not parallel speedup", *shardN, runtime.NumCPU())
		}
		prev := runtime.GOMAXPROCS(procList[0])
		ss, err := shardBench(cfg, *queries, *shardN, *concurrency)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			log.Fatal(err)
		}
		r.Shard = ss
	}
	if *replN > 0 {
		if runtime.NumCPU() < *replN+1 {
			log.Printf("[repl] warning: %d nodes on %d CPU(s) — the cpu_bound pair measures routing overhead, "+
				"not parallel speedup; see the latency_model pair and the report's note field", *replN+1, runtime.NumCPU())
		}
		rs, err := replBench(cfg, *queries, *replN)
		if err != nil {
			log.Fatal(err)
		}
		r.Repl = rs
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		log.Printf("wrote %s", *out)
	}
	if *compare != "" {
		if err := printComparison(*compare, r); err != nil {
			log.Fatal(err)
		}
	}
}

// parseProcs turns "1,4" into [1, 4]; empty means the current GOMAXPROCS.
func parseProcs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{runtime.GOMAXPROCS(0)}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -procs value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// closedLoop drives do(i) for i in [0, queries) across `workers`
// goroutines: first an untimed sequential ramp over the opening slice of
// the query set (caches and the scheduler settle), then the workers drain
// a shared counter. do returns the query's latency (negative to exclude it
// from the percentile set, e.g. keyword baseline calls) and whether the
// query was refused outright.
func closedLoop(queries, workers int, do func(i int) (time.Duration, bool, error)) (wall time.Duration, lats []time.Duration, unavailable int, err error) {
	ramp := queries / 10
	if ramp > 50 {
		ramp = 50
	}
	for i := 0; i < ramp; i++ {
		if _, _, rerr := do(i); rerr != nil {
			return 0, nil, 0, rerr
		}
	}
	if workers < 1 {
		workers = 1
	}
	var next, refused atomic.Int64
	perWorker := make([][]time.Duration, workers)
	errs := make([]error, workers)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= queries {
					return
				}
				lat, ref, derr := do(i)
				if derr != nil {
					errs[w] = derr
					return
				}
				if ref {
					refused.Add(1)
				}
				if lat >= 0 {
					perWorker[w] = append(perWorker[w], lat)
				}
			}
		}()
	}
	wg.Wait()
	wall = time.Since(t0)
	for _, e := range errs {
		if e != nil {
			return wall, nil, 0, e
		}
	}
	for _, l := range perWorker {
		lats = append(lats, l...)
	}
	return wall, lats, int(refused.Load()), nil
}

// latQuantile reports the q-quantile of a latency sample.
func latQuantile(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))].Seconds()
}

// benchOnce generates the corpus, ingests it, and runs the query workload at
// the current GOMAXPROCS. A non-nil injector runs the workload under fault
// injection with the resilience envelope (budget, 3 retries) enabled.
// concurrency > 1 switches the workload to a closed loop of that many
// workers (percentiles then come from per-query wall times, and the
// per-stage trace breakdown is skipped — stage spans overlap under
// contention).
func benchOnce(cfg synth.Config, queries int, budget time.Duration, inj *fault.Injector, concurrency int) (runReport, error) {
	var run runReport
	run.GOMAXPROCS = runtime.GOMAXPROCS(0)
	log.Printf("[procs=%d] generating %d deals x ~%d docs...", run.GOMAXPROCS, cfg.Deals, cfg.NoiseDocsPerDeal)
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return run, err
	}

	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return run, err
	}
	if inj != nil {
		sys.Engine.Faults = inj
		sys.Engine.Resilient = core.Resilience{Budget: budget, MaxRetries: 3}
	}
	log.Printf("[procs=%d] ingested %d docs in %v (%.0f docs/sec)",
		run.GOMAXPROCS, sys.Stats.Docs, sys.Stats.Wall.Round(time.Millisecond), sys.Stats.DocsPerSec())

	// Mixed workload: cycle concept-scoped form queries (with and without
	// text predicates) and keyword-baseline queries over the taxonomy
	// vocabulary, so every search stage is exercised.
	towers := sys.Taxonomy.TowerNames()
	user := access.User{ID: "bench"}
	phrases := []string{"data replication", "service desk", "disaster recovery", "asset management"}

	// Every form query runs traced (a tiny ring: spans are read inline, not
	// retained), so the report can break latency down by pipeline stage.
	tracer := trace.New(trace.Options{RingSize: 16, SlowPerRoute: 1})
	stageTotals := map[string]time.Duration{}
	stageCounts := map[string]int{}
	recordStages := func(tr *trace.Trace) {
		for _, s := range tr.Spans() {
			if strings.HasPrefix(s.Name, "search.") {
				stageTotals[s.Name] += s.Duration
				stageCounts[s.Name]++
			}
		}
	}
	formQuery := func(q core.FormQuery) error {
		ctx, tr := tracer.Start(context.Background(), "bench.form", trace.StartOptions{})
		_, err := sys.SearchCtx(ctx, user, q)
		tr.Finish()
		if err == nil {
			recordStages(tr)
		}
		return err
	}

	mix := func(i int) core.FormQuery {
		switch i % 4 {
		case 0:
			return core.FormQuery{Tower: towers[i%len(towers)]}
		case 1:
			return core.FormQuery{
				Tower:       towers[i%len(towers)],
				ExactPhrase: phrases[i%len(phrases)],
			}
		default:
			return core.FormQuery{AnyWords: []string{"replication", "outsourcing"}}
		}
	}

	var formN, keywordN int
	var searchElapsed time.Duration
	var conLats []time.Duration
	if concurrency > 1 {
		wall, lats, refused, lerr := closedLoop(queries, concurrency, func(i int) (time.Duration, bool, error) {
			if i%4 == 3 {
				sys.KeywordSearch(fmt.Sprintf("%q", phrases[i%len(phrases)]), 20)
				return -1, false, nil
			}
			t0 := time.Now()
			_, serr := sys.SearchCtx(context.Background(), user, mix(i))
			lat := time.Since(t0)
			if serr != nil {
				if inj != nil && core.IsUnavailable(serr) {
					return lat, true, nil
				}
				return lat, false, serr
			}
			return lat, false, nil
		})
		if lerr != nil {
			return run, lerr
		}
		searchElapsed, conLats = wall, lats
		run.Search.Unavailable = refused
		run.Search.Concurrency = concurrency
		for i := 0; i < queries; i++ {
			if i%4 == 3 {
				keywordN++
			} else {
				formN++
			}
		}
		formN -= refused
	} else {
		searchWall := obs.StartTimer()
		for i := 0; i < queries; i++ {
			if i%4 == 3 {
				sys.KeywordSearch(fmt.Sprintf("%q", phrases[i%len(phrases)]), 20)
				keywordN++
				continue
			}
			if err := formQuery(mix(i)); err != nil {
				if inj != nil && core.IsUnavailable(err) {
					run.Search.Unavailable++
					continue // injected outage with no serving tier left
				}
				return run, err
			}
			formN++
		}
		searchElapsed = searchWall.Elapsed()
	}

	run.Ingest.Docs = sys.Stats.Docs
	run.Ingest.Deals = cfg.Deals
	run.Ingest.Annotations = sys.Stats.Annotations
	run.Ingest.WallSeconds = sys.Stats.Wall.Seconds()
	run.Ingest.DocsPerSec = sys.Stats.DocsPerSec()
	run.Search.Queries = queries
	run.Search.FormQueries = formN
	run.Search.KeywordHits = keywordN
	run.Search.WallSeconds = searchElapsed.Seconds()
	run.Search.QueriesPerSec = float64(queries) / searchElapsed.Seconds()
	if conLats != nil {
		run.Search.P50Seconds = latQuantile(conLats, 0.50)
		run.Search.P95Seconds = latQuantile(conLats, 0.95)
		run.Search.P99Seconds = latQuantile(conLats, 0.99)
	} else {
		h := sys.Metrics.Histogram("search_seconds", nil)
		run.Search.P50Seconds = h.Quantile(0.50)
		run.Search.P95Seconds = h.Quantile(0.95)
		run.Search.P99Seconds = h.Quantile(0.99)
	}
	run.Search.Stages = map[string]stageSummary{}
	for name, total := range stageTotals {
		n := stageCounts[name]
		run.Search.Stages[name] = stageSummary{
			Count:        n,
			TotalSeconds: total.Seconds(),
			MeanSeconds:  total.Seconds() / float64(n),
		}
	}
	run.Metrics = sys.Metrics.Snapshots()

	log.Printf("[procs=%d] search: %d queries in %v (%.0f q/s, p50 %.3gms p95 %.3gms p99 %.3gms)",
		run.GOMAXPROCS, queries, searchElapsed.Round(time.Millisecond), run.Search.QueriesPerSec,
		run.Search.P50Seconds*1000, run.Search.P95Seconds*1000, run.Search.P99Seconds*1000)
	return run, nil
}

// chaosFaultRates are the injected per-call fault probabilities the chaos
// mode sweeps.
var chaosFaultRates = []float64{0, 0.01, 0.05}

// chaosBench ingests once, then measures the resilience envelope: the
// fault-free overhead of enabling it, and availability/degradation/latency
// under increasing injected fault rates. Each pass runs on a Derive()d
// engine so breaker state and per-engine caches never leak between
// scenarios.
func chaosBench(cfg synth.Config, queries int, budget time.Duration, seed uint64) (runReport, *chaosSummary, error) {
	run, err := benchOnce(cfg, queries, budget, nil, 1)
	if err != nil {
		return run, nil, err
	}
	// benchOnce does not return its system; rebuild one for the chaos
	// passes from the same corpus config (generation is deterministic).
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return run, nil, err
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return run, nil, err
	}

	towers := sys.Taxonomy.TowerNames()
	user := access.User{ID: "bench"}
	phrases := []string{"data replication", "service desk", "disaster recovery", "asset management"}
	mix := func(i int) core.FormQuery {
		switch i % 3 {
		case 0:
			return core.FormQuery{Tower: towers[i%len(towers)]}
		case 1:
			return core.FormQuery{Tower: towers[i%len(towers)], ExactPhrase: phrases[i%len(phrases)]}
		default:
			return core.FormQuery{AnyWords: []string{"replication", "outsourcing"}}
		}
	}
	workload := func(eng *core.Engine) (lats []time.Duration, ok, degraded, unavail int, err error) {
		ctx := context.Background()
		for i := 0; i < queries; i++ {
			t0 := time.Now()
			res, serr := eng.SearchCtx(ctx, user, mix(i))
			lats = append(lats, time.Since(t0))
			switch {
			case serr == nil:
				ok++
				if res.Degraded {
					degraded++
				}
			case core.IsUnavailable(serr):
				unavail++
			default:
				return nil, 0, 0, 0, serr
			}
		}
		return lats, ok, degraded, unavail, nil
	}
	cs := &chaosSummary{BudgetSeconds: budget.Seconds(), MaxRetries: 3}

	// Overhead: plain vs resilience-enabled, both fault-free. A warmup pass
	// first (shared index caches then serve both sides equally), then three
	// alternating passes per side keeping the best wall, so scheduler noise
	// does not masquerade as envelope cost.
	if _, _, _, _, err := workload(sys.Engine.Derive()); err != nil {
		return run, nil, err
	}
	timed := func(eng *core.Engine) (time.Duration, error) {
		t0 := time.Now()
		_, _, _, _, err := workload(eng)
		return time.Since(t0), err
	}
	plain := sys.Engine.Derive()
	resil := sys.Engine.Derive()
	resil.Resilient = core.Resilience{Budget: budget, MaxRetries: 3}
	var plainWall, resilWall time.Duration
	for pass := 0; pass < 3; pass++ {
		pw, err := timed(plain)
		if err != nil {
			return run, nil, err
		}
		rw, err := timed(resil)
		if err != nil {
			return run, nil, err
		}
		if pass == 0 || pw < plainWall {
			plainWall = pw
		}
		if pass == 0 || rw < resilWall {
			resilWall = rw
		}
	}
	cs.PlainQPS = float64(queries) / plainWall.Seconds()
	cs.ResilientQPS = float64(queries) / resilWall.Seconds()
	cs.OverheadFraction = resilWall.Seconds()/plainWall.Seconds() - 1
	log.Printf("[chaos] fault-free overhead: %.2f%% (plain %.0f q/s, resilient %.0f q/s)",
		cs.OverheadFraction*100, cs.PlainQPS, cs.ResilientQPS)

	for _, rate := range chaosFaultRates {
		eng := sys.Engine.Derive()
		eng.Resilient = core.Resilience{Budget: budget, MaxRetries: 3}
		if rate > 0 {
			inj := fault.New(seed)
			inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError, P: rate})
			inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError, P: rate})
			inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeSlow, Latency: 20 * time.Millisecond, P: rate})
			eng.Faults = inj
		}
		lats, ok, degraded, unavail, err := workload(eng)
		if err != nil {
			return run, nil, err
		}
		sc := chaosScenario{
			FaultRate:    rate,
			Queries:      queries,
			OK:           ok,
			Degraded:     degraded,
			Unavailable:  unavail,
			Availability: float64(queries-unavail) / float64(queries),
			DegradedFrac: float64(degraded) / float64(queries),
			P50Seconds:   latQuantile(lats, 0.50),
			P99Seconds:   latQuantile(lats, 0.99),
		}
		cs.Scenarios = append(cs.Scenarios, sc)
		log.Printf("[chaos] rate %.0f%%: availability %.4f, degraded %.1f%%, p50 %.3gms p99 %.3gms",
			rate*100, sc.Availability, sc.DegradedFrac*100, sc.P50Seconds*1000, sc.P99Seconds*1000)
	}
	return run, cs, nil
}

// searcher is the SearchCtx surface shardBench drives against either a
// monolithic System or a Cluster.
type searcher interface {
	SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error)
}

// shardBenchWords cross with the taxonomy towers to give the shard A/B
// ~500 distinct queries, so per-engine caches see a realistically low hit
// rate and the comparison measures search work, not memoization.
var shardBenchWords = []string{
	"replication", "outsourcing", "migration", "backup", "recovery",
	"network", "storage", "transition", "governance", "consolidation",
}

// shardBench ingests one corpus twice — monolithic and into n shards —
// and drives the same varied form-query workload through both, closed
// loop, at concurrency 1 and maxConc. The speedup it reports is only
// meaningful because the workload is cache-hostile: on a repetitive
// workload both engines serve from their memos and the comparison
// flattens to cache-hit latency.
func shardBench(cfg synth.Config, queries, n, maxConc int) (*shardSummary, error) {
	log.Printf("[shard] generating %d deals x ~%d docs...", cfg.Deals, cfg.NoiseDocsPerDeal)
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	mono, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return nil, err
	}
	cluster, err := eil.IngestSharded(corpus.Docs, n, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return nil, err
	}
	log.Printf("[shard] ingested %d docs monolithic and across %d shards", mono.Index.DocCount(), n)

	towers := mono.Taxonomy.TowerNames()
	user := access.User{ID: "bench"}
	gen := func(i int) core.FormQuery {
		tw := towers[i%len(towers)]
		w1 := shardBenchWords[i%len(shardBenchWords)]
		w2 := shardBenchWords[(i/7)%len(shardBenchWords)]
		switch i % 4 {
		case 0:
			return core.FormQuery{Tower: tw, AllWords: []string{w1}}
		case 1:
			return core.FormQuery{Tower: tw, AnyWords: []string{w1, w2}}
		case 2:
			return core.FormQuery{AnyWords: []string{w1, w2}}
		default:
			return core.FormQuery{Tower: tw, ExactPhrase: w1 + " " + w2}
		}
	}
	measure := func(s searcher, workers int) (shardSide, error) {
		wall, lats, refused, err := closedLoop(queries, workers, func(i int) (time.Duration, bool, error) {
			t0 := time.Now()
			_, serr := s.SearchCtx(context.Background(), user, gen(i))
			lat := time.Since(t0)
			if serr != nil {
				if core.IsUnavailable(serr) {
					return lat, true, nil
				}
				return lat, false, serr
			}
			return lat, false, nil
		})
		if err != nil {
			return shardSide{}, err
		}
		return shardSide{
			QPS:         float64(queries) / wall.Seconds(),
			P50Seconds:  latQuantile(lats, 0.50),
			P95Seconds:  latQuantile(lats, 0.95),
			P99Seconds:  latQuantile(lats, 0.99),
			Unavailable: refused,
		}, nil
	}

	ss := &shardSummary{Shards: n, Queries: queries}
	concs := []int{1}
	if maxConc > 1 {
		concs = append(concs, maxConc)
	}
	for _, c := range concs {
		m, err := measure(mono, c)
		if err != nil {
			return nil, err
		}
		sh, err := measure(cluster, c)
		if err != nil {
			return nil, err
		}
		pair := shardPair{Concurrency: c, Monolith: m, Sharded: sh}
		if m.QPS > 0 {
			pair.Speedup = sh.QPS / m.QPS
		}
		ss.Pairs = append(ss.Pairs, pair)
		log.Printf("[shard] c=%d: monolith %.0f q/s (p50 %.3gms p99 %.3gms) -> %d shards %.0f q/s (p50 %.3gms p99 %.3gms), %.2fx",
			c, m.QPS, m.P50Seconds*1000, m.P99Seconds*1000, n, sh.QPS, sh.P50Seconds*1000, sh.P99Seconds*1000, pair.Speedup)
	}
	return ss, nil
}

// telemetryBench measures what the judgment layer costs: the identical
// search workload with telemetry off, then with the runtime collector
// sampling (at an interval far more aggressive than production) and the
// SLO engine evaluating on every tick. Best-of-three walls per side, with
// a shared warmup, as in the chaos overhead measurement.
func telemetryBench(cfg synth.Config, queries int, interval time.Duration) (*telemetrySummary, error) {
	log.Printf("[telemetry] generating %d deals x ~%d docs...", cfg.Deals, cfg.NoiseDocsPerDeal)
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return nil, err
	}
	towers := sys.Taxonomy.TowerNames()
	user := access.User{ID: "bench"}
	phrases := []string{"data replication", "service desk", "disaster recovery", "asset management"}
	workload := func() error {
		ctx := context.Background()
		for i := 0; i < queries; i++ {
			var q core.FormQuery
			switch i % 3 {
			case 0:
				q = core.FormQuery{Tower: towers[i%len(towers)]}
			case 1:
				q = core.FormQuery{Tower: towers[i%len(towers)], ExactPhrase: phrases[i%len(phrases)]}
			default:
				q = core.FormQuery{AnyWords: []string{"replication", "outsourcing"}}
			}
			if _, err := sys.SearchCtx(ctx, user, q); err != nil {
				return err
			}
		}
		return nil
	}
	timed := func() (time.Duration, error) {
		t0 := time.Now()
		err := workload()
		return time.Since(t0), err
	}
	if err := workload(); err != nil { // warmup: caches serve both sides equally
		return nil, err
	}

	ts := &telemetrySummary{IntervalSeconds: interval.Seconds()}
	var plainWall, telWall time.Duration
	for pass := 0; pass < 3; pass++ {
		pw, err := timed()
		if err != nil {
			return nil, err
		}
		sloEng := slo.New(slo.Options{
			Registry: sys.Metrics,
			Default:  slo.Objective{Availability: 0.999, LatencyP99: 250 * time.Millisecond},
			Interval: interval,
		})
		col := runtimetel.New(runtimetel.Options{
			Interval:   interval,
			Registry:   sys.Metrics,
			AppSampler: sys.AppSampler(sloEng),
		})
		col.Start()
		tw, err := timed()
		col.Stop()
		if err != nil {
			return nil, err
		}
		if pass == 0 || pw < plainWall {
			plainWall = pw
		}
		if pass == 0 || tw < telWall {
			telWall = tw
		}
	}
	ts.PlainQPS = float64(queries) / plainWall.Seconds()
	ts.TelemetryQPS = float64(queries) / telWall.Seconds()
	ts.OverheadFraction = telWall.Seconds()/plainWall.Seconds() - 1
	log.Printf("[telemetry] overhead at %v sampling: %.2f%% (plain %.0f q/s, telemetry %.0f q/s)",
		interval, ts.OverheadFraction*100, ts.PlainQPS, ts.TelemetryQPS)
	return ts, nil
}

// durabilityBench measures the durability layer end to end: checkpointing
// the full ingested system into the generation store, loading it back,
// applying journaled update batches (fsync per batch), recovering from
// snapshot+journal, and a raw journal append/replay micro-benchmark.
func durabilityBench(cfg synth.Config) (runReport, *durabilitySummary, error) {
	var run runReport
	run.GOMAXPROCS = runtime.GOMAXPROCS(0)
	log.Printf("[durability] generating %d deals x ~%d docs...", cfg.Deals, cfg.NoiseDocsPerDeal)
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return run, nil, err
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return run, nil, err
	}
	run.Ingest.Docs = sys.Stats.Docs
	run.Ingest.Deals = cfg.Deals
	run.Ingest.Annotations = sys.Stats.Annotations
	run.Ingest.WallSeconds = sys.Stats.Wall.Seconds()
	run.Ingest.DocsPerSec = sys.Stats.DocsPerSec()

	dir, err := os.MkdirTemp("", "eilbench-durability-*")
	if err != nil {
		return run, nil, err
	}
	defer os.RemoveAll(dir)
	ds := &durabilitySummary{}

	// Snapshot save: one full checkpoint of the ingested system.
	t0 := time.Now()
	if _, err := sys.Checkpoint(dir); err != nil {
		return run, nil, err
	}
	ds.SnapshotSaveSeconds = time.Since(t0).Seconds()
	ds.SnapshotBytes = dirBytes(dir)
	log.Printf("[durability] snapshot save: %.3fs, %d bytes", ds.SnapshotSaveSeconds, ds.SnapshotBytes)

	// Snapshot load: cold reconstruction from the generation store.
	t0 = time.Now()
	loaded, err := eil.LoadSystem(dir, nil)
	if err != nil {
		return run, nil, err
	}
	ds.SnapshotLoadSeconds = time.Since(t0).Seconds()
	log.Printf("[durability] snapshot load: %.3fs (%d docs)", ds.SnapshotLoadSeconds, loaded.Index.DocCount())

	// Journaled updates: AddDocuments batches with the journal fsynced at
	// every batch — the acknowledged-update path a live server runs.
	if err := loaded.EnableWAL(dir, 1); err != nil {
		return run, nil, err
	}
	const batches = 25
	t0 = time.Now()
	for i := 0; i < batches; i++ {
		docs, err := benchDealDocs(fmt.Sprintf("DEAL BENCH %03d", i))
		if err != nil {
			return run, nil, err
		}
		if err := loaded.AddDocuments(docs); err != nil {
			return run, nil, err
		}
		ds.JournaledDocs += len(docs)
	}
	ds.JournalSeconds = time.Since(t0).Seconds()
	ds.JournaledBatches = batches
	ds.JournalBatchesPerSec = float64(batches) / ds.JournalSeconds
	if fi, err := os.Stat(filepath.Join(dir, durable.WALName)); err == nil {
		ds.WALBytes = fi.Size()
	}
	log.Printf("[durability] journaled %d batches (%d docs) in %.3fs (%.1f batches/s, %d journal bytes)",
		ds.JournaledBatches, ds.JournaledDocs, ds.JournalSeconds, ds.JournalBatchesPerSec, ds.WALBytes)

	// Crash recovery: reload from snapshot + journal replay, then verify the
	// journaled updates actually arrived.
	t0 = time.Now()
	recovered, err := eil.LoadSystem(dir, nil)
	if err != nil {
		return run, nil, err
	}
	ds.RecoverySeconds = time.Since(t0).Seconds()
	if got, want := recovered.Index.DocCount(), loaded.Index.DocCount(); got != want {
		return run, nil, fmt.Errorf("recovery lost state: %d docs, want %d", got, want)
	}
	log.Printf("[durability] recovery (snapshot + journal replay): %.3fs", ds.RecoverySeconds)

	// Raw journal micro-benchmark, away from the pipeline: append throughput
	// with per-record fsync vs batched fsync, and replay throughput.
	const rawRecords = 2000
	payload := bytes.Repeat([]byte("x"), 256)
	rawDir, err := os.MkdirTemp("", "eilbench-wal-*")
	if err != nil {
		return run, nil, err
	}
	defer os.RemoveAll(rawDir)
	appendRun := func(dir string, syncEvery int) (float64, error) {
		w, err := durable.CreateWAL(dir, 1, durable.WALOptions{SyncEvery: syncEvery})
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		for i := 0; i < rawRecords; i++ {
			if err := w.Append(1, payload); err != nil {
				return 0, err
			}
		}
		if err := w.Sync(); err != nil {
			return 0, err
		}
		if err := w.Close(); err != nil {
			return 0, err
		}
		return float64(rawRecords) / time.Since(t0).Seconds(), nil
	}
	syncedDir := filepath.Join(rawDir, "synced")
	if err := os.Mkdir(syncedDir, 0o755); err != nil {
		return run, nil, err
	}
	if ds.RawAppendSyncedPerSec, err = appendRun(syncedDir, 1); err != nil {
		return run, nil, err
	}
	batchedDir := filepath.Join(rawDir, "batched")
	if err := os.Mkdir(batchedDir, 0o755); err != nil {
		return run, nil, err
	}
	if ds.RawAppendBatchedPerSec, err = appendRun(batchedDir, 64); err != nil {
		return run, nil, err
	}
	t0 = time.Now()
	rep, err := durable.ReplayWAL(batchedDir, durable.WALOptions{})
	if err != nil {
		return run, nil, err
	}
	if len(rep.Records) != rawRecords {
		return run, nil, fmt.Errorf("raw replay: %d records, want %d", len(rep.Records), rawRecords)
	}
	ds.RawRecords = rawRecords
	ds.RawReplayPerSec = float64(rawRecords) / time.Since(t0).Seconds()
	log.Printf("[durability] raw journal: append %.0f rec/s fsync-per-record, %.0f rec/s batched; replay %.0f rec/s",
		ds.RawAppendSyncedPerSec, ds.RawAppendBatchedPerSec, ds.RawReplayPerSec)

	run.Metrics = sys.Metrics.Snapshots()
	return run, ds, nil
}

// benchDealDocs builds one small update batch (a four-file deal) for the
// journaled-update measurement.
func benchDealDocs(dealID string) ([]*docmodel.Document, error) {
	files := []struct{ name, content string }{
		{"overview.txt", "Deal Overview\nCustomer: Bench Corp\nIndustry: Retail\nTotal Contract Value: over 100M\nScope summary: Network Services.\n"},
		{"scope.deck", "# Services Scope Baseline\n- Network Services\n- Voice Services coverage\n"},
		{"team.grid", "GRID Deal Team Roster\nName | Role | Email | Phone\nBench Person | CSE | bench.person@example.com |\n"},
		{"tsa-1.grid", "GRID Network Services Service Details\nService Item | cross tower TSA | Notes\nNetwork Services item 1 | | pending\n"},
	}
	var docs []*docmodel.Document
	for _, f := range files {
		doc, err := docparse.Parse(dealID+"/"+f.name, f.content)
		if err != nil {
			return nil, err
		}
		doc.DealID = dealID
		docs = append(docs, doc)
	}
	return docs, nil
}

// dirBytes sums the sizes of all regular files under dir.
func dirBytes(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}

// printComparison loads a previous report and prints per-metric deltas
// between its primary run and this one's.
func printComparison(path string, cur report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("compare: parse %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "\ncomparison vs %s (baseline procs=%d, current procs=%d):\n",
		path, base.GOMAXPROCS, cur.GOMAXPROCS)
	row := func(name string, baseV, curV float64, higherBetter bool) {
		if baseV == 0 {
			fmt.Fprintf(os.Stderr, "  %-22s %12.4g -> %12.4g\n", name, baseV, curV)
			return
		}
		ratio := curV / baseV
		verdict := "slower"
		if (higherBetter && ratio >= 1) || (!higherBetter && ratio <= 1) {
			verdict = "faster"
		}
		fmt.Fprintf(os.Stderr, "  %-22s %12.4g -> %12.4g   %.2fx (%s)\n", name, baseV, curV, ratio, verdict)
	}
	row("ingest docs/sec", base.Ingest.DocsPerSec, cur.Ingest.DocsPerSec, true)
	row("search queries/sec", base.Search.QueriesPerSec, cur.Search.QueriesPerSec, true)
	row("search p50 (ms)", base.Search.P50Seconds*1000, cur.Search.P50Seconds*1000, false)
	row("search p95 (ms)", base.Search.P95Seconds*1000, cur.Search.P95Seconds*1000, false)
	row("search p99 (ms)", base.Search.P99Seconds*1000, cur.Search.P99Seconds*1000, false)
	for _, run := range cur.Runs {
		fmt.Fprintf(os.Stderr, "  [procs=%d run] ingest %.4g docs/sec, search %.4g q/s, p99 %.4gms\n",
			run.GOMAXPROCS, run.Ingest.DocsPerSec, run.Search.QueriesPerSec, run.Search.P99Seconds*1000)
	}
	if cur.Shard != nil {
		for _, p := range cur.Shard.Pairs {
			fmt.Fprintf(os.Stderr, "  [shards=%d c=%d] monolith %.4g q/s p99 %.4gms -> sharded %.4g q/s p99 %.4gms (%.2fx)\n",
				cur.Shard.Shards, p.Concurrency, p.Monolith.QPS, p.Monolith.P99Seconds*1000,
				p.Sharded.QPS, p.Sharded.P99Seconds*1000, p.Speedup)
		}
	}
	return nil
}
