// Command eilbench records an ingest+search throughput snapshot through the
// obs instrumentation: it generates a synthetic corpus, ingests it, runs a
// mixed form/keyword query workload, and writes a JSON report (summary plus
// the full metrics snapshot). The committed BENCH_baseline.json was produced
// by this tool; future performance PRs re-run it to show a trajectory.
//
// Usage:
//
//	eilbench -deals 23 -noise 610 -queries 500 -out BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/synth"
)

// report is the JSON document eilbench writes.
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Ingest struct {
		Docs        int     `json:"docs"`
		Deals       int     `json:"deals"`
		Annotations int     `json:"annotations"`
		WallSeconds float64 `json:"wall_seconds"`
		DocsPerSec  float64 `json:"docs_per_sec"`
	} `json:"ingest"`

	Search struct {
		Queries       int     `json:"queries"`
		FormQueries   int     `json:"form_queries"`
		KeywordHits   int     `json:"keyword_queries"`
		WallSeconds   float64 `json:"wall_seconds"`
		QueriesPerSec float64 `json:"queries_per_sec"`
		P50Seconds    float64 `json:"p50_seconds"`
		P95Seconds    float64 `json:"p95_seconds"`
		P99Seconds    float64 `json:"p99_seconds"`
	} `json:"search"`

	Metrics []obs.Snapshot `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("eilbench: ")
	var (
		deals   = flag.Int("deals", 23, "synthetic corpus size in deals (paper evaluation: 23)")
		noise   = flag.Int("noise", 610, "noise documents per deal (paper evaluation: ~610)")
		queries = flag.Int("queries", 500, "workload size (3:1 form-to-keyword mix)")
		out     = flag.String("out", "", "write the JSON report to this file (default: stdout)")
	)
	flag.Parse()

	cfg := synth.EvalConfig()
	cfg.Deals = *deals
	cfg.NoiseDocsPerDeal = *noise
	log.Printf("generating %d deals x ~%d docs...", cfg.Deals, cfg.NoiseDocsPerDeal)
	corpus, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ingested %d docs in %v (%.0f docs/sec)",
		sys.Stats.Docs, sys.Stats.Wall.Round(time.Millisecond), sys.Stats.DocsPerSec())

	// Mixed workload: cycle concept-scoped form queries (with and without
	// text predicates) and keyword-baseline queries over the taxonomy
	// vocabulary, so every search stage is exercised.
	towers := sys.Taxonomy.TowerNames()
	user := access.User{ID: "bench"}
	phrases := []string{"data replication", "service desk", "disaster recovery", "asset management"}
	searchWall := obs.StartTimer()
	var formN, keywordN int
	for i := 0; i < *queries; i++ {
		switch i % 4 {
		case 0:
			_, err = sys.Search(user, core.FormQuery{Tower: towers[i%len(towers)]})
		case 1:
			_, err = sys.Search(user, core.FormQuery{
				Tower:       towers[i%len(towers)],
				ExactPhrase: phrases[i%len(phrases)],
			})
		case 2:
			_, err = sys.Search(user, core.FormQuery{AnyWords: []string{"replication", "outsourcing"}})
		case 3:
			sys.KeywordSearch(fmt.Sprintf("%q", phrases[i%len(phrases)]), 20)
			keywordN++
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		formN++
	}
	searchElapsed := searchWall.Elapsed()

	var r report
	r.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Ingest.Docs = sys.Stats.Docs
	r.Ingest.Deals = cfg.Deals
	r.Ingest.Annotations = sys.Stats.Annotations
	r.Ingest.WallSeconds = sys.Stats.Wall.Seconds()
	r.Ingest.DocsPerSec = sys.Stats.DocsPerSec()
	r.Search.Queries = *queries
	r.Search.FormQueries = formN
	r.Search.KeywordHits = keywordN
	r.Search.WallSeconds = searchElapsed.Seconds()
	r.Search.QueriesPerSec = float64(*queries) / searchElapsed.Seconds()
	h := sys.Metrics.Histogram("search_seconds", nil)
	r.Search.P50Seconds = h.Quantile(0.50)
	r.Search.P95Seconds = h.Quantile(0.95)
	r.Search.P99Seconds = h.Quantile(0.99)
	r.Metrics = sys.Metrics.Snapshots()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	log.Printf("search: %d queries in %v (%.0f q/s, p50 %.3gms p95 %.3gms)",
		*queries, searchElapsed.Round(time.Millisecond), r.Search.QueriesPerSec,
		r.Search.P50Seconds*1000, r.Search.P95Seconds*1000)
	if *out != "" {
		log.Printf("wrote %s", *out)
	}
}
