package main

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// closedLoop with more workers than queries must not deadlock or double-run
// queries: each of the few queries runs exactly once and the surplus
// workers exit cleanly.
func TestClosedLoopWorkerStarvation(t *testing.T) {
	const queries = 3 // below the ramp threshold too (ramp = 0)
	var mu sync.Mutex
	ran := map[int]int{}
	wall, lats, refused, err := closedLoop(queries, 16, func(i int) (time.Duration, bool, error) {
		mu.Lock()
		ran[i]++
		mu.Unlock()
		return time.Millisecond, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Error("wall not measured")
	}
	if refused != 0 {
		t.Errorf("refused = %d, want 0", refused)
	}
	if len(lats) != queries {
		t.Errorf("recorded %d latencies, want %d", len(lats), queries)
	}
	for i := 0; i < queries; i++ {
		if ran[i] != 1 {
			t.Errorf("query %d ran %d times", i, ran[i])
		}
	}
}

// Refused queries are counted, excluded from nothing else: their latencies
// still land in the sample (the caller decides what a refusal's latency
// means by returning it negative or not).
func TestClosedLoopRefusedAccounting(t *testing.T) {
	const queries = 40
	wall, lats, refused, err := closedLoop(queries, 4, func(i int) (time.Duration, bool, error) {
		if i%5 == 0 {
			return -1, true, nil // refused, excluded from the percentile set
		}
		return time.Millisecond, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Error("wall not measured")
	}
	// The untimed ramp runs queries/10 = 4 calls first (i = 0..3, one of
	// them refused), then the timed loop re-runs all 40.
	if refused != queries/5 {
		t.Errorf("refused = %d, want %d", refused, queries/5)
	}
	if want := queries - queries/5; len(lats) != want {
		t.Errorf("recorded %d latencies, want %d", len(lats), want)
	}
}

// A hard error from do mid-drain must propagate to the caller — not hang
// the other workers, not be swallowed by the refusal path.
func TestClosedLoopErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	const queries = 200
	var calls atomic.Int64
	_, _, _, err := closedLoop(queries, 4, func(i int) (time.Duration, bool, error) {
		n := calls.Add(1)
		if n == 60 { // past the 20-call ramp, well inside the drain
			return 0, false, boom
		}
		return time.Microsecond, false, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failing worker stops; the others drain the remaining queries, so
	// every query index was still claimed exactly once overall.
	if got := calls.Load(); got < 60 || got > queries+queries/10 {
		t.Errorf("calls = %d, want between 60 and %d", got, queries+queries/10)
	}
}

// An error during the untimed ramp aborts before any workers start.
func TestClosedLoopRampError(t *testing.T) {
	boom := errors.New("ramp boom")
	_, _, _, err := closedLoop(500, 8, func(i int) (time.Duration, bool, error) {
		return 0, false, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ramp boom", err)
	}
}
