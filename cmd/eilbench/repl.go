package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/synth"
)

// replSummary is the -repl report block: the read-scaling A/B of a lone
// primary against the same primary plus N WAL-shipped read replicas
// behind the health-checked router.
//
// Two pairs are reported. The cpu_bound pair drives the raw in-process
// search workload through both sides; on a host with fewer CPUs than
// nodes it measures routing overhead, not parallel speedup — replicas in
// one address space share the same cores (the DESIGN §12 caveat, carried
// in the note field alongside num_cpu at the report root). The
// latency_model pair models the deployment the router exists for:
// every node serves reads with a fixed service latency and a bounded
// per-node in-flight window (a remote replica's network + admission
// budget), so added replicas are added capacity and the ratio reflects
// read fan-out rather than core count.
type replSummary struct {
	Replicas    int     `json:"replicas"`
	Queries     int     `json:"queries"`
	Workers     int     `json:"workers"`
	SyncSeconds float64 `json:"sync_seconds"`

	CPUBound     replPair `json:"cpu_bound"`
	LatencyModel replPair `json:"latency_model"`

	// ServiceLatencyMS and PerNodeInFlight parameterize the latency model:
	// each simulated node admits at most PerNodeInFlight reads at once and
	// spends ServiceLatencyMS of wall time per read before searching.
	ServiceLatencyMS float64 `json:"service_latency_ms"`
	PerNodeInFlight  int     `json:"per_node_in_flight"`

	Note string `json:"note"`
}

type replPair struct {
	PrimaryOnly replRun `json:"primary_only"`
	Routed      replRun `json:"routed"`
	// QPSRatio is routed QPS over primary-only QPS at the same offered
	// load; the acceptance bar for 2 replicas is >= 1.8x in the latency
	// model (and parity, not regression, in the cpu-bound pair).
	QPSRatio float64 `json:"qps_ratio"`
}

type replRun struct {
	QPS         float64 `json:"qps"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	Unavailable int     `json:"unavailable"`
}

// slowNode models a remote replica: a fixed per-read service latency
// behind a bounded admission gate. Reads beyond the gate queue, exactly
// as they would on a node's connection pool.
type slowNode struct {
	router.Node
	gate chan struct{}
	lat  time.Duration
}

func (n *slowNode) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	n.gate <- struct{}{}
	defer func() { <-n.gate }()
	time.Sleep(n.lat)
	return n.Node.SearchCtx(ctx, user, q)
}

// replBench ingests one corpus, ships it to n in-process followers over
// real loopback TCP, verifies the replicas answer identically, and then
// measures primary-only versus routed read throughput at equal offered
// load.
func replBench(cfg synth.Config, queries, n int) (*replSummary, error) {
	log.Printf("[repl] generating %d deals x ~%d docs...", cfg.Deals, cfg.NoiseDocsPerDeal)
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return nil, err
	}
	walDir, err := os.MkdirTemp("", "eilbench-repl-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	if err := sys.EnableWAL(walDir, 64); err != nil {
		return nil, err
	}
	defer sys.CloseWAL()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	shipper, err := sys.ServeReplication(lis, nil)
	if err != nil {
		return nil, err
	}
	defer shipper.Close()

	syncStart := time.Now()
	followers := make([]*eil.Follower, n)
	for i := range followers {
		dir, err := os.MkdirTemp("", "eilbench-repl-replica-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		f, err := eil.StartFollower(eil.FollowerOptions{
			Dir:  dir,
			Addr: lis.Addr().String(),
			Name: fmt.Sprintf("replica-%d", i+1),
		})
		if err != nil {
			return nil, err
		}
		defer f.Close()
		followers[i] = f
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, f := range followers {
		if err := f.WaitSynced(ctx, 0); err != nil {
			return nil, fmt.Errorf("replica %s sync: %w", f.Name(), err)
		}
	}
	syncSecs := time.Since(syncStart).Seconds()
	log.Printf("[repl] %d replicas snapshot-synced over loopback in %.2fs", n, syncSecs)

	// Differential spot-check before measuring: a replica that answers
	// differently would make the throughput numbers meaningless.
	towers := sys.Taxonomy.TowerNames()
	user := access.User{ID: "bench"}
	gen := func(i int) core.FormQuery {
		tw := towers[i%len(towers)]
		w1 := shardBenchWords[i%len(shardBenchWords)]
		w2 := shardBenchWords[(i/7)%len(shardBenchWords)]
		switch i % 4 {
		case 0:
			return core.FormQuery{Tower: tw, AllWords: []string{w1}}
		case 1:
			return core.FormQuery{Tower: tw, AnyWords: []string{w1, w2}}
		case 2:
			return core.FormQuery{AnyWords: []string{w1, w2}}
		default:
			return core.FormQuery{Tower: tw, ExactPhrase: w1 + " " + w2}
		}
	}
	for i := 0; i < 8; i++ {
		q := gen(i)
		pr, err := sys.SearchCtx(ctx, user, q)
		if err != nil {
			return nil, err
		}
		for _, f := range followers {
			rr, err := f.SearchCtx(ctx, user, q)
			if err != nil {
				return nil, fmt.Errorf("replica %s: %w", f.Name(), err)
			}
			if len(rr.Activities) != len(pr.Activities) {
				return nil, fmt.Errorf("replica %s diverged on %+v: %d deals vs %d", f.Name(), q, len(rr.Activities), len(pr.Activities))
			}
			for j := range pr.Activities {
				if rr.Activities[j].DealID != pr.Activities[j].DealID || rr.Activities[j].Score != pr.Activities[j].Score {
					return nil, fmt.Errorf("replica %s diverged on %+v at rank %d", f.Name(), q, j)
				}
			}
		}
	}

	// Warm every node with the full query set before timing anything: the
	// primary's caches warm during ingest and its own measured run, so
	// cold replicas would charge cache misses to the routed side only.
	log.Printf("[repl] warming per-node caches (full query set on all %d nodes)...", n+1)
	for i := 0; i < queries; i++ {
		q := gen(i)
		if _, err := sys.SearchCtx(ctx, user, q); err != nil {
			return nil, err
		}
		for _, f := range followers {
			if _, err := f.SearchCtx(ctx, user, q); err != nil {
				return nil, fmt.Errorf("warmup on %s: %w", f.Name(), err)
			}
		}
	}

	measure := func(s searcher, workers int) (replRun, error) {
		wall, lats, refused, err := closedLoop(queries, workers, func(i int) (time.Duration, bool, error) {
			t0 := time.Now()
			_, serr := s.SearchCtx(context.Background(), user, gen(i))
			lat := time.Since(t0)
			if serr != nil {
				if core.IsUnavailable(serr) {
					return lat, true, nil
				}
				return lat, false, serr
			}
			return lat, false, nil
		})
		if err != nil {
			return replRun{}, err
		}
		return replRun{
			QPS:         float64(queries) / wall.Seconds(),
			P50Seconds:  latQuantile(lats, 0.50),
			P99Seconds:  latQuantile(lats, 0.99),
			Unavailable: refused,
		}, nil
	}
	pairOf := func(base, routed replRun) replPair {
		p := replPair{PrimaryOnly: base, Routed: routed}
		if base.QPS > 0 {
			p.QPSRatio = routed.QPS / base.QPS
		}
		return p
	}

	const perNodeInFlight = 2
	const serviceLat = 20 * time.Millisecond
	workers := (n + 1) * perNodeInFlight

	rs := &replSummary{
		Replicas:         n,
		Queries:          queries,
		Workers:          workers,
		SyncSeconds:      syncSecs,
		ServiceLatencyMS: float64(serviceLat) / float64(time.Millisecond),
		PerNodeInFlight:  perNodeInFlight,
		Note: fmt.Sprintf("cpu_bound pair shares %d CPU(s) across all in-process nodes and measures routing "+
			"overhead, not parallel speedup (DESIGN §12); latency_model pair bounds each node to %d in-flight "+
			"reads at %.1fms service latency, modeling remote replicas where fan-out is added capacity",
			runtime.NumCPU(), perNodeInFlight, float64(serviceLat)/float64(time.Millisecond)),
	}

	replicaNodes := make([]router.Node, n)
	for i, f := range followers {
		replicaNodes[i] = f
	}

	// CPU-bound pair: raw engines, equal offered load on both sides.
	cpuBase, err := measure(sys, workers)
	if err != nil {
		return nil, err
	}
	cpuRouted, err := measure(router.New(sys, sys.RouterNode("primary"), replicaNodes, router.Options{PrimaryReads: true}), workers)
	if err != nil {
		return nil, err
	}
	rs.CPUBound = pairOf(cpuBase, cpuRouted)
	log.Printf("[repl] cpu-bound c=%d: primary %.0f q/s (p99 %.3gms) -> routed %.0f q/s (p99 %.3gms), %.2fx",
		workers, cpuBase.QPS, cpuBase.P99Seconds*1000, cpuRouted.QPS, cpuRouted.P99Seconds*1000, rs.CPUBound.QPSRatio)

	// Latency-model pair: every node (primary included) serves through the
	// same admission gate and service latency, so the only difference
	// between the sides is how many nodes absorb the same offered load.
	slow := func(node router.Node) *slowNode {
		return &slowNode{Node: node, gate: make(chan struct{}, perNodeInFlight), lat: serviceLat}
	}
	slowReplicas := make([]router.Node, n)
	for i, f := range followers {
		slowReplicas[i] = slow(f)
	}
	latBase, err := measure(slow(sys.RouterNode("primary")), workers)
	if err != nil {
		return nil, err
	}
	latRouted, err := measure(router.New(sys, slow(sys.RouterNode("primary")), slowReplicas, router.Options{PrimaryReads: true}), workers)
	if err != nil {
		return nil, err
	}
	rs.LatencyModel = pairOf(latBase, latRouted)
	log.Printf("[repl] latency-model c=%d: primary %.0f q/s (p99 %.3gms) -> routed %.0f q/s (p99 %.3gms), %.2fx",
		workers, latBase.QPS, latBase.P99Seconds*1000, latRouted.QPS, latRouted.P99Seconds*1000, rs.LatencyModel.QPSRatio)
	return rs, nil
}
