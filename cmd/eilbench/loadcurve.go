package main

// loadcurve.go is the -loadcurve mode: an open-loop (arrival-rate driven)
// sweep over a target-QPS ramp against the monolithic engine and optionally
// an N-shard cluster, at one or more GOMAXPROCS settings. Unlike the
// closed-loop modes — where offered load collapses to whatever the engine
// can absorb and latency looks flat right up to the cliff — the open loop
// keeps offering arrivals on schedule, so the emitted throughput-vs-latency
// curve shows the knee: achieved QPS saturating while p99 climbs.
//
// The corpus is generated streamingly (synth.NewStream feeding IngestFrom /
// IngestShardedFrom), so production-scale sweeps (-deals 1000 -noise 480,
// ~500k docs) never hold the corpus in memory. With -prof-dir set, every
// phase runs under a CPU profile and leaves a heap capture in the profile
// ring, so a curve point can be answered with "what was it doing there".

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/loadgen"
	"repro/internal/prof"
	"repro/internal/siapi"
	"repro/internal/synth"
)

// loadCurveFlags is the -loadcurve flag group.
type loadCurveFlags struct {
	enabled  *bool
	qps      *string
	phase    *time.Duration
	inflight *int
	mix      *string
	profDir  *string
}

func registerLoadCurveFlags() *loadCurveFlags {
	return &loadCurveFlags{
		enabled:  flag.Bool("loadcurve", false, "run the open-loop load sweep: Poisson arrivals at each -lc-qps target, emitting throughput-vs-latency curves per engine and GOMAXPROCS (adds the 'load_curve' report block)"),
		qps:      flag.String("lc-qps", "25,50,100,200,400,800", "comma-separated target arrival rates for the -loadcurve ramp"),
		phase:    flag.Duration("lc-phase", 5*time.Second, "duration of each -loadcurve phase"),
		inflight: flag.Int("lc-inflight", 256, "open-loop in-flight cap; arrivals beyond it are dropped (counted, not queued)"),
		mix:      flag.String("lc-mix", "search=70,keyword=20,ingest=10,compact=0", "operation mix weights for the -loadcurve workload"),
		profDir:  flag.String("prof-dir", "", "profile ring directory; -loadcurve captures a CPU profile per phase and a heap profile after it"),
	}
}

// loadCurveSummary is the -loadcurve report block: the sweep parameters and
// one curve per (engine, GOMAXPROCS) series.
type loadCurveSummary struct {
	TargetsQPS   []float64       `json:"targets_qps"`
	PhaseSeconds float64         `json:"phase_seconds"`
	Mix          string          `json:"mix"`
	MaxInFlight  int             `json:"max_in_flight"`
	Shards       int             `json:"shards,omitempty"`
	Curves       []loadgen.Curve `json:"curves"`
}

// loadTarget is the operation surface the generator drives; both the
// monolithic System and the sharded Cluster satisfy it.
type loadTarget interface {
	SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error)
	KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit
	AddDocuments(docs []*docmodel.Document) error
	Compact() error
}

// parseQPSList turns "25,50,100" into [25, 50, 100].
func parseQPSList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -lc-qps value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("-lc-qps is empty")
	}
	return out, nil
}

// parseMix turns "search=70,keyword=20,ingest=10,compact=0" into a
// loadgen.Mix. Omitted operations get weight 0.
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if strings.TrimSpace(s) == "" {
		return loadgen.DefaultMix(), nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad -lc-mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -lc-mix weight %q", part)
		}
		switch strings.TrimSpace(name) {
		case "search":
			m.Search = w
		case "keyword":
			m.Keyword = w
		case "ingest":
			m.Ingest = w
		case "compact":
			m.Compact = w
		default:
			return m, fmt.Errorf("unknown -lc-mix op %q", name)
		}
	}
	if m.Search+m.Keyword+m.Ingest+m.Compact == 0 {
		return m, errors.New("-lc-mix has zero total weight")
	}
	return m, nil
}

// lcFormQuery varies form queries across towers and a word cross-product so
// per-engine caches see a realistically low hit rate (same reasoning as the
// shard A/B workload).
func lcFormQuery(req loadgen.Request, towers []string) core.FormQuery {
	tw := towers[req.Deal%len(towers)]
	w1 := shardBenchWords[req.Query%len(shardBenchWords)]
	w2 := shardBenchWords[(req.Query/7)%len(shardBenchWords)]
	switch req.Query % 4 {
	case 0:
		return core.FormQuery{Tower: tw, AllWords: []string{w1}}
	case 1:
		return core.FormQuery{Tower: tw, AnyWords: []string{w1, w2}}
	case 2:
		return core.FormQuery{AnyWords: []string{w1, w2}}
	default:
		return core.FormQuery{Tower: tw, ExactPhrase: w1 + " " + w2}
	}
}

// lcDo adapts a loadTarget to the generator's Do signature. The ingest op
// adds a fresh small deal each call (unique IDs, so the dedup pre-pass does
// not swallow the write); compact runs the engine's tombstone sweep.
func lcDo(target loadTarget, towers []string, series string) loadgen.Do {
	user := access.User{ID: "loadgen"}
	var ingestSeq atomic.Uint64
	return func(ctx context.Context, req loadgen.Request) (bool, error) {
		switch req.Op {
		case loadgen.OpSearch:
			_, err := target.SearchCtx(ctx, user, lcFormQuery(req, towers))
			if err != nil {
				if core.IsUnavailable(err) {
					return true, nil
				}
				return false, err
			}
			return false, nil
		case loadgen.OpKeyword:
			target.KeywordSearchCtx(ctx, shardBenchWords[req.Query%len(shardBenchWords)], 20)
			return false, nil
		case loadgen.OpIngest:
			docs, err := benchDealDocs(fmt.Sprintf("DEAL LOAD %s %06d", series, ingestSeq.Add(1)))
			if err != nil {
				return false, err
			}
			return false, target.AddDocuments(docs)
		case loadgen.OpCompact:
			return false, target.Compact()
		}
		return false, fmt.Errorf("loadcurve: unknown op %v", req.Op)
	}
}

// loadCurveBench ingests the corpus streamingly (monolith, plus an N-shard
// cluster when shards > 1) and sweeps the open-loop ramp once per engine
// per GOMAXPROCS value. It errors if the whole sweep completes zero
// arrivals — a curve of all-zero points means the harness, not the engine,
// is broken, and must not be committed as an artifact.
func loadCurveBench(cfg synth.Config, lcf *loadCurveFlags, shards int, procList []int) (runReport, *loadCurveSummary, error) {
	var run runReport
	run.GOMAXPROCS = runtime.GOMAXPROCS(0)

	targets, err := parseQPSList(*lcf.qps)
	if err != nil {
		return run, nil, err
	}
	mix, err := parseMix(*lcf.mix)
	if err != nil {
		return run, nil, err
	}

	log.Printf("[loadcurve] streaming-generating and ingesting %d deals x ~%d docs...", cfg.Deals, cfg.NoiseDocsPerDeal)
	stream := synth.NewStream(cfg)
	sys, err := eil.IngestFrom(stream, eil.Options{Directory: stream.Directory()})
	if err != nil {
		return run, nil, err
	}
	run.Ingest.Docs = sys.Stats.Docs
	run.Ingest.Deals = cfg.Deals
	run.Ingest.Annotations = sys.Stats.Annotations
	run.Ingest.WallSeconds = sys.Stats.Wall.Seconds()
	run.Ingest.DocsPerSec = sys.Stats.DocsPerSec()
	log.Printf("[loadcurve] monolith: %d docs in %v (%.0f docs/sec)",
		sys.Stats.Docs, sys.Stats.Wall.Round(time.Millisecond), sys.Stats.DocsPerSec())

	engines := []struct {
		label  string
		target loadTarget
	}{{"monolith", sys}}
	if shards > 1 {
		cstream := synth.NewStream(cfg)
		cluster, err := eil.IngestShardedFrom(cstream, shards, eil.Options{Directory: cstream.Directory()})
		if err != nil {
			return run, nil, err
		}
		log.Printf("[loadcurve] ingested the same corpus across %d shards", shards)
		engines = append(engines, struct {
			label  string
			target loadTarget
		}{fmt.Sprintf("shards=%d", shards), cluster})
	}

	var profiler *prof.Profiler
	if *lcf.profDir != "" {
		ring, err := prof.OpenRing(*lcf.profDir, 0, 0)
		if err != nil {
			return run, nil, err
		}
		profiler = prof.New(prof.Options{Ring: ring, Logf: log.Printf})
		log.Printf("[loadcurve] per-phase profiles -> %s", ring.Dir())
	}

	phases := loadgen.Ramp(targets, *lcf.phase)
	towers := sys.Taxonomy.TowerNames()
	lc := &loadCurveSummary{
		TargetsQPS:   targets,
		PhaseSeconds: lcf.phase.Seconds(),
		Mix:          *lcf.mix,
		MaxInFlight:  *lcf.inflight,
	}
	if shards > 1 {
		lc.Shards = shards
	}

	var totalCompleted uint64
	for _, eng := range engines {
		// Warm each engine once before its sweep (first-touch index pages,
		// stats memos, snippet caches): without this the engine's first
		// series absorbs every cold-cache miss and is not comparable to the
		// later ones. Search/keyword only — no mutations before measuring.
		wgen := loadgen.New(loadgen.Options{Seed: 7, Mix: loadgen.Mix{Search: 3, Keyword: 1}, Deals: cfg.Deals})
		wres := wgen.Run(context.Background(), loadgen.Phase{Name: "warmup", Requests: 300, Workers: 2},
			lcDo(eng.target, towers, "warmup"))
		if wres.Err != nil {
			return run, nil, fmt.Errorf("loadcurve warmup %s: %w", eng.label, wres.Err)
		}
		log.Printf("[loadcurve] %s warmup: %d requests in %v", eng.label, wres.Completed, wres.Wall.Round(time.Millisecond))
		for _, p := range procList {
			prev := runtime.GOMAXPROCS(p)
			label := fmt.Sprintf("%s procs=%d", eng.label, p)
			do := lcDo(eng.target, towers, label)
			gen := loadgen.New(loadgen.Options{
				Seed:        8,
				Mix:         mix,
				Deals:       cfg.Deals,
				MaxInFlight: *lcf.inflight,
			})
			var results []loadgen.Result
			for _, ph := range phases {
				runPhase := func() {
					results = append(results, gen.Run(context.Background(), ph, do))
				}
				if profiler != nil {
					reason := strings.NewReplacer(" ", "-", "=", "").Replace(label) + "-" + ph.Name
					if _, perr := profiler.ProfilePhase(reason, runPhase); perr != nil && !errors.Is(perr, prof.ErrCPUBusy) {
						log.Printf("[loadcurve] profile %s: %v", reason, perr)
					}
				} else {
					runPhase()
				}
				res := results[len(results)-1]
				if res.Err != nil {
					runtime.GOMAXPROCS(prev)
					return run, nil, fmt.Errorf("loadcurve %s %s: %w", label, ph.Name, res.Err)
				}
				totalCompleted += res.Completed
				log.Printf("[loadcurve] %s %s: offered %.0f/s achieved %.0f/s (completed %d, dropped %d, refused %d), p50 %.3gms p99 %.3gms",
					label, ph.Name, res.OfferedQPS(), res.AchievedQPS(), res.Completed, res.Dropped, res.Refused,
					res.Latency.Quantile(0.50)*1000, res.Latency.Quantile(0.99)*1000)
			}
			runtime.GOMAXPROCS(prev)
			lc.Curves = append(lc.Curves, loadgen.Curve{Label: label, Points: loadgen.Points(results)})
		}
	}
	if totalCompleted == 0 {
		return run, nil, errors.New("loadcurve: sweep completed zero arrivals — harness or engine is broken, refusing to emit a curve")
	}
	run.Metrics = sys.Metrics.Snapshots()
	return run, lc, nil
}
