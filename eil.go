// Package eil is the public API of the EIL (Enterprise Information
// Leverage) reproduction: business-activity driven enterprise search, after
// "Improving Information Access for a Community of Practice Using Business
// Process as Context" (IBM Research, ICDE 2008).
//
// The typical flow is: obtain documents (crawl a repository tree or generate
// the synthetic corpus), Ingest them — which runs the offline half of the
// architecture (annotators, collection processing, index and synopsis
// population) — and then Search the resulting System with form-based
// queries, or run KeywordSearch for the search-box baseline the paper
// compares against.
//
//	corpus, _ := synth.Generate(synth.EvalConfig())   // or crawler.NewFSReader
//	sys, _ := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
//	res, _ := sys.Search(user, core.FormQuery{Tower: "End User Services"})
package eil

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/analysis"
	"repro/internal/annotators"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/dedupe"
	"repro/internal/directory"
	"repro/internal/docmodel"
	"repro/internal/durable"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/relstore"
	"repro/internal/repl"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
	"repro/internal/trace"
)

// Options configures ingestion. The zero value is the standard system; the
// ablation switches degrade specific design choices so their contribution
// can be measured.
type Options struct {
	// Workers bounds annotator parallelism (0 = GOMAXPROCS).
	Workers int
	// Directory is the personnel service used to validate and enrich
	// contacts; nil disables enrichment (the step-13 ablation).
	Directory *directory.Directory
	// Taxonomy overrides the default services taxonomy.
	Taxonomy *taxonomy.Taxonomy
	// MinScopeWeight overrides the scope CPE threshold (0 = default 2.0).
	MinScopeWeight float64
	// BlobParsing strips document structure before analysis — "blindly
	// applying patterns interpreting the entire data as a blob of text"
	// (the §3.3 custom-parsing ablation).
	BlobParsing bool
	// DisableScoping makes online searches run their SIAPI query unscoped
	// (the Figure 1 step-8 ablation).
	DisableScoping bool
	// Dedup drops near-duplicate documents (within each activity) before
	// analysis — the §3.4 "removal ... of duplicate/redundant data" CPE,
	// run as a pre-pass because duplicate detection is purely textual.
	Dedup bool
	// DedupThreshold overrides the Jaccard similarity cut (0 = 0.85).
	DedupThreshold float64
	// EntityContacts swaps the convention-driven social networking
	// annotator for the flat-text entity-and-co-occurrence extractor the
	// paper describes as the alternative in §3.2.1 (and predicts is
	// worse); the entity ablation measures the difference.
	EntityContacts bool
	// Access supplies the access controller; nil grants everyone full
	// access (offline evaluation mode).
	Access *access.Controller
	// Metrics is the registry ingest and search telemetry is recorded into;
	// nil creates a fresh registry (exposed as System.Metrics). Supply one
	// to share a registry across systems or with other subsystems.
	Metrics *obs.Registry
	// Tracer, when set, samples per-document traces during ingest and is
	// exposed as System.Tracer for request tracing and the debug surfaces;
	// nil disables tracing (every trace call is a no-op).
	Tracer *trace.Tracer
}

// System is an ingested EIL instance ready to answer queries.
type System struct {
	Index     *index.Index
	SIAPI     *siapi.Engine
	Synopses  *synopsis.Store
	Taxonomy  *taxonomy.Taxonomy
	Access    *access.Controller
	Engine    *core.Engine
	Directory *directory.Directory
	// Stats summarizes the offline run.
	Stats analysis.Stats
	// QueryLog, when set, records every search and its outcome (the
	// telemetry behind the paper's "additional evaluation" improvement
	// loop).
	QueryLog *qlog.Log
	// Metrics holds the system's counters, gauges, and latency histograms:
	// ingest_* from the offline pipeline, search_* from the online path,
	// and (when served through internal/web) http_* from the HTTP layer.
	Metrics *obs.Registry
	// Tracer retains recent and slowest request/document traces; nil when
	// tracing is off. internal/web serves it at /debug/traces.
	Tracer *trace.Tracer
	// Duplicates lists the redundant documents the dedup pre-pass dropped
	// (empty unless Options.Dedup was set).
	Duplicates []string
	// SnapshotKeep is how many committed snapshot generations Save/Checkpoint
	// retain for corruption fallback (0 = durable.DefaultKeep).
	SnapshotKeep int
	// WALFS overrides the filesystem the write-ahead journal is opened
	// through (nil = the real one). Tests route it through durable.FaultFS
	// to fail the journal on demand; the health layer's WAL probe then
	// observes the failure without touching real disks.
	WALFS durable.FS

	// Retained offline-pipeline state for incremental updates. LoadSystem
	// rebuilds it from the persisted pipeline snapshot, so restored systems
	// update exactly like live ones.
	flow    analysis.Annotator
	builder *annotators.Builder
	writer  *crawler.IndexWriter

	// upMu serializes mutations (AddDocuments, RemoveDeal, Compact,
	// Checkpoint, EnableWAL). Searches do not take it: they read the live
	// engine through the sia atomic pointer, so Compact's swap never races
	// them.
	upMu sync.Mutex
	sia  atomic.Pointer[siapi.Engine]

	// Durability state: the last committed snapshot generation and, when
	// EnableWAL has been called, the open journal and its directory.
	gen      uint64
	wal      *durable.WAL
	walDir   string
	lastCkpt time.Time

	// Replication state. seq is the global record counter — how many
	// journal records this state's history folds in since its lineage
	// began — and is the position coordinate followers, the router, and
	// lag math all use. ckptSeq is seq at the last committed checkpoint
	// (what the replpos component records). upstreamGen, on a follower,
	// names the primary generation the state derives from (0 on a
	// primary). replLog is the primary's in-memory ship buffer, live
	// once ServeReplication has been called; journalLocked tees every
	// record into it.
	seq         atomic.Uint64
	ckptSeq     uint64
	upstreamGen atomic.Uint64
	replLog     *repl.Log

	// Fencing state. fenceEpoch is the failover term this state last
	// committed under (0 = never promoted). fencedBy, when nonzero, names
	// the newer epoch that fenced this node: every mutation is refused
	// with failover.FencedError until an operator (or the supervisor)
	// re-syncs it as a follower. prevEpoch/sealSeq record the previous
	// term and where its history was sealed at promotion — the shipper
	// uses them to decide whether a stale peer's position is a safe
	// prefix (tail-resume) or divergent (forced re-sync).
	fenceEpoch atomic.Uint64
	fencedBy   atomic.Uint64
	prevEpoch  uint64
	sealSeq    uint64
}

// siapi returns the live keyword engine. Searches go through this (not the
// exported SIAPI field) so Compact can swap backends under concurrent load.
func (s *System) siapi() *siapi.Engine {
	if e := s.sia.Load(); e != nil {
		return e
	}
	return s.SIAPI
}

// LiveSIAPI returns the live (compaction-swappable) keyword engine.
func (s *System) LiveSIAPI() *siapi.Engine { return s.siapi() }

// Registry returns the metrics registry (the web layer's Backend surface).
func (s *System) Registry() *obs.Registry { return s.Metrics }

// RequestTracer returns the request tracer, nil when tracing is off.
func (s *System) RequestTracer() *trace.Tracer { return s.Tracer }

// Log returns the query log, nil when logging is off.
func (s *System) Log() *qlog.Log { return s.QueryLog }

// CoreEngine returns the search engine (the dashboard's breaker view).
func (s *System) CoreEngine() *core.Engine { return s.Engine }

// Ingest runs the offline pipeline (Data Acquisition already done by the
// caller: docs are parsed) over the documents: document-level annotators in
// parallel, then the collection processing engines, populating the semantic
// index and the synopsis store.
func Ingest(docs []*docmodel.Document, opts Options) (*System, error) {
	return IngestFrom(&analysis.SliceReader{Docs: docs}, opts)
}

// IngestFrom is Ingest reading from any CollectionReader (for example
// crawler.NewFSReader over a repository tree).
func IngestFrom(reader analysis.CollectionReader, opts Options) (*System, error) {
	tax := opts.Taxonomy
	if tax == nil {
		tax = taxonomy.Default()
	}
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		return nil, fmt.Errorf("eil: %w", err)
	}
	ix := index.New(textproc.DefaultAnalyzer)

	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}

	builder := annotators.NewBuilder(store, opts.Directory)
	if opts.MinScopeWeight > 0 {
		builder.MinScopeWeight = opts.MinScopeWeight
	}
	writer := &crawler.IndexWriter{Ix: ix, Workers: opts.Workers, Metrics: metrics, Tracer: opts.Tracer}

	if opts.BlobParsing {
		reader = &blobReader{inner: reader}
	}
	var duplicates []string
	if opts.Dedup {
		var err error
		reader, duplicates, err = dedupReader(reader, opts.DedupThreshold)
		if err != nil {
			return nil, fmt.Errorf("eil: dedup: %w", err)
		}
	}
	pipe := &analysis.Pipeline{
		Reader:    reader,
		Annotator: annotators.NewEILFlow(tax),
		Consumers: []analysis.Consumer{writer, builder},
		Workers:   opts.Workers,
		Metrics:   metrics,
		Tracer:    opts.Tracer,
	}
	if opts.BlobParsing {
		// The blob flow also degrades the social annotator.
		pipe.Annotator = blobFlow(tax)
	}
	if opts.EntityContacts {
		pipe.Annotator = entityFlow(tax)
	}
	stats, err := pipe.Run()
	if err != nil {
		return nil, fmt.Errorf("eil: ingest: %w", err)
	}

	sia := siapi.NewEngine(ix)
	sia.SetMetrics(metrics)
	sys := &System{
		Index:      ix,
		SIAPI:      sia,
		Synopses:   store,
		Taxonomy:   tax,
		Access:     opts.Access,
		Directory:  opts.Directory,
		Stats:      stats,
		Duplicates: duplicates,
		Metrics:    metrics,
		Tracer:     opts.Tracer,
		flow:       pipe.Annotator,
		builder:    builder,
		writer:     writer,
	}
	sys.sia.Store(sia)
	sys.Engine = &core.Engine{
		Synopses:       store,
		Docs:           sys.SIAPI,
		Access:         opts.Access,
		Tax:            tax,
		DisableScoping: opts.DisableScoping,
		Metrics:        metrics,
	}
	return sys, nil
}

// dedupReader materializes the document stream, drops near-duplicates
// within each activity, and returns a reader over the survivors plus the
// dropped paths.
func dedupReader(reader analysis.CollectionReader, threshold float64) (analysis.CollectionReader, []string, error) {
	var docs []*docmodel.Document
	for {
		d, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		docs = append(docs, d)
	}
	det := dedupe.New()
	if threshold > 0 {
		det.Threshold = threshold
	}
	for _, d := range docs {
		det.Add(d.Path, d.DealID, d.Body)
	}
	drop := map[string]bool{}
	dropped := det.DuplicateIDs()
	for _, id := range dropped {
		drop[id] = true
	}
	kept := docs[:0]
	for _, d := range docs {
		if !drop[d.Path] {
			kept = append(kept, d)
		}
	}
	return &analysis.SliceReader{Docs: kept}, dropped, nil
}

// blobReader strips structure from every document, simulating a parser that
// treats files as undifferentiated text.
type blobReader struct {
	inner analysis.CollectionReader
}

func (r *blobReader) Next() (*docmodel.Document, error) {
	doc, err := r.inner.Next()
	if err != nil {
		return nil, err
	}
	flat := *doc
	flat.Structure = nil
	return &flat, nil
}

// blobFlow is the EIL flow with the structure-blind social annotator.
func blobFlow(tax *taxonomy.Taxonomy) analysis.Annotator {
	return annotators.Composite("eil-flow-blob",
		annotators.NewScopeAnnotator(tax),
		&annotators.SocialNetworking{Blob: true},
		annotators.NewOverviewFacts(),
		annotators.NewWinStrategy(),
		annotators.NewTechSolution(tax),
		annotators.NewClientRefs(),
	)
}

// entityFlow is the EIL flow with the entity-and-co-occurrence contact
// extractor in place of the convention-driven one.
func entityFlow(tax *taxonomy.Taxonomy) analysis.Annotator {
	return annotators.Composite("eil-flow-entity",
		annotators.NewScopeAnnotator(tax),
		annotators.NewEntityCooccurrence(),
		annotators.NewOverviewFacts(),
		annotators.NewWinStrategy(),
		annotators.NewTechSolution(tax),
		annotators.NewClientRefs(),
	)
}

// Search runs a business-activity driven search for the user (Figure 1).
func (s *System) Search(user access.User, q core.FormQuery) (core.Result, error) {
	return s.SearchCtx(context.Background(), user, q)
}

// SearchCtx is Search under the caller's context: when ctx carries a trace
// (the web middleware starts one per request), every search stage records a
// span and the query-log entry carries the trace ID.
func (s *System) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	t := obs.StartTimer()
	res, err := s.Engine.SearchCtx(ctx, user, q)
	s.logForm(ctx, user, q, res, err, t.Elapsed())
	return res, err
}

// SearchExplain runs the search in explain mode, returning the result plus
// the span tree and per-activity score decomposition.
func (s *System) SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error) {
	t := obs.StartTimer()
	res, ex, err := s.Engine.SearchExplain(ctx, user, q)
	s.logForm(ctx, user, q, res, err, t.Elapsed())
	return res, ex, err
}

// logForm records one form query in the query log (nil-log safe).
func (s *System) logForm(ctx context.Context, user access.User, q core.FormQuery, res core.Result, err error, latency time.Duration) {
	if err != nil || s.QueryLog == nil {
		return
	}
	s.QueryLog.Record(qlog.Entry{
		User:       user.ID,
		Kind:       qlog.KindForm,
		Summary:    formSummary(q),
		Concepts:   formConcepts(q),
		Activities: len(res.Activities),
		Fallback:   res.UnscopedFallback,
		Latency:    latency,
		TraceID:    trace.ID(ctx),
	})
}

// formSummary renders a form query for the log.
func formSummary(q core.FormQuery) string {
	var parts []string
	add := func(label, v string) {
		if v != "" {
			parts = append(parts, label+"="+v)
		}
	}
	add("tower", q.Tower)
	add("industry", q.Industry)
	add("consultant", q.Consultant)
	add("person", q.PersonName)
	add("org", q.PersonOrg)
	add("exact", q.ExactPhrase)
	if len(q.AllWords) > 0 {
		parts = append(parts, "all="+strings.Join(q.AllWords, " "))
	}
	return strings.Join(parts, " ")
}

func formConcepts(q core.FormQuery) []string {
	var out []string
	for _, c := range []string{q.Tower, q.SubTower, q.Industry, q.Consultant, q.Geography, q.Country} {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

// KeywordSearch is the OmniFind-style search-box baseline the paper
// evaluates against: a free-text query over all documents, returning
// documents, not activities, with no business context. Quoted phrases and
// -exclusions are honored.
func (s *System) KeywordSearch(query string, limit int) []siapi.DocHit {
	return s.KeywordSearchCtx(context.Background(), query, limit)
}

// KeywordSearchCtx is KeywordSearch under the caller's context.
func (s *System) KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit {
	kq := siapi.ParseKeywords(query)
	engine := s.siapi()
	t := obs.StartTimer()
	hits := engine.SearchCtx(ctx, kq, limit)
	latency := t.Elapsed()
	if s.QueryLog != nil {
		// Log the true match count, not len(hits): the returned page is
		// truncated by limit, which would distort zero-result and volume
		// analytics.
		s.QueryLog.Record(qlog.Entry{
			Kind:       qlog.KindKeyword,
			Summary:    query,
			Activities: engine.Count(kq),
			Latency:    latency,
			TraceID:    trace.ID(ctx),
		})
	}
	return hits
}

// KeywordCount reports how many documents a search-box query returns — the
// "N documents returned" numbers quoted throughout the paper's §4.
func (s *System) KeywordCount(query string) int {
	return s.siapi().Count(siapi.ParseKeywords(query))
}

// Explore searches within one business activity's documents (the synopsis
// drill-down). Requires document-level access to the activity.
func (s *System) Explore(user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	return s.Engine.Explore(user, dealID, q)
}

// ExploreCtx is Explore under the caller's context.
func (s *System) ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	return s.Engine.ExploreCtx(ctx, user, dealID, q)
}

// SimilarDeals finds activities similar to dealID (services mix, industry,
// advisor), filtered to those the user may at least see synopses of.
func (s *System) SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error) {
	if s.Access != nil && !s.Access.CanSeeSynopsis(user, dealID) {
		return nil, fmt.Errorf("%w: %s", synopsis.ErrNotFound, dealID)
	}
	hits, err := s.Synopses.Similar(dealID, k)
	if err != nil {
		return nil, err
	}
	if s.Access == nil {
		return hits, nil
	}
	visible := hits[:0]
	for _, h := range hits {
		if s.Access.CanSeeSynopsis(user, h.DealID) {
			visible = append(visible, h)
		}
	}
	return visible, nil
}

// Deal fetches one deal synopsis, subject to the user's access level: a
// user with no access gets synopsis.ErrNotFound rather than existence
// disclosure.
func (s *System) Deal(user access.User, dealID string) (synopsis.Deal, error) {
	if s.Access != nil && !s.Access.CanSeeSynopsis(user, dealID) {
		return synopsis.Deal{}, fmt.Errorf("%w: %s", synopsis.ErrNotFound, dealID)
	}
	return s.Synopses.Get(dealID)
}
