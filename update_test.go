package eil

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/index"
	"repro/internal/synth"
)

func newDealDocs(t *testing.T, dealID string) []*docmodel.Document {
	t.Helper()
	files := []struct{ name, content string }{
		{"overview.txt", "Deal Overview\nCustomer: Nova Corp\nIndustry: Retail\nTotal Contract Value: over 100M\nScope summary: Network Services.\n"},
		{"scope.deck", "# Services Scope Baseline\n- Network Services\n- Voice Services coverage\n"},
		{"team.grid", "GRID Deal Team Roster\nName | Role | Email | Phone\nNew Person | CSE | new.person@ibm.com |\n"},
		{"tsa-1.grid", "GRID Network Services Service Details\nService Item | cross tower TSA | Notes\nNetwork Services item 1 | | pending\n"},
	}
	var docs []*docmodel.Document
	for _, f := range files {
		doc, err := docparse.Parse(dealID+"/"+f.name, f.content)
		if err != nil {
			t.Fatal(err)
		}
		doc.DealID = dealID
		docs = append(docs, doc)
	}
	return docs
}

func TestAddDocumentsNewDeal(t *testing.T) {
	_, sys := testSystem(t, Options{})
	before := sys.Index.DocCount()
	docs := newDealDocs(t, "DEAL NEW")
	if err := sys.AddDocuments(docs); err != nil {
		t.Fatal(err)
	}
	if got := sys.Index.DocCount(); got != before+len(docs) {
		t.Fatalf("DocCount = %d, want %d", got, before+len(docs))
	}
	deal, err := sys.Synopses.Get("DEAL NEW")
	if err != nil {
		t.Fatal(err)
	}
	if deal.Overview.Customer != "Nova Corp" {
		t.Fatalf("overview = %+v", deal.Overview)
	}
	foundNetwork := false
	for _, tw := range deal.Towers {
		if tw.Tower == "Network Services" {
			foundNetwork = true
		}
	}
	if !foundNetwork {
		t.Fatalf("towers = %+v", deal.Towers)
	}
	// The new deal is searchable end to end.
	res, err := sys.Search(admin(), core.FormQuery{PersonName: "New Person"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 1 || res.Activities[0].DealID != "DEAL NEW" {
		t.Fatalf("activities = %+v", res.Activities)
	}
}

func TestAddDocumentsGrowsExistingDeal(t *testing.T) {
	corpus, sys := testSystem(t, Options{})
	dealID := corpus.DealIDs[1]
	before, err := sys.Synopses.Get(dealID)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := docparse.Parse(dealID+"/late-roster.grid", `GRID Deal Team Roster
Name | Role | Email | Phone
Late Addition | PE | late.addition@ibm.com | 555-9999
`)
	if err != nil {
		t.Fatal(err)
	}
	doc.DealID = dealID
	if err := sys.AddDocuments([]*docmodel.Document{doc}); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Synopses.Get(dealID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.People) != len(before.People)+1 {
		t.Fatalf("people %d -> %d, want +1", len(before.People), len(after.People))
	}
	found := false
	for _, p := range after.People {
		if p.Name == "Late Addition" {
			found = true
		}
	}
	if !found {
		t.Fatalf("late addition missing: %+v", after.People)
	}
}

func TestAddDocumentsDuplicatePathFails(t *testing.T) {
	corpus, sys := testSystem(t, Options{})
	dup := corpus.Docs[0]
	err := sys.AddDocuments([]*docmodel.Document{dup})
	if err == nil {
		t.Fatal("duplicate path re-ingested silently")
	}
}

func TestRemoveDeal(t *testing.T) {
	corpus, sys := testSystem(t, Options{})
	dealID := corpus.DealIDs[0]
	before := sys.Index.DocCount()
	removedDocs := len(sys.Index.ExtIDsByMeta("deal", dealID))
	if removedDocs == 0 {
		t.Fatal("no docs to remove")
	}
	if err := sys.RemoveDeal(dealID); err != nil {
		t.Fatal(err)
	}
	if got := sys.Index.DocCount(); got != before-removedDocs {
		t.Fatalf("DocCount = %d, want %d", got, before-removedDocs)
	}
	if _, err := sys.Synopses.Get(dealID); err == nil {
		t.Fatal("synopsis survived removal")
	}
	// Search no longer returns the deal.
	res, err := sys.Search(admin(), core.FormQuery{PersonName: synth.PlantedPerson})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Activities {
		if a.DealID == dealID {
			t.Fatal("removed deal still searchable")
		}
	}
	// And it can be re-added cleanly afterwards.
	if err := sys.AddDocuments(newDealDocs(t, dealID)); err != nil {
		t.Fatal(err)
	}
	deal, err := sys.Synopses.Get(dealID)
	if err != nil {
		t.Fatal(err)
	}
	if deal.Overview.Customer != "Nova Corp" {
		t.Fatalf("re-added deal kept stale state: %+v", deal.Overview)
	}
	for _, p := range deal.People {
		if p.Name == synth.PlantedPerson {
			t.Fatal("stale contact survived drop + re-add")
		}
	}
}

func TestRemoveDealValidation(t *testing.T) {
	_, sys := testSystem(t, Options{})
	if err := sys.RemoveDeal(""); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestRestoredSystemUpdatable(t *testing.T) {
	// Systems restored from disk accept updates exactly like live ones:
	// LoadSystem rebuilds the pipeline state from the persisted snapshot.
	_, sys := testSystem(t, Options{})
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.AddDocuments(newDealDocs(t, "DEAL X")); err != nil {
		t.Fatalf("restored system rejected AddDocuments: %v", err)
	}
	deal, err := loaded.Synopses.Get("DEAL X")
	if err != nil {
		t.Fatal(err)
	}
	if deal.Overview.Customer != "Nova Corp" {
		t.Fatalf("overview = %+v", deal.Overview)
	}
	res, err := loaded.Search(admin(), core.FormQuery{PersonName: "New Person"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 1 || res.Activities[0].DealID != "DEAL X" {
		t.Fatalf("activities = %+v", res.Activities)
	}
	// Removal works too.
	ids, _ := loaded.Synopses.DealIDs()
	if len(ids) == 0 {
		t.Fatal("no deals")
	}
	if err := loaded.RemoveDeal(ids[0]); err != nil {
		t.Fatal(err)
	}
}

func TestAddDocumentsInBatchDuplicateAborts(t *testing.T) {
	// A duplicate anywhere in the batch fails validation before anything is
	// applied: no documents land in the index, no synopsis is created.
	_, sys := testSystem(t, Options{})
	before := sys.Index.DocCount()
	docs := newDealDocs(t, "DEAL DUP")
	docs = append(docs, docs[0]) // repeat the first path inside the batch
	err := sys.AddDocuments(docs)
	if !errors.Is(err, index.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if got := sys.Index.DocCount(); got != before {
		t.Fatalf("DocCount = %d after aborted batch, want %d", got, before)
	}
	if _, err := sys.Synopses.Get("DEAL DUP"); err == nil {
		t.Fatal("synopsis created by aborted batch")
	}
}

func TestPartialBatchError(t *testing.T) {
	underlying := errors.New("disk on fire")
	err := error(&PartialBatchError{
		Applied: []string{"d/a.txt", "d/b.txt"},
		Failed:  "d/c.txt",
		Err:     underlying,
	})
	if !errors.Is(err, underlying) {
		t.Fatal("Unwrap lost the underlying error")
	}
	var pbe *PartialBatchError
	if !errors.As(err, &pbe) || len(pbe.Applied) != 2 || pbe.Failed != "d/c.txt" {
		t.Fatalf("errors.As = %+v", pbe)
	}
	for _, want := range []string{"d/a.txt", "d/c.txt", "disk on fire"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Error() = %q, missing %q", err.Error(), want)
		}
	}
}

func TestCompactDuringSearch(t *testing.T) {
	// Compact swaps the live engine atomically; searches running concurrently
	// must see either the old or the new backend, never a torn mix. Run under
	// -race (the CI race job does) this is the regression test for the old
	// unsynchronized field reassignment in Compact.
	corpus, sys := testSystem(t, Options{})
	if err := sys.RemoveDeal(corpus.DealIDs[0]); err != nil {
		t.Fatal(err)
	}
	q := core.FormQuery{Tower: "End User Services"}
	want, err := sys.Search(admin(), q)
	if err != nil {
		t.Fatal(err)
	}
	wantHits := sys.KeywordCount("services")
	if wantHits == 0 {
		t.Fatal("no keyword hits to race against")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sys.Search(admin(), q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Activities) != len(want.Activities) {
					errs <- fmt.Errorf("torn search: %d activities, want %d",
						len(res.Activities), len(want.Activities))
					return
				}
				if got := sys.KeywordCount("services"); got != wantHits {
					errs <- fmt.Errorf("keyword count %d mid-compact, want %d", got, wantHits)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if err := sys.Compact(); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestAddDocumentsManyBatches(t *testing.T) {
	_, sys := testSystem(t, Options{})
	for i := 0; i < 5; i++ {
		docs := newDealDocs(t, fmt.Sprintf("DEAL BATCH %d", i))
		if err := sys.AddDocuments(docs); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := sys.Synopses.DealIDs()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, id := range ids {
		if len(id) > 10 && id[:10] == "DEAL BATCH" {
			count++
		}
	}
	if count != 5 {
		t.Fatalf("batch deals = %d", count)
	}
}

func TestCompactAfterRemove(t *testing.T) {
	corpus, sys := testSystem(t, Options{})
	if err := sys.RemoveDeal(corpus.DealIDs[0]); err != nil {
		t.Fatal(err)
	}
	live := sys.Index.DocCount()
	q := core.FormQuery{Tower: "End User Services"}
	before, err := sys.Search(admin(), q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	if sys.Index.DocCount() != live {
		t.Fatalf("compact changed live count: %d vs %d", sys.Index.DocCount(), live)
	}
	after, err := sys.Search(admin(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Activities) != len(after.Activities) {
		t.Fatalf("compact changed results: %d vs %d", len(before.Activities), len(after.Activities))
	}
	// Incremental ingest still works through the swapped index.
	if err := sys.AddDocuments(newDealDocs(t, "DEAL POST COMPACT")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Synopses.Get("DEAL POST COMPACT"); err != nil {
		t.Fatal(err)
	}
}
