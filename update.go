package eil

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/docmodel"
	"repro/internal/index"
	"repro/internal/siapi"
)

// PartialBatchError reports an AddDocuments batch that could not be applied
// atomically: the apply phase failed after some documents were already
// folded into the live system. Applied names exactly the document paths
// that took effect (and that the journal records, so a restart converges on
// the same state); Failed is the document the batch stopped at.
//
// Staging makes this rare: analysis and validation failures — the common
// ways a batch dies — abort before anything is applied and return ordinary
// errors, not a PartialBatchError.
type PartialBatchError struct {
	Applied []string // paths applied before the failure, in batch order
	Failed  string   // path of the document whose application failed
	Err     error    // the underlying failure
}

func (e *PartialBatchError) Error() string {
	return fmt.Sprintf("eil: partial batch: %d of batch applied (%s), failed at %s: %v",
		len(e.Applied), strings.Join(e.Applied, ", "), e.Failed, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *PartialBatchError) Unwrap() error { return e.Err }

// AddDocuments incrementally ingests new documents into a live system: each
// document is analyzed, indexed, and folded into its business activity's
// accumulated state; affected synopses are rebuilt. This is the continuous-
// rollout path — the paper's production system keeps incorporating new
// engagement documents ("more than half a million documents from almost
// 1000 engagements have been incorporated"). Systems restored from disk
// accept it exactly like live ones: LoadSystem rebuilds the pipeline state.
//
// The batch is staged before it is applied: every document is analyzed and
// validated (duplicate paths rejected) first, so analysis failures abort
// cleanly with nothing applied. An apply-phase failure after the index
// batch landed surfaces as a *PartialBatchError naming the applied prefix.
// With a journal attached (EnableWAL), the applied batch is recorded as one
// fsynced record before AddDocuments returns.
func (s *System) AddDocuments(docs []*docmodel.Document) error {
	if len(docs) == 0 {
		return nil
	}
	// Stage: analyze every document before touching any system state.
	// Analysis is the failure-prone phase (parsers, annotators) and is
	// side-effect free, so running it first makes its failures atomic.
	cases := make([]*analysis.CAS, len(docs))
	for i, doc := range docs {
		cas := analysis.NewCAS(doc)
		if err := s.flow.Process(cas); err != nil {
			return fmt.Errorf("eil: update %s: %w (batch not applied)", doc.Path, err)
		}
		cases[i] = cas
	}
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if err := s.writeGuardLocked(); err != nil {
		return err
	}
	// Validate: a duplicate path (already indexed, or repeated within the
	// batch) fails the whole batch before anything is applied, instead of
	// surfacing from the index merge after earlier documents landed.
	seen := make(map[string]bool, len(docs))
	for _, doc := range docs {
		if _, dup := s.Index.Lookup(doc.Path); dup || seen[doc.Path] {
			return fmt.Errorf("eil: update %s: %w (batch not applied)", doc.Path, index.ErrDuplicate)
		}
		seen[doc.Path] = true
	}
	if err := s.applyStagedLocked(docs, cases); err != nil {
		var pbe *PartialBatchError
		if errors.As(err, &pbe) && len(pbe.Applied) > 0 {
			// Journal the prefix that did take effect, so a restart
			// converges on the state the caller was just told about.
			if payload, jerr := encodeDocs(docs[:len(pbe.Applied)]); jerr == nil {
				_ = s.journalLocked(walOpAddDocuments, payload)
			}
		}
		return err
	}
	payload, err := encodeDocs(docs)
	if err != nil {
		return err
	}
	return s.journalLocked(walOpAddDocuments, payload)
}

// applyAddDocuments is the replay-path AddDocuments: same staging and
// application, no journaling (the record being replayed already exists).
// The caller owns the system exclusively (LoadSystem).
func (s *System) applyAddDocuments(docs []*docmodel.Document) error {
	cases := make([]*analysis.CAS, len(docs))
	for i, doc := range docs {
		cas := analysis.NewCAS(doc)
		if err := s.flow.Process(cas); err != nil {
			return fmt.Errorf("analyze %s: %w", doc.Path, err)
		}
		cases[i] = cas
	}
	return s.applyStagedLocked(docs, cases)
}

// applyStagedLocked folds a fully staged batch into the live system: index
// first (as one batch — the flush either merges everything or nothing),
// then the per-deal accumulation state, then the affected synopses.
// Callers hold upMu (or own the system exclusively during replay).
func (s *System) applyStagedLocked(docs []*docmodel.Document, cases []*analysis.CAS) error {
	for i, cas := range cases {
		if err := s.writer.Consume(cas); err != nil {
			// Consume only buffers; drop the buffered prefix so nothing of
			// this batch reaches the index.
			_ = s.writer.Flush()
			return fmt.Errorf("eil: update %s: %w (batch not applied)", docs[i].Path, err)
		}
	}
	// The IndexWriter batches; push the buffered batch into the index
	// before synopsis rebuilds (they query it) and before callers search.
	if err := s.writer.Flush(); err != nil {
		return fmt.Errorf("eil: update flush: %w (batch not applied)", err)
	}
	var affected []string
	affectedSet := map[string]bool{}
	applied := make([]string, 0, len(docs))
	for i, cas := range cases {
		if err := s.builder.Consume(cas); err != nil {
			return &PartialBatchError{Applied: applied, Failed: docs[i].Path, Err: err}
		}
		applied = append(applied, docs[i].Path)
		if id := docs[i].DealID; id != "" && !affectedSet[id] {
			affectedSet[id] = true
			affected = append(affected, id)
		}
	}
	for _, dealID := range affected {
		if err := s.builder.PutDeal(dealID); err != nil {
			return &PartialBatchError{Applied: applied, Failed: dealID, Err: fmt.Errorf("synopsis rebuild: %w", err)}
		}
	}
	return nil
}

// Compact rebuilds the semantic index without the tombstones that
// RemoveDeal and document deletions leave behind, and atomically swaps it
// into the live system. Queries issued concurrently with Compact see either
// the old or the new index, both of which answer identically — the swap is
// an atomic-pointer publish on the search path, so no search ever observes
// a torn mix of old and new backends. Like every mutation it is refused
// on a fenced node and journaled before it returns.
func (s *System) Compact() error {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if err := s.writeGuardLocked(); err != nil {
		return err
	}
	s.applyCompact()
	return s.journalLocked(walOpCompact, nil)
}

// applyCompact is the body of Compact, shared with journal replay; callers
// hold upMu (or own the system exclusively during replay).
func (s *System) applyCompact() {
	fresh := s.Index.Compact()
	engine := siapi.NewEngine(fresh)
	engine.SetMetrics(s.Metrics)
	// Publish to concurrent searches first (atomically), then update the
	// construction-time fields for code that reads them sequentially.
	s.sia.Store(engine)
	s.Engine.SwapDocs(engine)
	s.Index = fresh
	s.SIAPI = engine
	if s.writer != nil {
		s.writer.Ix = fresh
	}
}

// RemoveDeal withdraws an entire business activity: its documents leave the
// index, its synopsis is deleted, and its accumulated analysis state is
// dropped, so a later AddDocuments for the same ID starts clean. With a
// journal attached, the removal is recorded before RemoveDeal returns.
func (s *System) RemoveDeal(dealID string) error {
	if dealID == "" {
		return errors.New("eil: empty deal id")
	}
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if err := s.writeGuardLocked(); err != nil {
		return err
	}
	if err := s.applyRemoveDeal(dealID); err != nil {
		return err
	}
	return s.journalLocked(walOpRemoveDeal, []byte(dealID))
}

// applyRemoveDeal is the body of RemoveDeal, shared with journal replay;
// callers hold upMu (or own the system exclusively during replay).
func (s *System) applyRemoveDeal(dealID string) error {
	for _, path := range s.Index.ExtIDsByMeta("deal", dealID) {
		if err := s.Index.Delete(path); err != nil {
			return fmt.Errorf("eil: remove %s: %w", path, err)
		}
	}
	if err := s.Synopses.Delete(dealID); err != nil {
		return fmt.Errorf("eil: remove synopsis %s: %w", dealID, err)
	}
	if s.builder != nil {
		s.builder.DropDeal(dealID)
	}
	return nil
}
