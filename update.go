package eil

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/docmodel"
	"repro/internal/siapi"
)

// ErrNotUpdatable is returned by incremental operations on systems restored
// from disk, whose offline-pipeline state was not persisted.
var ErrNotUpdatable = errors.New("eil: system restored from snapshot; re-ingest to update")

// AddDocuments incrementally ingests new documents into a live system: each
// document is analyzed, indexed, and folded into its business activity's
// accumulated state; affected synopses are rebuilt. This is the continuous-
// rollout path — the paper's production system keeps incorporating new
// engagement documents ("more than half a million documents from almost
// 1000 engagements have been incorporated").
//
// Documents are processed serially (incremental batches are small); a
// document that fails analysis aborts the batch with its error, leaving
// earlier documents applied.
func (s *System) AddDocuments(docs []*docmodel.Document) error {
	if s.builder == nil || s.flow == nil || s.writer == nil {
		return ErrNotUpdatable
	}
	affected := map[string]bool{}
	var order []string
	for _, doc := range docs {
		cas := analysis.NewCAS(doc)
		if err := s.flow.Process(cas); err != nil {
			return fmt.Errorf("eil: update %s: %w", doc.Path, err)
		}
		if err := s.writer.Consume(cas); err != nil {
			return fmt.Errorf("eil: update %s: %w", doc.Path, err)
		}
		if err := s.builder.Consume(cas); err != nil {
			return fmt.Errorf("eil: update %s: %w", doc.Path, err)
		}
		if doc.DealID != "" && !affected[doc.DealID] {
			affected[doc.DealID] = true
			order = append(order, doc.DealID)
		}
	}
	// The IndexWriter batches; push the buffered tail into the index before
	// synopsis rebuilds (they query it) and before callers search.
	if err := s.writer.Flush(); err != nil {
		return fmt.Errorf("eil: update flush: %w", err)
	}
	for _, dealID := range order {
		if err := s.builder.PutDeal(dealID); err != nil {
			return fmt.Errorf("eil: update synopsis %s: %w", dealID, err)
		}
	}
	return nil
}

// Compact rebuilds the semantic index without the tombstones that
// RemoveDeal and document deletions leave behind, and swaps it into the
// live system. Queries issued concurrently with Compact see either the old
// or the new index, both of which answer identically.
func (s *System) Compact() {
	fresh := s.Index.Compact()
	s.Index = fresh
	s.SIAPI = siapi.NewEngine(fresh)
	s.SIAPI.SetMetrics(s.Metrics)
	s.Engine.Docs = s.SIAPI
	if s.writer != nil {
		s.writer.Ix = fresh
	}
}

// RemoveDeal withdraws an entire business activity: its documents leave the
// index, its synopsis is deleted, and its accumulated analysis state is
// dropped, so a later AddDocuments for the same ID starts clean. It works
// on restored systems too (no pipeline state is needed to remove).
func (s *System) RemoveDeal(dealID string) error {
	if dealID == "" {
		return errors.New("eil: empty deal id")
	}
	for _, path := range s.Index.ExtIDsByMeta("deal", dealID) {
		if err := s.Index.Delete(path); err != nil {
			return fmt.Errorf("eil: remove %s: %w", path, err)
		}
	}
	if err := s.Synopses.Delete(dealID); err != nil {
		return fmt.Errorf("eil: remove synopsis %s: %w", dealID, err)
	}
	if s.builder != nil {
		s.builder.DropDeal(dealID)
	}
	return nil
}
