package eil

// Fenced primary failover: the host-side glue between a System/Follower
// pair and the internal/failover supervisor. A System carries a fencing
// epoch — a monotone term persisted in the durable EPOCH record beside
// its journal — and every mutation passes the write guard, so a node a
// newer epoch has fenced refuses writes instead of forking history.
// PromoteToPrimary turns a detached follower into the next primary:
// checkpoint at the promotion point, bump the epoch durably, adopt the
// follower's mirrored ship log so laggard survivors tail-resume. Fence
// is the other side: seal the journal, persist the fencing mark, stop
// accepting writes. HANode wraps one node in either role and implements
// failover.Node for the supervisor plus router.WritePrimary for the
// write router.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/docmodel"
	"repro/internal/durable"
	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/repl"
)

// FenceEpoch reports the failover term this state last committed under
// (0 = never promoted, pre-failover lineage).
func (s *System) FenceEpoch() uint64 { return s.fenceEpoch.Load() }

// FencedBy reports the newer epoch that fenced this node (0 = not
// fenced). While nonzero every mutation is refused with FencedError.
func (s *System) FencedBy() uint64 { return s.fencedBy.Load() }

// EpochInfo reports the fencing coordinates the shipper hands to
// repl.EpochSource: the current term plus the (previous term, sealed
// sequence) pair of the promotion that started it.
func (s *System) EpochInfo() repl.EpochInfo {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	return repl.EpochInfo{Epoch: s.fenceEpoch.Load(), PrevEpoch: s.prevEpoch, SealedSeq: s.sealSeq}
}

// PromoteToPrimary turns this (detached-follower) state into the primary
// for epoch. The current position is checkpointed first — the promotion
// point must be durable before the new term is — then the EPOCH record
// commits the bump with the seal coordinates, and shipLog (the
// follower's mirrored apply history, from Follower.Detach) becomes the
// ship buffer so survivors behind the seal tail-resume instead of
// re-bootstrapping. The caller completes the takeover with EnableWAL and
// serveReplication.
func (s *System) PromoteToPrimary(dir string, epoch uint64, shipLog *repl.Log) error {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if s.wal != nil {
		return errors.New("eil: promote: node is already journaling (already a primary?)")
	}
	cur := s.fenceEpoch.Load()
	if epoch <= cur {
		return fmt.Errorf("eil: promote: epoch %d is not newer than %d", epoch, cur)
	}
	seal := s.seq.Load()
	// A primary's position coordinate is its own generation, not an
	// upstream one; clear it before the checkpoint records it.
	s.upstreamGen.Store(0)
	gen, err := s.checkpointLocked(dir)
	if err != nil {
		return fmt.Errorf("eil: promote: %w", err)
	}
	// The epoch bump is the acknowledgement of the promotion: once this
	// record is durable, a reboot comes back up as the epoch's primary.
	// Crashing before it leaves a durable follower checkpoint at the
	// promotion point under the old term — re-electable, nothing lost.
	if err := durable.WriteEpoch(nil, dir, durable.EpochRecord{Epoch: epoch, PrevEpoch: cur, SealedSeq: seal}); err != nil {
		return fmt.Errorf("eil: promote: %w", err)
	}
	s.prevEpoch, s.sealSeq = cur, seal
	s.fenceEpoch.Store(epoch)
	s.fencedBy.Store(0)
	if shipLog != nil {
		s.replLog = shipLog
	}
	if s.replLog != nil {
		// Announce the promotion checkpoint to tail-resuming survivors:
		// everything through the seal is folded into gen, their cue to
		// checkpoint locally at the new lineage's first generation.
		s.replLog.Append(repl.Entry{Seq: seal, Rotate: true, Gen: gen})
	}
	return nil
}

// Fence marks this node as superseded by the newer epoch: the journal is
// sealed at its current position (permanently — a seal survives rotation
// attempts), the fencing mark is persisted so a reboot comes back up
// refusing writes, and every subsequent mutation fails with FencedError
// until the node re-syncs as a follower of the new primary.
func (s *System) Fence(newer uint64) error {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	cur := s.fenceEpoch.Load()
	if newer <= cur {
		return fmt.Errorf("eil: fence: epoch %d is not newer than %d", newer, cur)
	}
	if s.fencedBy.Load() >= newer {
		return nil // already fenced at least this hard
	}
	s.fencedBy.Store(newer)
	if s.wal != nil {
		s.wal.Seal(fmt.Sprintf("fenced by epoch %d", newer))
	}
	if s.walDir != "" {
		if err := durable.WriteEpoch(nil, s.walDir, durable.EpochRecord{
			Epoch: cur, PrevEpoch: s.prevEpoch, SealedSeq: s.sealSeq, FencedBy: newer,
		}); err != nil {
			// The in-memory fence holds regardless; persisting it only
			// hardens restarts (an unfenced reboot would be re-fenced at
			// its first hello anyway).
			return fmt.Errorf("eil: fence: persist: %w", err)
		}
	}
	if s.Metrics != nil {
		s.Metrics.Counter("eil_failover_node_fenced_total").Inc()
	}
	return nil
}

// HANodeOptions configures one failover-supervised host.
type HANodeOptions struct {
	// Name identifies the node to the supervisor and in lease records.
	Name string
	// Dir is the node's state directory (snapshots, journal, EPOCH).
	Dir string
	// ListenAddr is where the replication shipper binds when this node is
	// (or becomes) the primary, e.g. "127.0.0.1:0".
	ListenAddr string
	// SyncEvery paces journal fsyncs when primary (see EnableWAL).
	SyncEvery int
	// MaxLag bounds follower staleness (see FollowerOptions.MaxLag).
	MaxLag uint64
	// Access scopes reads (nil = everyone sees everything).
	Access *access.Controller
	// Metrics receives the node's telemetry (nil = fresh registry).
	Metrics *obs.Registry
	// Logf receives lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
	// Faults, when set, wires the chaos seams into replication links.
	Faults *fault.Injector
}

// HANode is one supervised member: a System serving as primary (or
// sitting fenced) or a Follower replicating from the current primary. It
// implements failover.Node for the supervisor and router.WritePrimary
// for the write router; the supervisor drives every role transition.
type HANode struct {
	opts    HANodeOptions
	metrics *obs.Registry

	mu          sync.Mutex
	alive       bool
	role        string
	sys         *System   // primary / fenced role
	fol         *Follower // follower role
	shipper     *repl.Shipper
	lis         net.Listener
	addr        string // last bound replication address
	primaryAddr string // upstream, while follower
	promotedAt  time.Time
}

func newHANode(opts HANodeOptions) *HANode {
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	return &HANode{opts: opts, metrics: metrics}
}

func (h *HANode) logf(format string, args ...any) {
	if h.opts.Logf != nil {
		h.opts.Logf(format, args...)
	}
}

// NewPrimaryHANode wraps an already-built System as the initial primary:
// its journal is enabled at opts.Dir (if not already) and its shipper
// starts serving on opts.ListenAddr. A System whose EPOCH record says it
// was fenced comes up in the fenced role and does not ship.
func NewPrimaryHANode(sys *System, opts HANodeOptions) (*HANode, error) {
	h := newHANode(opts)
	if enabled, _ := sys.WALProbe(); !enabled {
		if err := sys.EnableWAL(opts.Dir, opts.SyncEvery); err != nil {
			return nil, err
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sys = sys
	h.alive = true
	if sys.FencedBy() != 0 {
		h.role = failover.RoleFenced
		return h, nil
	}
	h.role = failover.RolePrimary
	if err := h.startShipperLocked(); err != nil {
		return nil, err
	}
	return h, nil
}

// NewFollowerHANode starts a node as a follower of primaryAddr.
func NewFollowerHANode(primaryAddr string, opts HANodeOptions) (*HANode, error) {
	h := newHANode(opts)
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.startFollowerLocked(primaryAddr); err != nil {
		return nil, err
	}
	h.alive = true
	return h, nil
}

// startShipperLocked binds the replication listener and starts shipping
// from h.sys. Caller holds h.mu and has set h.sys.
func (h *HANode) startShipperLocked() error {
	lis, err := net.Listen("tcp", h.opts.ListenAddr)
	if err != nil {
		return fmt.Errorf("eil: ha %s: %w", h.opts.Name, err)
	}
	sh, err := h.sys.serveReplication(lis, h.opts.Faults, h.onFenced)
	if err != nil {
		_ = lis.Close()
		return err
	}
	h.lis, h.addr, h.shipper = lis, lis.Addr().String(), sh
	return nil
}

// startFollowerLocked (re)starts replication from addr, discarding any
// primary-role state first. Caller holds h.mu.
func (h *HANode) startFollowerLocked(addr string) error {
	if h.sys != nil {
		_ = h.sys.CloseWAL() // sealed or not, release the journal handle
		h.sys = nil
	}
	fol, err := StartFollower(FollowerOptions{
		Dir:     h.opts.Dir,
		Addr:    addr,
		Name:    h.opts.Name,
		MaxLag:  h.opts.MaxLag,
		Access:  h.opts.Access,
		Metrics: h.metrics,
		Logf:    h.opts.Logf,
		Faults:  h.opts.Faults,
	})
	if err != nil {
		return err
	}
	h.fol = fol
	h.primaryAddr = addr
	h.role = failover.RoleFollower
	return nil
}

// onFenced is the shipper's callback: a peer's hello proved a newer
// epoch exists, so this node is the stale side of a partition. Writes
// stop immediately; the supervisor's Fence call (or a Repoint) finishes
// the demotion. The shipper is closed asynchronously — it is the caller.
func (h *HANode) onFenced(newer uint64) {
	h.mu.Lock()
	if h.role != failover.RolePrimary {
		h.mu.Unlock()
		return
	}
	sys, sh := h.sys, h.shipper
	h.role = failover.RoleFenced
	h.shipper, h.lis = nil, nil
	h.mu.Unlock()
	h.logf("eil: ha %s: fenced by epoch %d, demoting", h.opts.Name, newer)
	if sys != nil {
		_ = sys.Fence(newer)
	}
	if sh != nil {
		go sh.Close()
	}
}

// Name identifies the node (failover.Node).
func (h *HANode) Name() string { return h.opts.Name }

// Metrics returns the registry the node's role objects report into.
func (h *HANode) Metrics() *obs.Registry { return h.metrics }

// Alive reports whether the node is serving (failover.Node). Kill — the
// in-process stand-in for a crashed process — clears it.
func (h *HANode) Alive() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alive
}

// Role reports the node's current failover role.
func (h *HANode) Role() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.role
}

// System returns the primary-role state (nil while a follower).
func (h *HANode) System() *System {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sys
}

// Follower returns the follower-role replica (nil while primary).
func (h *HANode) Follower() *Follower {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fol
}

// Status reports the node's failover view (failover.Node).
func (h *HANode) Status() failover.NodeStatus {
	h.mu.Lock()
	sys, fol := h.sys, h.fol
	st := failover.NodeStatus{Role: h.role, PromotedAt: h.promotedAt}
	h.mu.Unlock()
	switch {
	case sys != nil:
		st.Epoch = sys.FenceEpoch()
		st.Gen = sys.Generation()
		_, st.Seq = sys.ReplPosition()
	case fol != nil:
		st.Epoch = fol.FenceEpoch()
		st.Gen, st.Seq = fol.Position()
	}
	return st
}

// ShipperStatus reports the connected followers' view while this node is
// shipping (nil in any other role) — the /api/repl payload's follower list.
func (h *HANode) ShipperStatus() []repl.FollowerStatus {
	h.mu.Lock()
	sh := h.shipper
	h.mu.Unlock()
	if sh == nil {
		return nil
	}
	return sh.Status()
}

// ReplAddr reports where this node's shipper serves, or last served
// (failover.Node). Empty until the node has been a primary.
func (h *HANode) ReplAddr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addr
}

// Promote makes this follower the primary under epoch (failover.Node):
// detach from the dead primary's stream, seal-and-bump via
// PromoteToPrimary, enable the journal, and start shipping.
func (h *HANode) Promote(epoch uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive {
		return fmt.Errorf("eil: ha %s: cannot promote a dead node", h.opts.Name)
	}
	if h.role == failover.RolePrimary {
		return fmt.Errorf("eil: ha %s: already primary", h.opts.Name)
	}
	if h.fol == nil {
		return fmt.Errorf("eil: ha %s: no follower state to promote", h.opts.Name)
	}
	h.role = failover.RolePromoting
	sys, shipLog, err := h.fol.Detach()
	if err != nil {
		h.role = failover.RoleFollower
		return fmt.Errorf("eil: ha %s: %w", h.opts.Name, err)
	}
	if err := sys.PromoteToPrimary(h.opts.Dir, epoch, shipLog); err != nil {
		h.role = failover.RoleFenced // stream detached, state not promoted: needs supervisor help
		return err
	}
	if err := sys.EnableWAL(h.opts.Dir, h.opts.SyncEvery); err != nil {
		h.role = failover.RoleFenced
		return err
	}
	h.sys, h.fol = sys, nil
	if err := h.startShipperLocked(); err != nil {
		h.role = failover.RoleFenced
		return err
	}
	h.role = failover.RolePrimary
	h.promotedAt = time.Now()
	h.logf("eil: ha %s: promoted to primary at epoch %d (%s)", h.opts.Name, epoch, h.addr)
	return nil
}

// Fence tells a (possibly resurrected) stale primary that epoch
// superseded it (failover.Node): seal and mark the local state, stop
// shipping, and — when the new primary's address is known — rejoin as
// its follower, which re-syncs the divergent suffix away.
func (h *HANode) Fence(epoch uint64, primaryAddr string) error {
	h.mu.Lock()
	if h.role == failover.RoleFollower {
		h.mu.Unlock()
		if primaryAddr != "" {
			return h.Repoint(primaryAddr, epoch)
		}
		return nil
	}
	sys, sh := h.sys, h.shipper
	h.role = failover.RoleFenced
	h.shipper, h.lis = nil, nil
	h.mu.Unlock()
	if sh != nil {
		_ = sh.Close()
	}
	if sys != nil {
		if err := sys.Fence(epoch); err != nil && sys.FencedBy() < epoch {
			return err
		}
	}
	if primaryAddr == "" {
		return nil // stays fenced until a Repoint names the new primary
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.startFollowerLocked(primaryAddr)
}

// Repoint re-targets the node at the new primary (failover.Node). A
// follower restarts its stream (its Close checkpoints, so it resumes by
// tailing); a fenced ex-primary rejoins as a follower and re-syncs.
func (h *HANode) Repoint(addr string, epoch uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.role {
	case failover.RoleFollower:
		if h.primaryAddr == addr {
			return nil
		}
		if h.fol != nil {
			if err := h.fol.Close(); err != nil {
				h.logf("eil: ha %s: close before repoint: %v", h.opts.Name, err)
			}
			h.fol = nil
		}
		return h.startFollowerLocked(addr)
	case failover.RoleFenced:
		return h.startFollowerLocked(addr)
	}
	return nil
}

// Kill simulates a crash for in-process chaos tests: the node stops
// serving instantly — no checkpoint, no handshake — and reports dead
// until Resurrect. Durable state is exactly what a kill -9 would leave.
func (h *HANode) Kill() {
	h.mu.Lock()
	h.alive = false
	sys, fol, sh := h.sys, h.fol, h.shipper
	h.sys, h.fol, h.shipper, h.lis = nil, nil, nil, nil
	h.mu.Unlock()
	if sh != nil {
		_ = sh.Close()
	}
	if fol != nil {
		// Stop the stream without the graceful checkpoint Close would take.
		fol.cancel()
		<-fol.done
	}
	if sys != nil {
		// Release the journal handle. Acknowledged records are already on
		// disk per the sync policy; this closes the fd, it does not save
		// anything a crash would lose.
		_ = sys.CloseWAL()
	}
}

// Resurrect brings a killed node back in its pre-crash role, reloading
// everything from disk — the in-memory state died with the "process".
func (h *HANode) Resurrect() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.alive {
		return nil
	}
	switch h.role {
	case failover.RoleFollower:
		if err := h.startFollowerLocked(h.primaryAddr); err != nil {
			return err
		}
	default:
		// An ex-primary reboots from its snapshot + journal, believing
		// whatever its EPOCH record says: unfenced, it ships again (and
		// gets fenced at its first stale hello); fenced, it waits for a
		// repoint.
		sys, err := loadSystemWith(h.opts.Dir, h.opts.Access, h.metrics)
		if err != nil {
			return fmt.Errorf("eil: ha %s: resurrect: %w", h.opts.Name, err)
		}
		if err := sys.EnableWAL(h.opts.Dir, h.opts.SyncEvery); err != nil && sys.FencedBy() == 0 {
			return fmt.Errorf("eil: ha %s: resurrect: %w", h.opts.Name, err)
		}
		h.sys = sys
		if sys.FencedBy() != 0 {
			h.role = failover.RoleFenced
		} else {
			h.role = failover.RolePrimary
			if err := h.startShipperLocked(); err != nil {
				return err
			}
		}
	}
	h.alive = true
	return nil
}

// Close shuts the node down gracefully (tests' cleanup path).
func (h *HANode) Close() error {
	h.mu.Lock()
	h.alive = false
	sys, fol, sh := h.sys, h.fol, h.shipper
	h.sys, h.fol, h.shipper, h.lis = nil, nil, nil, nil
	h.mu.Unlock()
	if sh != nil {
		_ = sh.Close()
	}
	var first error
	if fol != nil {
		first = fol.Close()
	}
	if sys != nil {
		if err := sys.CloseWAL(); err != nil && first == nil && !errors.Is(err, durable.ErrSealed) {
			first = err
		}
	}
	return first
}

// writeSys returns the primary-role state, or a FencedError that makes
// the write router forget this node and re-queue the mutation.
func (h *HANode) writeSys() (*System, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.alive || h.role != failover.RolePrimary || h.sys == nil {
		var mine uint64
		if h.sys != nil {
			mine = h.sys.FenceEpoch()
		}
		return nil, &failover.FencedError{Mine: mine}
	}
	return h.sys, nil
}

// AddDocuments routes an ingest batch to the primary-role state
// (router.WritePrimary).
func (h *HANode) AddDocuments(docs []*docmodel.Document) error {
	sys, err := h.writeSys()
	if err != nil {
		return err
	}
	return sys.AddDocuments(docs)
}

// RemoveDeal routes a removal to the primary-role state
// (router.WritePrimary).
func (h *HANode) RemoveDeal(dealID string) error {
	sys, err := h.writeSys()
	if err != nil {
		return err
	}
	return sys.RemoveDeal(dealID)
}

// Compact routes a compaction to the primary-role state
// (router.WritePrimary).
func (h *HANode) Compact() error {
	sys, err := h.writeSys()
	if err != nil {
		return err
	}
	return sys.Compact()
}
