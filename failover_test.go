package eil

// Failover chaos suite: the differential proof behind the fencing
// protocol. A three-node group takes mixed write traffic while the
// primary is killed mid-stream; the supervisor promotes a survivor, the
// write router queues through the window, the resurrected ex-primary is
// fenced (zero accepted stale writes) and rejoins as a follower, and the
// final corpus is float-exact identical to a never-failed twin that
// applied the same operation ledger in the same effective order.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/failover"
	"repro/internal/router"
)

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// waitNodeApplied waits until h's follower role has applied through seq.
func waitNodeApplied(t *testing.T, h *HANode, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f := h.Follower(); f != nil && f.Ready() {
			if _, cur := f.Position(); cur >= seq {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ha node %s did not reach seq %d (role %s)", h.Name(), seq, h.Role())
}

// assertSystemsIdentical runs the differential query set against two
// primary-role states and requires float-exact identical results.
func assertSystemsIdentical(t *testing.T, label string, want, got *System) {
	t.Helper()
	ctx := context.Background()
	for i, q := range differentialQueries() {
		wr, err := want.SearchCtx(ctx, admin(), q)
		if err != nil {
			t.Fatalf("%s/q%d: want side: %v", label, i, err)
		}
		gr, err := got.SearchCtx(ctx, admin(), q)
		if err != nil {
			t.Fatalf("%s/q%d: got side: %v", label, i, err)
		}
		assertSameResult(t, fmt.Sprintf("%s/q%d", label, i), wr, gr)
	}
}

// chaosOp is one entry in the writer's operation ledger. seq records the
// primary's journal position when the op was acknowledged — the seal
// comparison that identifies acked-but-unshipped operations after a kill.
type chaosOp struct {
	kind string // "add", "remove", "compact"
	deal string
	seq  uint64
}

func startHAGroup(t *testing.T, sysA *System) (a, b, c *HANode) {
	t.Helper()
	var err error
	a, err = NewPrimaryHANode(sysA, HANodeOptions{Name: "a", Dir: t.TempDir(), ListenAddr: "127.0.0.1:0", SyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err = NewFollowerHANode(a.ReplAddr(), HANodeOptions{Name: "b", Dir: t.TempDir(), ListenAddr: "127.0.0.1:0", SyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	c, err = NewFollowerHANode(a.ReplAddr(), HANodeOptions{Name: "c", Dir: t.TempDir(), ListenAddr: "127.0.0.1:0", SyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return a, b, c
}

func TestFailoverChaosKillPromoteFenceRejoin(t *testing.T) {
	corpus, sysA := testSystem(t, Options{Workers: 1})
	a, b, c := startHAGroup(t, sysA)

	wr := router.NewWriteRouter(router.WriteOptions{QueueWait: 30 * time.Second, IsFenced: failover.IsFenced})
	wr.SetPrimary(a, 0)
	sup := failover.NewSupervisor([]failover.Node{a, b, c}, failover.Options{
		Heartbeat:     20 * time.Millisecond,
		MissThreshold: 2,
		Logf:          t.Logf,
		OnWindow:      func() { wr.SetPrimary(nil, 0) },
		OnPromote:     func(w failover.Node, epoch uint64) { wr.SetPrimary(w.(*HANode), epoch) },
	})
	sup.Start()
	t.Cleanup(sup.Close)
	waitCond(t, 10*time.Second, func() bool { return sup.Status().Primary == "a" },
		"supervisor never adopted the initial primary")

	var ledger []chaosOp
	mustOp := func(o chaosOp) {
		t.Helper()
		var err error
		switch o.kind {
		case "add":
			err = wr.AddDocuments(newDealDocs(t, o.deal))
		case "remove":
			err = wr.RemoveDeal(o.deal)
		default:
			err = wr.Compact()
		}
		if err != nil {
			t.Fatalf("%s %q: %v", o.kind, o.deal, err)
		}
		ledger = append(ledger, o)
	}

	// Mixed traffic on the original primary. The first op is barriered so
	// both followers are live before the chaos; the tail is not, so some
	// acknowledged operations may die unshipped with the primary.
	mustOp(chaosOp{kind: "add", deal: "CHAOS DEAL 0"})
	ledger[0].seq = primarySeq(sysA)
	waitNodeApplied(t, b, ledger[0].seq)
	waitNodeApplied(t, c, ledger[0].seq)
	for i := 1; i < 6; i++ {
		mustOp(chaosOp{kind: "add", deal: fmt.Sprintf("CHAOS DEAL %d", i)})
		ledger[len(ledger)-1].seq = primarySeq(sysA)
	}
	mustOp(chaosOp{kind: "remove", deal: "CHAOS DEAL 1"})
	ledger[len(ledger)-1].seq = primarySeq(sysA)

	// kill -9 the primary between two acknowledged writes, then keep the
	// traffic coming: the next mutation finds the primary dead, re-queues,
	// and waits out the promotion window.
	queued := newDealDocs(t, "CHAOS QUEUED")
	a.Kill()
	qdone := make(chan error, 1)
	go func() { qdone <- wr.AddDocuments(queued) }()

	waitCond(t, 15*time.Second, func() bool {
		st := sup.Status()
		return st.Primary != "" && st.Primary != "a" && !st.Promoting
	}, "no promotion after primary kill")
	if err := <-qdone; err != nil {
		t.Fatalf("write queued across the promotion window failed: %v", err)
	}

	st := sup.Status()
	prim := map[string]*HANode{"b": b, "c": c}[st.Primary]
	if prim == nil {
		t.Fatalf("unexpected winner %q", st.Primary)
	}
	survivor := b
	if prim == b {
		survivor = c
	}
	psys := prim.System()
	if psys == nil {
		t.Fatal("winner has no primary-role state")
	}
	if got := psys.FenceEpoch(); got == 0 {
		t.Fatalf("promoted primary still at epoch 0")
	}

	// Operations acknowledged by the dead lineage past the promotion seal
	// never shipped; the sequential writer re-applies that suffix, so the
	// ledger is re-ordered into the sequence the new lineage actually saw:
	// shipped prefix, then the queued write, then the repaired suffix.
	seal := psys.EpochInfo().SealedSeq
	var kept, lost []chaosOp
	for _, o := range ledger {
		if o.seq <= seal {
			kept = append(kept, o)
		} else {
			lost = append(lost, o)
		}
	}
	t.Logf("chaos: promotion sealed at seq %d; %d acked ops lost with the old lineage", seal, len(lost))
	ledger = append(kept, chaosOp{kind: "add", deal: "CHAOS QUEUED"})
	for _, o := range lost {
		mustOp(o)
	}

	// Post-failover traffic lands on the new primary.
	for i := 6; i < 10; i++ {
		mustOp(chaosOp{kind: "add", deal: fmt.Sprintf("CHAOS DEAL %d", i)})
	}
	mustOp(chaosOp{kind: "remove", deal: "CHAOS DEAL 2"})
	mustOp(chaosOp{kind: "compact"})

	// Resurrect the old primary: it reboots believing its stale EPOCH
	// record, ships again, and the supervisor fences it back down to a
	// follower of the winner.
	if err := a.Resurrect(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, func() bool { return a.Role() == failover.RoleFollower },
		"resurrected stale primary was never fenced and repointed")
	// Zero accepted stale writes: the fenced ex-primary refuses directly.
	if err := a.AddDocuments(newDealDocs(t, "STALE WRITE")); !failover.IsFenced(err) {
		t.Fatalf("write to fenced ex-primary returned %v; want a fencing refusal", err)
	}

	// Everyone converges on the winner's head.
	barrier := primarySeq(psys)
	waitNodeApplied(t, a, barrier)
	waitNodeApplied(t, survivor, barrier)

	// The surviving follower repointed without re-bootstrapping.
	if f := survivor.Follower(); f == nil {
		t.Fatalf("survivor %s has no follower state", survivor.Name())
	} else if n := f.Status().Client.Resyncs; n != 0 {
		t.Errorf("surviving follower re-bootstrapped (%d resyncs); want tail resume", n)
	}

	// The never-failed twin applies the same ledger in the same effective
	// order; every surviving node must match it float-exactly.
	twin, err := Ingest(corpus.Docs, Options{Workers: 1, Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range ledger {
		switch o.kind {
		case "add":
			err = twin.AddDocuments(newDealDocs(t, o.deal))
		case "remove":
			err = twin.RemoveDeal(o.deal)
		default:
			err = twin.Compact()
		}
		if err != nil {
			t.Fatalf("twin op %d (%s %q): %v", i, o.kind, o.deal, err)
		}
	}
	assertSystemsIdentical(t, "twin-vs-promoted", twin, psys)
	assertReplicaIdentity(t, "twin-vs-rejoined", twin, a.Follower())
	assertReplicaIdentity(t, "twin-vs-survivor", twin, survivor.Follower())
}

// TestFailoverPoisonedPrimaryManualPromote covers the operator path: the
// primary's journal is poisoned by a failed rotation (writes refused, the
// node still serves reads), a manual promotion moves the write lease to
// the replica, and the poisoned ex-primary is fenced and rejoins clean.
func TestFailoverPoisonedPrimaryManualPromote(t *testing.T) {
	_, sysA := testSystem(t, Options{Workers: 1})
	ffs := &failCreateFS{FS: durable.OS}
	sysA.WALFS = ffs
	dirA := t.TempDir()
	a, err := NewPrimaryHANode(sysA, HANodeOptions{Name: "a", Dir: dirA, ListenAddr: "127.0.0.1:0", SyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := NewFollowerHANode(a.ReplAddr(), HANodeOptions{Name: "b", Dir: t.TempDir(), ListenAddr: "127.0.0.1:0", SyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	wr := router.NewWriteRouter(router.WriteOptions{QueueWait: 30 * time.Second, IsFenced: failover.IsFenced})
	wr.SetPrimary(a, 0)
	sup := failover.NewSupervisor([]failover.Node{a, b}, failover.Options{
		Heartbeat:     20 * time.Millisecond,
		MissThreshold: 1 << 20, // the primary never dies here; only manual promotion moves the lease
		Logf:          t.Logf,
		OnWindow:      func() { wr.SetPrimary(nil, 0) },
		OnPromote:     func(w failover.Node, epoch uint64) { wr.SetPrimary(w.(*HANode), epoch) },
	})
	sup.Start()
	t.Cleanup(sup.Close)
	waitCond(t, 10*time.Second, func() bool { return sup.Status().Primary == "a" },
		"supervisor never adopted the initial primary")

	if err := wr.AddDocuments(newDealDocs(t, "BEFORE POISON")); err != nil {
		t.Fatal(err)
	}
	waitNodeApplied(t, b, primarySeq(sysA))

	// A failed rotation poisons the journal: the snapshot committed but
	// the surviving journal extends a superseded generation.
	ffs.armed.Store(true)
	if _, err := sysA.Checkpoint(dirA); err == nil {
		t.Fatal("checkpoint succeeded with rotation refused")
	}
	// The poisoned primary refuses writes — and the refusal is a journal
	// error, not a fencing one, so the router surfaces it instead of
	// spinning on a re-queue.
	err = wr.AddDocuments(newDealDocs(t, "POISONED WRITE"))
	if err == nil {
		t.Fatal("write accepted into a poisoned journal")
	}
	if failover.IsFenced(err) {
		t.Fatalf("poisoned journal misreported as a fencing refusal: %v", err)
	}

	// The operator moves the write lease to the healthy replica.
	if err := sup.Promote("b"); err != nil {
		t.Fatal(err)
	}
	ffs.armed.Store(false)
	if err := wr.AddDocuments(newDealDocs(t, "AFTER PROMOTE")); err != nil {
		t.Fatalf("post-promotion write: %v", err)
	}

	waitCond(t, 15*time.Second, func() bool { return a.Role() == failover.RoleFollower },
		"poisoned ex-primary was never demoted to follower")
	bsys := b.System()
	if bsys == nil {
		t.Fatal("promoted node has no primary-role state")
	}
	waitNodeApplied(t, a, primarySeq(bsys))

	if _, err := bsys.Synopses.Get("BEFORE POISON"); err != nil {
		t.Fatalf("acknowledged deal lost across promotion: %v", err)
	}
	if _, err := bsys.Synopses.Get("AFTER PROMOTE"); err != nil {
		t.Fatalf("post-promotion deal missing: %v", err)
	}
	if _, err := bsys.Synopses.Get("POISONED WRITE"); err == nil {
		t.Fatal("refused write resurfaced on the new lineage")
	}
	assertReplicaIdentity(t, "poisoned-ex-primary", bsys, a.Follower())
}

// TestPoisonedJournalReopenRestoresWritability is the recovery path that
// does not involve another node: a poisoned journal (failed rotation) is
// cured by closing the handle and reloading from the committed snapshot —
// EnableWAL discards the stale-generation journal and opens a fresh one.
func TestPoisonedJournalReopenRestoresWritability(t *testing.T) {
	_, sys := testSystem(t, Options{Workers: 1})
	dir := t.TempDir()
	ffs := &failCreateFS{FS: durable.OS}
	sys.WALFS = ffs
	if err := sys.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "ACKED DEAL")); err != nil {
		t.Fatal(err)
	}

	ffs.armed.Store(true)
	if _, err := sys.Checkpoint(dir); err == nil {
		t.Fatal("checkpoint succeeded with rotation refused")
	}
	if enabled, err := sys.WALProbe(); !enabled || err == nil {
		t.Fatalf("WALProbe = (%v, %v); want enabled with a health error", enabled, err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "LOST DEAL")); err == nil {
		t.Fatal("append accepted into a poisoned journal")
	}

	// Reopen instead of checkpointing: close the poisoned handle, reload
	// the committed state, and re-enable the journal.
	if err := sys.CloseWAL(); err != nil {
		t.Logf("closing poisoned journal: %v", err)
	}
	ffs.armed.Store(false)
	re, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if enabled, err := re.WALProbe(); !enabled || err != nil {
		t.Fatalf("reopened WALProbe = (%v, %v); want healthy", enabled, err)
	}
	if err := re.AddDocuments(newDealDocs(t, "REOPENED DEAL")); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}

	final, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := final.Synopses.Get("ACKED DEAL"); err != nil {
		t.Fatalf("acknowledged deal lost: %v", err)
	}
	if _, err := final.Synopses.Get("REOPENED DEAL"); err != nil {
		t.Fatalf("post-reopen deal lost: %v", err)
	}
	if _, err := final.Synopses.Get("LOST DEAL"); err == nil {
		t.Fatal("refused deal resurrected on reload")
	}
}
