package eil

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
)

// Snapshot file names inside a system directory.
const (
	indexFile   = "index.gob"
	contextFile = "context.gob"
)

// Save persists the system (semantic index and business-context database)
// into dir, creating it if needed. The personnel directory and access
// grants are runtime configuration and are not persisted.
func (s *System) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eil: save: %w", err)
	}
	if err := s.Index.SaveFile(filepath.Join(dir, indexFile)); err != nil {
		return fmt.Errorf("eil: save index: %w", err)
	}
	if err := s.Synopses.DB().SaveFile(filepath.Join(dir, contextFile)); err != nil {
		return fmt.Errorf("eil: save context: %w", err)
	}
	return nil
}

// LoadSystem restores a system saved with Save. The access controller (nil
// means everyone sees everything) and taxonomy are supplied by the caller.
func LoadSystem(dir string, ctl *access.Controller) (*System, error) {
	ix, err := index.LoadFile(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("eil: load index: %w", err)
	}
	db, err := relstore.LoadFile(filepath.Join(dir, contextFile))
	if err != nil {
		return nil, fmt.Errorf("eil: load context: %w", err)
	}
	store, err := synopsis.Open(db)
	if err != nil {
		return nil, fmt.Errorf("eil: load context: %w", err)
	}
	tax := taxonomy.Default()
	metrics := obs.NewRegistry()
	sia := siapi.NewEngine(ix)
	sia.SetMetrics(metrics)
	sys := &System{
		Index:    ix,
		SIAPI:    sia,
		Synopses: store,
		Taxonomy: tax,
		Access:   ctl,
		Metrics:  metrics,
	}
	sys.Engine = &core.Engine{
		Synopses: store,
		Docs:     sys.SIAPI,
		Access:   ctl,
		Tax:      tax,
		Metrics:  metrics,
	}
	return sys, nil
}
