package eil

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/access"
	"repro/internal/analysis"
	"repro/internal/annotators"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/directory"
	"repro/internal/docmodel"
	"repro/internal/durable"
	"repro/internal/failover"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/repl"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
)

// Snapshot component names inside a generation directory (<dir>/gen-NNNNNNNN/
// <name>.snap). Every component is a framed, CRC-checksummed container; the
// store's MANIFEST names the last fully committed generation.
const (
	compIndex     = "index"     // semantic full-text index (gob)
	compContext   = "context"   // business-context database (gob)
	compPipeline  = "pipeline"  // retained offline-pipeline state (gob)
	compDirectory = "directory" // personnel directory (JSON lines; optional)
	compReplPos   = "replpos"   // replication position (gob; optional for pre-repl snapshots)
)

// replposFormat versions the replication-position component payload.
const replposFormat = 1

// replposSnapshot pins a snapshot generation to its place in the
// replication history: Seq counts every journal record folded into this
// state since its lineage began, and Gen (followers only) names the
// primary generation the state derives from. A snapshot without it (from
// a pre-replication build) loads at position zero, which merely means a
// restarting follower re-bootstraps instead of tail-resuming.
type replposSnapshot struct {
	Format int
	Gen    uint64
	Seq    uint64
}

// legacyIndexFile detects pre-durability system directories (bare
// un-checksummed gob files) so the error says "re-ingest", not "corrupt".
const legacyIndexFile = "index.gob"

// ErrLegacySnapshot marks a system directory written by a pre-durability
// version (bare index.gob/context.gob, no manifest, no pipeline state).
// Those snapshots cannot be recovered or updated incrementally; re-ingest
// the repository with this version to produce a durable snapshot store.
var ErrLegacySnapshot = errors.New("eil: legacy snapshot layout; re-ingest to enable durable snapshots")

// pipelineFormat versions the pipeline component payload. Load rejects
// other versions with a typed error, never a misdecode.
const pipelineFormat = 1

// pipelineSnapshot is the persisted offline-pipeline state: which annotator
// flow ingested the corpus (so a restored system re-analyzes incremental
// documents the same way) and the CPE builder's accumulated per-deal state
// (so AddDocuments keeps growing existing deals instead of resetting them).
type pipelineSnapshot struct {
	Format  int
	Flow    string
	Builder *annotators.BuilderState
}

// Save persists the system as a new committed snapshot generation in dir:
// every component is written as a framed, checksummed container with
// fsync-on-file-and-directory, and the MANIFEST swings over only once the
// whole generation is durable. The previous generations (SnapshotKeep, or
// durable.DefaultKeep) are retained as fallbacks. If a journal is attached
// (EnableWAL) and rooted at dir, it is truncated: journaled operations are
// folded into the new generation.
func (s *System) Save(dir string) error {
	_, err := s.Checkpoint(dir)
	return err
}

// Checkpoint is Save returning the committed generation number. It is safe
// to call while the system serves queries: searches proceed concurrently
// (the index snapshot takes only a read lock); incremental updates block
// for the duration so the generation is a consistent cross-component cut.
func (s *System) Checkpoint(dir string) (uint64, error) {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	return s.checkpointLocked(dir)
}

func (s *System) checkpointLocked(dir string) (uint64, error) {
	st, err := durable.OpenStore(dir, durable.StoreOptions{Keep: s.SnapshotKeep, Metrics: s.Metrics})
	if err != nil {
		return 0, fmt.Errorf("eil: save: %w", err)
	}
	comps := []durable.Component{
		{Name: compIndex, Write: func(w io.Writer) error {
			_, err := s.Index.WriteTo(w)
			return err
		}},
		{Name: compContext, Write: func(w io.Writer) error {
			_, err := s.Synopses.DB().WriteTo(w)
			return err
		}},
		{Name: compPipeline, Write: s.writePipeline},
		{Name: compReplPos, Write: func(w io.Writer) error {
			return gob.NewEncoder(w).Encode(replposSnapshot{
				Format: replposFormat,
				Gen:    s.upstreamGen.Load(),
				Seq:    s.seq.Load(),
			})
		}},
	}
	if s.Directory != nil {
		comps = append(comps, durable.Component{Name: compDirectory, Write: func(w io.Writer) error {
			_, err := s.Directory.WriteTo(w)
			return err
		}})
	}
	gen, err := st.Commit(comps)
	if err != nil {
		return 0, fmt.Errorf("eil: save: %w", err)
	}
	s.gen = gen
	s.ckptSeq = s.seq.Load()
	s.lastCkpt = time.Now()
	if s.wal != nil && s.walDir == dir {
		if err := s.wal.Rotate(gen); err != nil {
			// The journal has poisoned itself: it still extends the
			// superseded base, so further appends there would be discarded
			// on the next load. Subsequent updates fail at the journal
			// step instead of being silently lost.
			return gen, fmt.Errorf("eil: save: %w", err)
		}
		if s.replLog != nil {
			// Tell followers the primary checkpointed: every record
			// through the current sequence is folded into gen, so this is
			// a safe position for them to checkpoint locally too. Appended
			// under upMu, after the records it covers — a follower can
			// never observe the rotation before the records it folds in.
			s.replLog.Append(repl.Entry{Seq: s.seq.Load(), Rotate: true, Gen: gen})
		}
	}
	return gen, nil
}

func (s *System) writePipeline(w io.Writer) error {
	snap := pipelineSnapshot{Format: pipelineFormat}
	if s.flow != nil {
		snap.Flow = s.flow.Name()
	}
	if s.builder != nil {
		snap.Builder = s.builder.State()
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Generation returns the snapshot generation the in-memory state extends:
// the generation LoadSystem restored, or the one the last Checkpoint
// committed (0 until either happens).
func (s *System) Generation() uint64 {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	return s.gen
}

// LastCheckpoint returns the current generation and when this process last
// committed it (the restore time for a loaded system). The zero time means
// no checkpoint has happened in this process — the snapshot-freshness
// health check treats that as "checkpointing not configured", not stale.
func (s *System) LastCheckpoint() (uint64, time.Time) {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	return s.gen, s.lastCkpt
}

// WALProbe reports whether a write-ahead journal is attached and, if so,
// whether it is still appendable (an unconditional fsync on the open
// journal file). enabled=false with a nil error means durability is simply
// not configured — the health check reports that as informational, not
// failing.
func (s *System) WALProbe() (enabled bool, err error) {
	s.upMu.Lock()
	w := s.wal
	s.upMu.Unlock()
	if w == nil {
		return false, nil
	}
	return true, w.Probe()
}

// LoadSystem restores a system saved with Save, recovering to the exact
// pre-crash state: it loads the last-good snapshot generation (falling back
// through retained generations when the newest is torn or corrupt), then
// replays the write-ahead journal's intact records on top. The restored
// system rebuilds its pipeline state, so it accepts AddDocuments exactly
// like a never-restarted one. The access controller (nil means everyone
// sees everything) is supplied by the caller.
//
// LoadSystem never panics and never returns partial state: it returns a
// fully recovered system or a typed error (durable.ErrNoSnapshot,
// durable.ErrCorrupt, durable.ErrTorn, durable.ErrVersion,
// ErrLegacySnapshot).
func LoadSystem(dir string, ctl *access.Controller) (*System, error) {
	return loadSystemWith(dir, ctl, obs.NewRegistry())
}

// loadSystemWith is LoadSystem recording into a caller-supplied registry —
// LoadCluster restores every shard into one shared registry.
func loadSystemWith(dir string, ctl *access.Controller, metrics *obs.Registry) (*System, error) {
	st, err := durable.OpenStore(dir, durable.StoreOptions{Metrics: metrics})
	if err != nil {
		return nil, fmt.Errorf("eil: load: %w", err)
	}
	var sys *System
	gen, err := st.Load(func(gen uint64, open durable.OpenComponent) error {
		loaded, lerr := loadGeneration(open, ctl, metrics)
		if lerr != nil {
			return lerr
		}
		sys = loaded
		return nil
	})
	if err != nil {
		if _, lerr := os.Stat(filepath.Join(dir, legacyIndexFile)); lerr == nil {
			return nil, fmt.Errorf("%w: %s", ErrLegacySnapshot, dir)
		}
		return nil, fmt.Errorf("eil: load %s: %w", dir, err)
	}
	sys.gen = gen
	sys.lastCkpt = time.Now()

	// Restore the fencing term: a node that was promoted (or fenced)
	// carries its epoch across restarts, so its replication hellos and
	// write guard come back up under the right term without operator
	// input. A corrupt EPOCH record fails the load — guessing a term
	// could let a fenced node write again.
	if ep, ok, eperr := durable.ReadEpoch(nil, dir); eperr != nil {
		return nil, fmt.Errorf("eil: load %s: %w", dir, eperr)
	} else if ok {
		sys.fenceEpoch.Store(ep.Epoch)
		sys.fencedBy.Store(ep.FencedBy)
		sys.prevEpoch = ep.PrevEpoch
		sys.sealSeq = ep.SealedSeq
	}

	// Replay the journal tail: every operation acknowledged since the
	// loaded generation committed. A torn tail (crash mid-append) is cut
	// off; a journal extending a different generation than the one that
	// actually loaded (snapshot fallback) cannot be applied and is skipped.
	rep, rerr := durable.ReplayWAL(dir, durable.WALOptions{Metrics: metrics})
	switch {
	case rerr == nil:
		if rep.Base != gen {
			metrics.Counter("durable_recovery_events_total", "kind", "wal_base").Inc()
		} else if err := sys.replay(rep.Records); err != nil {
			return nil, fmt.Errorf("eil: load %s: %w", dir, err)
		} else {
			// Each replayed record advances the position past the
			// checkpoint the snapshot recorded.
			sys.seq.Add(uint64(len(rep.Records)))
		}
	case errors.Is(rerr, iofs.ErrNotExist), errors.Is(rerr, os.ErrNotExist):
		// No journal: the snapshot is the whole state.
	default:
		return nil, fmt.Errorf("eil: load %s: %w", dir, rerr)
	}
	return sys, nil
}

// loadGeneration builds a complete fresh System from one snapshot
// generation's components. State is never shared across attempts, so a
// generation that fails mid-decode leaks nothing into the next candidate.
func loadGeneration(open durable.OpenComponent, ctl *access.Controller, metrics *obs.Registry) (*System, error) {
	var ix *index.Index
	if err := decodeComponent(open, compIndex, func(r io.Reader) error {
		var err error
		ix, err = index.Load(r)
		return err
	}); err != nil {
		return nil, err
	}
	var db *relstore.DB
	if err := decodeComponent(open, compContext, func(r io.Reader) error {
		var err error
		db, err = relstore.Load(r)
		return err
	}); err != nil {
		return nil, err
	}
	store, err := synopsis.Open(db)
	if err != nil {
		return nil, &durable.CorruptError{Path: compContext, Detail: err.Error()}
	}
	var ps pipelineSnapshot
	if err := decodeComponent(open, compPipeline, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&ps)
	}); err != nil {
		return nil, err
	}
	if ps.Format != pipelineFormat {
		return nil, &durable.VersionError{Path: compPipeline, Got: uint32(ps.Format), Want: pipelineFormat}
	}
	var dir *directory.Directory
	err = decodeComponent(open, compDirectory, func(r io.Reader) error {
		var derr error
		dir, derr = directory.Load(r)
		return derr
	})
	if err != nil && !errors.Is(err, iofs.ErrNotExist) && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	var rp replposSnapshot
	err = decodeComponent(open, compReplPos, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&rp)
	})
	switch {
	case err == nil:
		if rp.Format != replposFormat {
			return nil, &durable.VersionError{Path: compReplPos, Got: uint32(rp.Format), Want: replposFormat}
		}
	case errors.Is(err, iofs.ErrNotExist), errors.Is(err, os.ErrNotExist):
		// Pre-replication snapshot: position zero.
	default:
		return nil, err
	}

	tax := taxonomy.Default()
	flow, err := flowByName(ps.Flow, tax)
	if err != nil {
		return nil, err
	}
	builder := annotators.NewBuilder(store, dir)
	if ps.Builder != nil {
		builder.RestoreState(ps.Builder)
	}
	writer := &crawler.IndexWriter{Ix: ix, Metrics: metrics}
	sia := siapi.NewEngine(ix)
	sia.SetMetrics(metrics)
	sys := &System{
		Index:     ix,
		SIAPI:     sia,
		Synopses:  store,
		Taxonomy:  tax,
		Access:    ctl,
		Directory: dir,
		Metrics:   metrics,
		flow:      flow,
		builder:   builder,
		writer:    writer,
	}
	sys.ckptSeq = rp.Seq
	sys.seq.Store(rp.Seq)
	sys.upstreamGen.Store(rp.Gen)
	sys.sia.Store(sia)
	sys.Engine = &core.Engine{
		Synopses: store,
		Docs:     sia,
		Access:   ctl,
		Tax:      tax,
		Metrics:  metrics,
	}
	return sys, nil
}

// flowByName rebuilds the annotator flow a snapshot was ingested with, so
// replayed and incremental documents go through the same analysis.
func flowByName(name string, tax *taxonomy.Taxonomy) (analysis.Annotator, error) {
	switch name {
	case "", "eil-flow":
		return annotators.NewEILFlow(tax), nil
	case "eil-flow-blob":
		return blobFlow(tax), nil
	case "eil-flow-entity":
		return entityFlow(tax), nil
	}
	return nil, &durable.CorruptError{Path: compPipeline, Detail: fmt.Sprintf("unknown annotator flow %q", name)}
}

// decodeComponent streams one component through its decoder with every
// frame checksum-verified, then drains the container so trailing corruption
// the decoder did not happen to read still fails the load. Decoder errors
// that are not already typed durable errors are wrapped as corruption.
func decodeComponent(open durable.OpenComponent, name string, decode func(io.Reader) error) error {
	cr, err := open(name)
	if err != nil {
		return err
	}
	defer cr.Close()
	if err := decode(cr); err != nil {
		if isDurableErr(err) {
			return err
		}
		return &durable.CorruptError{Path: name, Detail: err.Error()}
	}
	if err := cr.Drain(); err != nil {
		return err
	}
	return nil
}

func isDurableErr(err error) bool {
	return errors.Is(err, durable.ErrTorn) || errors.Is(err, durable.ErrCorrupt) ||
		errors.Is(err, durable.ErrVersion)
}

// Write-ahead journal operation kinds. Payloads: AddDocuments carries the
// batch's documents gob-serialized via docmodel; RemoveDeal carries the
// deal ID; Compact is empty.
const (
	walOpAddDocuments uint8 = 1
	walOpRemoveDeal   uint8 = 2
	walOpCompact      uint8 = 3
)

// EnableWAL attaches a write-ahead journal rooted at dir: every subsequent
// AddDocuments, RemoveDeal, and Compact is recorded (checksummed, fsynced
// per syncEvery — <=1 fsyncs every append) before the call returns, so a
// crash at any instruction later loses nothing that was acknowledged.
// Checkpoint(dir) truncates the journal as it commits each generation.
//
// If dir has no committed snapshot matching the in-memory state, EnableWAL
// checkpoints first, so the journal always extends a real generation. An
// existing journal for the current generation is resumed (its torn tail,
// if any, truncated); a stale or foreign journal is atomically replaced.
func (s *System) EnableWAL(dir string, syncEvery int) error {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if s.wal != nil {
		return errors.New("eil: wal already enabled")
	}
	st, err := durable.OpenStore(dir, durable.StoreOptions{Keep: s.SnapshotKeep, Metrics: s.Metrics})
	if err != nil {
		return fmt.Errorf("eil: enable wal: %w", err)
	}
	if committed, ok := st.Committed(); !ok || committed != s.gen || s.gen == 0 {
		if _, err := s.checkpointLocked(dir); err != nil {
			return fmt.Errorf("eil: enable wal: %w", err)
		}
	}
	opts := durable.WALOptions{FS: s.WALFS, SyncEvery: syncEvery, Metrics: s.Metrics}
	var w *durable.WAL
	if rep, rerr := durable.ReplayWAL(dir, durable.WALOptions{}); rerr == nil && rep.Base == s.gen {
		w, err = durable.OpenWAL(dir, opts)
	} else {
		w, err = durable.CreateWAL(dir, s.gen, opts)
	}
	if err != nil {
		return fmt.Errorf("eil: enable wal: %w", err)
	}
	s.wal, s.walDir = w, dir
	return nil
}

// CloseWAL detaches and closes the journal after a final fsync. Further
// updates are applied in memory only (until the next EnableWAL or Save).
func (s *System) CloseWAL() error {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal, s.walDir = nil, ""
	return err
}

// journalHealthyLocked refuses a mutation before it is applied while the
// journal is poisoned (a failed rotation left it extending a superseded
// generation). Applying first and failing the append would leave memory
// ahead of anything durable — worse, a later successful checkpoint would
// then persist an operation the caller was told failed.
func (s *System) journalHealthyLocked() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Healthy(); err != nil {
		return fmt.Errorf("eil: journal: %w", err)
	}
	return nil
}

// writeGuardLocked is the refusal gate every mutation passes before it
// is applied: a fenced node refuses outright — a newer epoch owns the
// history now, and applying (let alone journaling) here would be a lost
// write at best and a split brain at worst — and a poisoned journal
// refuses for the reason journalHealthyLocked documents.
func (s *System) writeGuardLocked() error {
	if by := s.fencedBy.Load(); by != 0 {
		return &failover.FencedError{Mine: s.fenceEpoch.Load(), Current: by}
	}
	return s.journalHealthyLocked()
}

// journalLocked appends one operation record; callers hold upMu. With no
// journal attached it is a no-op. The record is durable (per the journal's
// sync policy) when it returns — this is the commit point incremental
// operations acknowledge from.
func (s *System) journalLocked(kind uint8, payload []byte) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(kind, payload); err != nil {
		return fmt.Errorf("eil: journal: %w", err)
	}
	seq := s.seq.Add(1)
	if s.replLog != nil {
		// Tee the acknowledged record into the ship buffer so connected
		// followers stream it live. Under upMu, so ship order is exactly
		// journal order.
		s.replLog.Append(repl.Entry{Seq: seq, Kind: kind, Payload: payload})
	}
	return nil
}

func encodeDocs(docs []*docmodel.Document) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(docs); err != nil {
		return nil, fmt.Errorf("eil: journal encode: %w", err)
	}
	return buf.Bytes(), nil
}

// replay applies the journal's recovered records in append order, through
// the same code paths live operations use (minus re-journaling). Any
// record that fails to apply aborts the load with a typed error — the
// caller discards the partially replayed system, so partial state never
// escapes.
func (s *System) replay(records []durable.Record) error {
	for i, rec := range records {
		if err := s.applyRecord(rec.Kind, rec.Payload); err != nil {
			return fmt.Errorf("eil: replay record %d: %w", i, err)
		}
	}
	return nil
}

// applyRecord routes one journal record through the shared apply paths —
// the single entry point crash recovery (replay) and live replication
// (ApplyReplicated) both go through, so a follower's state evolves by
// exactly the transitions a recovering primary would make.
func (s *System) applyRecord(kind uint8, payload []byte) error {
	switch kind {
	case walOpAddDocuments:
		var docs []*docmodel.Document
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&docs); err != nil {
			return &durable.CorruptError{Path: durable.WALName, Detail: err.Error()}
		}
		if err := s.applyAddDocuments(docs); err != nil {
			return fmt.Errorf("add: %w", err)
		}
	case walOpRemoveDeal:
		if err := s.applyRemoveDeal(string(payload)); err != nil {
			return fmt.Errorf("remove: %w", err)
		}
	case walOpCompact:
		s.applyCompact()
	default:
		return &durable.CorruptError{Path: durable.WALName, Detail: fmt.Sprintf("unknown op %d", kind)}
	}
	return nil
}
