package eil_test

// End-to-end CLI integration: build the real binaries and drive the
// generate -> ingest -> search workflow the README documents.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	eilgen := buildTool(t, dir, "eilgen")
	eilingest := buildTool(t, dir, "eilingest")
	eilBin := buildTool(t, dir, "eil")

	workbooks := filepath.Join(dir, "workbooks")
	sysDir := filepath.Join(dir, "eilsys")

	out := runTool(t, eilgen, "-profile", "small", "-out", workbooks)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("eilgen output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(workbooks, "personnel.jsonl")); err != nil {
		t.Fatalf("personnel file missing: %v", err)
	}

	out = runTool(t, eilingest, "-repo", workbooks, "-out", sysDir)
	if !strings.Contains(out, "ingested") {
		t.Fatalf("eilingest output: %s", out)
	}
	// The system directory is a generational snapshot store: a MANIFEST
	// naming the committed generation plus gen-*/ component containers.
	if _, err := os.Stat(filepath.Join(sysDir, "MANIFEST")); err != nil {
		t.Fatalf("snapshot manifest missing: %v", err)
	}
	gens, err := filepath.Glob(filepath.Join(sysDir, "gen-*"))
	if err != nil || len(gens) == 0 {
		t.Fatalf("no snapshot generations in %s (%v)", sysDir, err)
	}
	for _, f := range []string{"index.snap", "context.snap", "pipeline.snap"} {
		if _, err := os.Stat(filepath.Join(gens[len(gens)-1], f)); err != nil {
			t.Fatalf("snapshot component %s missing: %v", f, err)
		}
	}

	// Concept + people search through the CLI.
	out = runTool(t, eilBin, "-sys", sysDir, "-person", "Sam White", "-org", "ABC")
	if !strings.Contains(out, "ABC ONLINE") {
		t.Fatalf("people search output missing planted deal:\n%s", out)
	}
	if !strings.Contains(out, "Sam White") {
		t.Fatalf("people tab missing Sam White:\n%s", out)
	}

	// Keyword baseline through the CLI.
	out = runTool(t, eilBin, "-sys", sysDir, "-kw", `"cross tower TSA"`, "-limit", "3")
	if !strings.Contains(out, "documents") {
		t.Fatalf("keyword output: %s", out)
	}

	// Typo suggestion surface.
	out = runTool(t, eilBin, "-sys", sysDir, "-tower", "Strorage Management Services")
	if !strings.Contains(out, "did you mean") {
		t.Fatalf("suggestion line missing:\n%s", out)
	}
}

func TestCLIEvalSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	eileval := buildTool(t, dir, "eileval")
	out := runTool(t, eileval, "-scale", "small", "-exp", "study")
	if !strings.Contains(out, "meta-query 1") || !strings.Contains(out, "38%") {
		t.Fatalf("eileval study output:\n%s", out)
	}
}
