package eil

import (
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestSystemSaveLoad(t *testing.T) {
	_, sys := testSystem(t, Options{})
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Index.DocCount() != sys.Index.DocCount() {
		t.Fatalf("doc count %d vs %d", loaded.Index.DocCount(), sys.Index.DocCount())
	}
	// Query equivalence on a concept+text search.
	q := core.FormQuery{Tower: "Storage Management Services", ExactPhrase: "data replication"}
	a, err := sys.Search(admin(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search(admin(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Activities) != len(b.Activities) {
		t.Fatalf("activities %d vs %d", len(a.Activities), len(b.Activities))
	}
	for i := range a.Activities {
		if a.Activities[i].DealID != b.Activities[i].DealID {
			t.Fatalf("activity %d: %s vs %s", i, a.Activities[i].DealID, b.Activities[i].DealID)
		}
	}
	// People search still resolves through the restored context DB.
	res, err := loaded.Search(admin(), core.FormQuery{PersonName: synth.PlantedPerson})
	if err != nil || len(res.Activities) == 0 {
		t.Fatalf("people search after load: %v, %v", res.Activities, err)
	}
}

func TestLoadSystemMissing(t *testing.T) {
	if _, err := LoadSystem(t.TempDir(), nil); err == nil {
		t.Fatal("empty dir loaded")
	}
}
