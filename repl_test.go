package eil

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/synth"
)

// replPrimary builds a deterministic primary (Workers:1, WAL enabled in a
// temp dir) and serves replication on loopback. The fault injector, when
// non-nil, wires the repl.send / repl.corrupt chaos seams into every
// follower connection.
func replPrimary(t *testing.T, faults *fault.Injector) (*synth.Corpus, *System, string) {
	t.Helper()
	corpus, sys := testSystem(t, Options{Workers: 1})
	dir := t.TempDir()
	if err := sys.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sys.ServeReplication(lis, faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sh.Close()
		sys.CloseWAL()
	})
	return corpus, sys, lis.Addr().String()
}

// startReplica attaches a follower to the primary at addr, replicating
// into dir.
func startReplica(t *testing.T, addr, dir, name string, faults *fault.Injector) *Follower {
	t.Helper()
	f, err := StartFollower(FollowerOptions{
		Dir:    dir,
		Addr:   addr,
		Name:   name,
		Faults: faults,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// waitApplied blocks until the follower's applied position reaches seq.
func waitApplied(t *testing.T, f *Follower, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, cur := f.Position(); cur >= seq {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, cur := f.Position()
	t.Fatalf("follower %s stuck at seq %d, want %d (client: %+v)", f.Name(), cur, seq, f.Status().Client)
}

// assertReplicaIdentity runs the full differential query suite against
// the primary and the replica at a matched position: every result must be
// float-exact identical, the same bar the sharded engine is held to.
func assertReplicaIdentity(t *testing.T, label string, primary *System, f *Follower) {
	t.Helper()
	rep := f.System()
	if rep == nil {
		t.Fatalf("%s: replica has no state", label)
	}
	ctx := context.Background()
	for i, q := range differentialQueries() {
		pr, err := primary.SearchCtx(ctx, admin(), q)
		if err != nil {
			t.Fatalf("%s/q%d: primary: %v", label, i, err)
		}
		rr, err := rep.SearchCtx(ctx, admin(), q)
		if err != nil {
			t.Fatalf("%s/q%d: replica: %v", label, i, err)
		}
		assertSameResult(t, fmt.Sprintf("%s/q%d", label, i), pr, rr)
	}
}

// primarySeq is the primary's current journal position.
func primarySeq(sys *System) uint64 {
	_, seq := sys.ReplPosition()
	return seq
}

// TestReplicationDifferentialIdentity is the tentpole proof: a primary
// and two followers under mixed update and search traffic converge to
// float-exact identical results for every differential query once
// positions match.
func TestReplicationDifferentialIdentity(t *testing.T) {
	_, sys, addr := replPrimary(t, nil)
	f1 := startReplica(t, addr, t.TempDir(), "replica-1", nil)
	f2 := startReplica(t, addr, t.TempDir(), "replica-2", nil)

	// Search the replicas while the write stream is live: results are
	// whatever position each replica holds, but nothing may race or fail
	// with a non-sync error.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	for _, f := range []*Follower{f1, f2} {
		readers.Add(1)
		go func(f *Follower) {
			defer readers.Done()
			q := differentialQueries()[0]
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				if _, err := f.SearchCtx(context.Background(), admin(), q); err != nil && !errors.Is(err, ErrNotSynced) {
					t.Errorf("concurrent read on %s: %v", f.Name(), err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(f)
	}

	// Mixed update traffic: adds, a removal, a compaction, more adds.
	for i := 0; i < 4; i++ {
		if err := sys.AddDocuments(newDealDocs(t, fmt.Sprintf("REPL DEAL %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.RemoveDeal("REPL DEAL 1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "REPL DEAL LATE")); err != nil {
		t.Fatal(err)
	}
	close(stopReads)
	readers.Wait()

	barrier := primarySeq(sys)
	waitApplied(t, f1, barrier)
	waitApplied(t, f2, barrier)
	assertReplicaIdentity(t, "f1", sys, f1)
	assertReplicaIdentity(t, "f2", sys, f2)
}

// TestFollowerKillRestartResumes kills a follower mid-stream and restarts
// it over the same directory: it must resume from its checkpointed
// position via the tail (zero re-syncs), not re-bootstrap.
func TestFollowerKillRestartResumes(t *testing.T) {
	_, sys, addr := replPrimary(t, nil)
	dir := t.TempDir()
	f := startReplica(t, addr, dir, "replica", nil)
	if err := sys.AddDocuments(newDealDocs(t, "BEFORE KILL")); err != nil {
		t.Fatal(err)
	}
	// Checkpoint the primary so the follower checkpoints locally too (its
	// durable resume point), then kill it.
	if _, err := sys.Checkpoint(sys.walDir); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, f, primarySeq(sys))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes continue while the follower is down.
	for i := 0; i < 3; i++ {
		if err := sys.AddDocuments(newDealDocs(t, fmt.Sprintf("WHILE DOWN %d", i))); err != nil {
			t.Fatal(err)
		}
	}

	f2 := startReplica(t, addr, dir, "replica", nil)
	waitApplied(t, f2, primarySeq(sys))
	st := f2.Status()
	if st.Client.Resyncs != 0 {
		t.Fatalf("restart re-bootstrapped (%d resyncs); want tail resume", st.Client.Resyncs)
	}
	assertReplicaIdentity(t, "restarted", sys, f2)
}

// TestReplicationStreamCorruptionResync flips one byte in flight: the
// follower's CRC check must catch it, distrust the stream, and re-sync
// from a fresh snapshot — converging to identical results regardless.
func TestReplicationStreamCorruptionResync(t *testing.T) {
	inj := fault.New(1)
	_, sys, addr := replPrimary(t, inj)
	f := startReplica(t, addr, t.TempDir(), "replica", nil)
	if err := sys.AddDocuments(newDealDocs(t, "CLEAN DEAL")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, f, primarySeq(sys))

	// Arm corruption for exactly one frame, then write through it.
	inj.Add(&fault.Rule{Site: repl.SiteCorrupt, Mode: fault.ModeError, Times: 1})
	for i := 0; i < 3; i++ {
		if err := sys.AddDocuments(newDealDocs(t, fmt.Sprintf("DIRTY %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, f, primarySeq(sys))
	if st := f.Status(); st.Client.Resyncs == 0 {
		t.Fatalf("corrupted frame did not force a re-sync: %+v", st.Client)
	}
	assertReplicaIdentity(t, "post-corruption", sys, f)
}

// TestReplicationStreamTruncationMidFrame cuts the connection mid-frame:
// an I/O error, not a framing violation — the follower must reconnect
// and tail-resume from its exact position, never re-bootstrapping.
func TestReplicationStreamTruncationMidFrame(t *testing.T) {
	inj := fault.New(1)
	_, sys, addr := replPrimary(t, inj)
	f := startReplica(t, addr, t.TempDir(), "replica", nil)
	if err := sys.AddDocuments(newDealDocs(t, "CLEAN DEAL")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, f, primarySeq(sys))
	before := f.Status().Client

	// Deliver exactly half of the next frame, then cut the connection.
	inj.Add(&fault.Rule{Site: repl.SiteSend, Mode: fault.ModePartial, Fraction: 0.5, Times: 1})
	for i := 0; i < 3; i++ {
		if err := sys.AddDocuments(newDealDocs(t, fmt.Sprintf("TORN %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, f, primarySeq(sys))
	st := f.Status().Client
	if st.Resyncs != before.Resyncs {
		t.Fatalf("mid-frame truncation forced a re-sync (%d -> %d); want tail resume", before.Resyncs, st.Resyncs)
	}
	if st.Reconnects == before.Reconnects {
		t.Fatalf("expected a reconnect after the cut connection: %+v", st)
	}
	assertReplicaIdentity(t, "post-truncation", sys, f)
}

// TestGenerationHandoffMidStream is the regression test for the
// rotate-on-checkpoint edge: a follower observing the primary checkpoint
// mid-stream must apply every record across the generation boundary —
// the strict-position rotate check means a single skipped frame fails
// loudly instead of silently diverging.
func TestGenerationHandoffMidStream(t *testing.T) {
	_, sys, addr := replPrimary(t, nil)
	f := startReplica(t, addr, t.TempDir(), "replica", nil)
	if err := sys.AddDocuments(newDealDocs(t, "PRE ROTATE")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, f, primarySeq(sys))

	// Checkpoint mid-stream: the journal rotates to a new generation while
	// the follower is connected and tailing.
	if _, err := sys.Checkpoint(sys.walDir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sys.AddDocuments(newDealDocs(t, fmt.Sprintf("POST ROTATE %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, f, primarySeq(sys))
	st := f.Status()
	if st.Client.Resyncs != 0 {
		t.Fatalf("generation handoff forced a re-sync: %+v", st.Client)
	}
	if gen, _ := f.Position(); gen != sys.Generation() {
		t.Fatalf("follower gen %d, primary gen %d: rotation not adopted", gen, sys.Generation())
	}
	assertReplicaIdentity(t, "post-handoff", sys, f)

	// And the handoff survives a restart: the local checkpoint taken at the
	// rotation point resumes the follower in the new generation.
	dir := f.opts.Dir
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "AFTER RESTART")); err != nil {
		t.Fatal(err)
	}
	f2 := startReplica(t, addr, dir, "replica", nil)
	waitApplied(t, f2, primarySeq(sys))
	if st := f2.Status(); st.Client.Resyncs != 0 {
		t.Fatalf("restart across generations re-bootstrapped: %+v", st.Client)
	}
	assertReplicaIdentity(t, "post-handoff-restart", sys, f2)
}

// TestRouterServesThroughFollowerChurn drives reads through the router
// while a follower is killed and restarted: every read must succeed.
func TestRouterServesThroughFollowerChurn(t *testing.T) {
	_, sys, addr := replPrimary(t, nil)
	dir := t.TempDir()
	f1 := startReplica(t, addr, t.TempDir(), "replica-1", nil)
	f2 := startReplica(t, addr, dir, "replica-2", nil)
	waitApplied(t, f1, primarySeq(sys))
	waitApplied(t, f2, primarySeq(sys))

	rt := router.New(sys, sys.RouterNode("primary"), []router.Node{f1, f2}, router.Options{})
	q := differentialQueries()[0]
	var served atomic.Int64
	read := func() {
		if _, err := rt.SearchCtx(context.Background(), admin(), q); err != nil {
			t.Errorf("routed read failed: %v", err)
			return
		}
		served.Add(1)
	}
	for i := 0; i < 50; i++ {
		read()
	}
	// Drain, kill, and keep reading: the survivors absorb everything.
	if err := rt.DrainWait(context.Background(), "replica-2"); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		read()
	}
	// Restart over the same directory and rejoin the rotation.
	f3 := startReplica(t, addr, dir, "replica-2", nil)
	waitApplied(t, f3, primarySeq(sys))
	rt.SetDraining("replica-2", false)
	for i := 0; i < 50; i++ {
		read()
	}
	if served.Load() != 150 {
		t.Fatalf("served %d of 150 reads", served.Load())
	}
}

// failCreateFS delegates to the real filesystem but fails Create while
// armed — the seam that makes a journal rotation fail after its snapshot
// committed.
type failCreateFS struct {
	durable.FS
	armed atomic.Bool
}

func (fs *failCreateFS) Create(name string) (durable.File, error) {
	if fs.armed.Load() {
		return nil, errors.New("injected: create refused")
	}
	return fs.FS.Create(name)
}

// TestFailedRotatePoisonsJournal is the latent-bug regression: when the
// snapshot commits but the journal rotation fails, the surviving journal
// extends a superseded generation. Accepting appends there would silently
// discard acknowledged operations on the next load — the journal must
// poison itself instead, and recover on the next successful checkpoint.
func TestFailedRotatePoisonsJournal(t *testing.T) {
	_, sys := testSystem(t, Options{Workers: 1})
	dir := t.TempDir()
	ffs := &failCreateFS{FS: durable.OS}
	sys.WALFS = ffs
	if err := sys.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	defer sys.CloseWAL()
	if err := sys.AddDocuments(newDealDocs(t, "ACKED DEAL")); err != nil {
		t.Fatal(err)
	}

	ffs.armed.Store(true)
	if _, err := sys.Checkpoint(dir); err == nil {
		t.Fatal("checkpoint succeeded with rotation refused")
	}
	// The snapshot committed; the stale journal must now refuse appends
	// rather than acknowledge operations the next load would discard.
	if err := sys.AddDocuments(newDealDocs(t, "LOST DEAL")); err == nil {
		t.Fatal("append accepted into a poisoned journal")
	}

	// A later successful checkpoint re-establishes the journal.
	ffs.armed.Store(false)
	if _, err := sys.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "RECOVERED DEAL")); err != nil {
		t.Fatal(err)
	}

	// The reloaded state holds every acknowledged deal and no ghost of the
	// refused one.
	re, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.Synopses.Get("ACKED DEAL"); err != nil {
		t.Fatalf("acknowledged deal lost: %v", err)
	}
	if _, err := re.Synopses.Get("RECOVERED DEAL"); err != nil {
		t.Fatalf("post-recovery deal lost: %v", err)
	}
	if _, err := re.Synopses.Get("LOST DEAL"); err == nil {
		t.Fatal("refused deal resurrected on reload")
	}
}

// TestClusterFollowerIdentity composes replication with sharding: every
// shard's journal ships independently, and the replicated scatter-gather
// view answers float-exact identically to the cluster primary.
func TestClusterFollowerIdentity(t *testing.T) {
	_, mono, cluster := clusterFixture(t, 2)
	dir := t.TempDir()
	if err := cluster.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	defer cluster.CloseWAL()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cluster.ServeReplication(lis, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	cf, err := StartClusterFollower(2, FollowerOptions{
		Dir:  t.TempDir(),
		Addr: lis.Addr().String(),
		Name: "cluster-replica",
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	if err := cluster.AddDocuments(newDealDocs(t, "SHARDED REPL DEAL")); err != nil {
		t.Fatal(err)
	}
	if err := mono.AddDocuments(newDealDocs(t, "SHARDED REPL DEAL")); err != nil {
		t.Fatal(err)
	}
	// A shard that received no writes sits at seq 0, so a bare position
	// barrier is vacuous before its snapshot installs: wait for servable
	// state at zero lag first, then pin each shard to its exact position.
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cf.WaitSynced(wctx, 0); err != nil {
		t.Fatal(err)
	}
	for i, sub := range cf.Followers() {
		waitApplied(t, sub, primarySeq(cluster.Shards[i]))
	}

	ctx := context.Background()
	for i, q := range differentialQueries() {
		pr, err := cluster.SearchCtx(ctx, admin(), q)
		if err != nil {
			t.Fatalf("q%d: cluster: %v", i, err)
		}
		rr, err := cf.SearchCtx(ctx, admin(), q)
		if err != nil {
			t.Fatalf("q%d: cluster follower: %v", i, err)
		}
		assertSameResult(t, fmt.Sprintf("cluster/q%d", i), pr, rr)
		mr, err := mono.SearchCtx(ctx, admin(), q)
		if err != nil {
			t.Fatalf("q%d: mono: %v", i, err)
		}
		assertSameResult(t, fmt.Sprintf("mono-vs-replica/q%d", i), mr, rr)
	}
}
