package eil

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/runtimetel"
	"repro/internal/siapi"
	"repro/internal/slo"
	"repro/internal/synopsis"
	"repro/internal/trace"
)

// ErrNotSynced is returned by a follower's read surface before its first
// snapshot installs. Routers and readiness checks keep traffic away from
// a follower in this state; seeing the error means a caller bypassed
// them.
var ErrNotSynced = errors.New("eil: replica has not completed initial sync")

// shardKey is the wire-protocol shard name for shard i — the same string
// as its snapshot subdirectory, so logs, dirs, and handshakes agree.
func shardKey(i int) string { return fmt.Sprintf("shard-%04d", i) }

// ---------------------------------------------------------------------------
// Primary side: ship log wiring and the replication listener.

// initReplLogLocked brings up the in-memory ship buffer: history starts at
// the last checkpoint, and any journal records already on disk past it
// are seeded in so a follower connecting right after startup can tail
// instead of re-bootstrapping. Caller holds upMu.
func (s *System) initReplLogLocked() error {
	if s.replLog != nil {
		return nil
	}
	if s.wal == nil {
		return errors.New("eil: replication requires EnableWAL first")
	}
	shipLog := repl.NewLog(s.gen, s.ckptSeq, 0, 0)
	rep, err := durable.ReplayWAL(s.walDir, durable.WALOptions{FS: s.WALFS})
	if err == nil && rep.Base == s.gen {
		seq := s.ckptSeq
		for _, r := range rep.Records {
			seq++
			shipLog.Append(repl.Entry{Seq: seq, Kind: r.Kind, Payload: r.Payload})
		}
		if seq != s.seq.Load() {
			return fmt.Errorf("eil: ship log seed: journal holds %d records but position is %d past checkpoint %d",
				len(rep.Records), s.seq.Load()-s.ckptSeq, s.ckptSeq)
		}
	}
	s.replLog = shipLog
	return nil
}

// replSnapshot opens the latest snapshot generation for transfer. When
// the ship log has already evicted the last checkpoint's position (a
// follower bootstrapping from it could never catch up), a fresh
// checkpoint is committed first so snapshot + retained tail always form a
// continuous history.
func (s *System) replSnapshot() (*repl.Snapshot, error) {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if s.wal == nil || s.replLog == nil {
		return nil, errors.New("eil: replication not enabled")
	}
	if !s.replLog.Covers(s.ckptSeq) {
		if _, err := s.checkpointLocked(s.walDir); err != nil {
			return nil, fmt.Errorf("eil: snapshot for bootstrap: %w", err)
		}
	}
	st, err := durable.OpenStore(s.walDir, durable.StoreOptions{Keep: s.SnapshotKeep, Metrics: s.Metrics})
	if err != nil {
		return nil, err
	}
	gen, comps, err := st.ExportGeneration()
	if err != nil {
		return nil, err
	}
	if gen != s.gen {
		for _, c := range comps {
			c.R.Close()
		}
		return nil, fmt.Errorf("eil: snapshot store at gen %d but system at %d", gen, s.gen)
	}
	snap := &repl.Snapshot{Gen: gen, Seq: s.ckptSeq}
	for _, c := range comps {
		snap.Components = append(snap.Components, repl.SnapshotComponent{Name: c.Name, Size: c.Size, R: c.R})
	}
	return snap, nil
}

// systemSource maps wire-protocol shard names to their systems for the
// shipper ("" for an unsharded primary).
type systemSource struct {
	shards map[string]*System
}

func (src *systemSource) TailLog(shard string) (*repl.Log, error) {
	sys, ok := src.shards[shard]
	if !ok {
		return nil, fmt.Errorf("eil: unknown shard %q", shard)
	}
	sys.upMu.Lock()
	defer sys.upMu.Unlock()
	if sys.replLog == nil {
		return nil, errors.New("eil: replication not enabled")
	}
	return sys.replLog, nil
}

func (src *systemSource) Snapshot(shard string) (*repl.Snapshot, error) {
	sys, ok := src.shards[shard]
	if !ok {
		return nil, fmt.Errorf("eil: unknown shard %q", shard)
	}
	return sys.replSnapshot()
}

// EpochInfo exposes each shard's fencing term to the shipper
// (repl.EpochSource), so stale peers are fenced and laggard survivors of
// a promotion are told whether their position is a safe prefix.
func (src *systemSource) EpochInfo(shard string) repl.EpochInfo {
	sys, ok := src.shards[shard]
	if !ok {
		return repl.EpochInfo{}
	}
	return sys.EpochInfo()
}

// ServeReplication starts shipping this system's WAL to followers
// connecting on lis. EnableWAL must already be active. A non-nil faults
// injector wires the repl.send / repl.recv / repl.corrupt chaos seams
// into every accepted connection. The returned Shipper reports
// connected-follower status; Close it to stop serving.
func (s *System) ServeReplication(lis net.Listener, faults *fault.Injector) (*repl.Shipper, error) {
	return s.serveReplication(lis, faults, nil)
}

// serveReplication is ServeReplication with the shipper's fencing
// callback installed before the accept loop starts, so no connection can
// race the handler into place. onFenced fires when a peer's hello proves
// a newer epoch exists (see repl.Shipper.OnFenced).
func (s *System) serveReplication(lis net.Listener, faults *fault.Injector, onFenced func(newerEpoch uint64)) (*repl.Shipper, error) {
	s.upMu.Lock()
	err := s.initReplLogLocked()
	s.upMu.Unlock()
	if err != nil {
		return nil, err
	}
	sh := &repl.Shipper{
		Source:   &systemSource{shards: map[string]*System{"": s}},
		Metrics:  s.Metrics,
		Faults:   faults,
		OnFenced: onFenced,
	}
	go sh.Serve(lis)
	return sh, nil
}

// ServeReplication starts shipping every shard's WAL on one listener:
// each follower names its shard in the handshake, and each shard's
// journal streams independently.
func (c *Cluster) ServeReplication(lis net.Listener, faults *fault.Injector) (*repl.Shipper, error) {
	shards := make(map[string]*System, len(c.Shards))
	for i, s := range c.Shards {
		s.upMu.Lock()
		err := s.initReplLogLocked()
		s.upMu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("eil: shard %d: %w", i, err)
		}
		shards[shardKey(i)] = s
	}
	sh := &repl.Shipper{
		Source:  &systemSource{shards: shards},
		Metrics: c.Metrics,
		Faults:  faults,
	}
	go sh.Serve(lis)
	return sh, nil
}

// ApplyReplicated applies one shipped journal record. The sequence must
// be exactly the successor of the local position: any gap means frames
// were skipped somewhere (the generation-handoff hazard), and the error
// forces a reconnect rather than letting state silently diverge.
func (s *System) ApplyReplicated(seq uint64, kind uint8, payload []byte) error {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if s.wal != nil {
		return errors.New("eil: replicated apply on a journaling system")
	}
	cur := s.seq.Load()
	if seq != cur+1 {
		return fmt.Errorf("eil: replication gap: record %d after position %d", seq, cur)
	}
	if err := s.applyRecord(kind, payload); err != nil {
		return err
	}
	s.seq.Store(seq)
	return nil
}

// ReplPosition reports the replication position: the primary generation
// this state derives from and the global record sequence.
func (s *System) ReplPosition() (gen, seq uint64) {
	return s.upstreamGen.Load(), s.seq.Load()
}

// ---------------------------------------------------------------------------
// Follower: a read replica of one primary system.

// FollowerOptions configures StartFollower / StartClusterFollower.
type FollowerOptions struct {
	// Dir is the local replica state directory (snapshots land here; a
	// prior run's state resumes from it).
	Dir string
	// Addr is the primary's replication listener.
	Addr string
	// Name identifies this follower to the primary and in metrics.
	Name string
	// Shard routes the stream on a cluster primary (set by
	// StartClusterFollower; leave empty against a single system).
	Shard string
	// MaxLag is the staleness bound in WAL records: beyond it the repl
	// health check fails, draining the replica (0 = unbounded).
	MaxLag uint64
	// Access scopes this replica's reads (nil = everyone sees everything).
	Access *access.Controller
	// Metrics receives eil_repl_* client telemetry (nil = fresh registry).
	Metrics *obs.Registry
	// Tracer, when set, traces the replica's reads.
	Tracer *trace.Tracer
	// Logf receives replication lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
	// Faults, when set, wraps the replication connection in the fault
	// seam (chaos tests).
	Faults *fault.Injector
}

// Follower is a live read replica: it bootstraps from the primary's
// latest snapshot generation (or its own local state from a prior run),
// replays the shipped journal continuously through the shared apply
// paths, checkpoints locally whenever the primary checkpoints, and serves
// the full read Backend from its current state.
type Follower struct {
	opts    FollowerOptions
	metrics *obs.Registry
	client  *repl.Client
	cancel  context.CancelFunc
	done    chan struct{}

	sys     atomic.Pointer[System]
	headGen atomic.Uint64
	headSeq atomic.Uint64
	sawHead atomic.Bool
	epoch   atomic.Uint64 // bumped on snapshot swap (cluster cache key)

	// fenceEpoch is the failover term the replica's state was last
	// written under (durable in the EPOCH record beside its snapshots;
	// distinct from the swap counter above). shipLog mirrors every
	// applied record so that, if this replica is promoted, laggard
	// survivors can tail-resume from it instead of re-bootstrapping; it
	// is touched only by the client goroutine and, after Detach, by the
	// promotion path.
	fenceEpoch atomic.Uint64
	shipLog    *repl.Log

	ckptMu sync.Mutex // serializes local checkpoints with Close
}

// StartFollower begins replicating from opts.Addr into opts.Dir. It
// returns immediately; the replica serves ErrNotSynced until its first
// state lands (a resumed local snapshot or the bootstrap transfer). Use
// WaitSynced to block for serving readiness.
func StartFollower(opts FollowerOptions) (*Follower, error) {
	if opts.Dir == "" || opts.Addr == "" {
		return nil, errors.New("eil: follower requires Dir and Addr")
	}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("follower-%d", os.Getpid())
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	f := &Follower{opts: opts, metrics: metrics, done: make(chan struct{})}

	// Resume from local state when a prior run left a committed
	// generation: the replica re-serves immediately and tail-resumes from
	// its checkpointed position instead of re-copying the whole snapshot.
	if sys, err := loadSystemWith(opts.Dir, opts.Access, metrics); err == nil {
		sys.Tracer = opts.Tracer
		f.sys.Store(sys)
		gen, seq := sys.ReplPosition()
		f.shipLog = repl.NewLog(gen, seq, 0, 0)
		f.logf("eil: follower resuming local state at gen %d seq %d", gen, seq)
	} else if !errors.Is(err, durable.ErrNoSnapshot) {
		// Unloadable local state is not fatal — the bootstrap transfer
		// replaces it — but it is worth a line.
		f.logf("eil: follower discarding local state: %v", err)
	}

	// The adopted failover term survives restarts in the EPOCH record; a
	// replica that never witnessed a promotion hellos at epoch 0. An
	// unreadable record degrades to epoch 0 — the primary then fences
	// this replica into a re-sync, which rewrites it.
	if ep, ok, err := durable.ReadEpoch(nil, opts.Dir); err == nil && ok {
		f.fenceEpoch.Store(ep.Epoch)
	}

	f.client = &repl.Client{
		Addr:    opts.Addr,
		Name:    opts.Name,
		Shard:   opts.Shard,
		Sink:    &followerSink{f: f},
		Metrics: metrics,
		Logf:    opts.Logf,
		Faults:  opts.Faults,
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go func() {
		defer close(f.done)
		_ = f.client.Run(ctx)
	}()
	return f, nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// Close stops replicating, then best-effort checkpoints so a restart
// resumes from the exact stop position instead of the last rotation.
func (f *Follower) Close() error {
	f.cancel()
	<-f.done
	f.ckptMu.Lock()
	defer f.ckptMu.Unlock()
	if sys := f.sys.Load(); sys != nil {
		if _, err := sys.Checkpoint(f.opts.Dir); err != nil {
			return fmt.Errorf("eil: follower close checkpoint: %w", err)
		}
	}
	return nil
}

// System returns the replica's current state (nil before first sync). The
// pointer swaps wholesale on re-bootstrap; hold the returned value for a
// consistent view.
func (f *Follower) System() *System { return f.sys.Load() }

// Detach stops replicating permanently and returns the final local state
// together with the mirrored ship log, without checkpointing — the
// promotion path takes both over and checkpoints under the new epoch
// itself. The Follower must not be reused after Detach (Close remains
// safe to call).
func (f *Follower) Detach() (*System, *repl.Log, error) {
	f.cancel()
	<-f.done
	sys := f.sys.Load()
	if sys == nil {
		return nil, nil, ErrNotSynced
	}
	return sys, f.shipLog, nil
}

// Name identifies the follower (router.Node).
func (f *Follower) Name() string { return f.opts.Name }

// Ready reports whether the replica holds servable state (router.Node).
// Staleness is the router's and health check's concern, via Lag.
func (f *Follower) Ready() bool { return f.sys.Load() != nil }

// Lag reports how many WAL records this replica trails the primary by;
// ok is false before the first heartbeat establishes the primary's head.
func (f *Follower) Lag() (uint64, bool) {
	sys := f.sys.Load()
	if sys == nil || !f.sawHead.Load() {
		return 0, false
	}
	head, cur := f.headSeq.Load(), sys.seq.Load()
	if head <= cur {
		return 0, true
	}
	return head - cur, true
}

// Position reports the replica's applied position (gen 0 before sync).
func (f *Follower) Position() (gen, seq uint64) {
	if sys := f.sys.Load(); sys != nil {
		return sys.ReplPosition()
	}
	return 0, 0
}

// Epoch increments every time the replica's state swaps wholesale
// (snapshot install); composite views cache against it.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// WaitSynced blocks until the replica is serving and within maxLag
// records of the primary's head, or ctx expires.
func (f *Follower) WaitSynced(ctx context.Context, maxLag uint64) error {
	for {
		if lag, ok := f.Lag(); ok && lag <= maxLag {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// FollowerReport is the /api/repl payload for a follower process.
type FollowerReport struct {
	Role    string            `json:"role"`
	Name    string            `json:"name"`
	Primary string            `json:"primary"`
	Shard   string            `json:"shard,omitempty"`
	Gen     uint64            `json:"gen"`
	Seq     uint64            `json:"seq"`
	HeadGen uint64            `json:"head_gen"`
	HeadSeq uint64            `json:"head_seq"`
	Lag     *uint64           `json:"lag_records,omitempty"`
	Synced  bool              `json:"synced"`
	Epoch   uint64            `json:"epoch"` // adopted failover term
	Client  repl.ClientStatus `json:"client"`
}

// FenceEpoch reports the failover term the replica's state was last
// written under (0 before any promotion is witnessed).
func (f *Follower) FenceEpoch() uint64 { return f.fenceEpoch.Load() }

// Status reports the follower's replication view.
func (f *Follower) Status() FollowerReport {
	gen, seq := f.Position()
	rep := FollowerReport{
		Role:    "follower",
		Name:    f.opts.Name,
		Primary: f.opts.Addr,
		Shard:   f.opts.Shard,
		Gen:     gen,
		Seq:     seq,
		HeadGen: f.headGen.Load(),
		HeadSeq: f.headSeq.Load(),
		Synced:  f.Ready(),
		Epoch:   f.fenceEpoch.Load(),
		Client:  f.client.Status(),
	}
	if lag, ok := f.Lag(); ok {
		rep.Lag = &lag
	}
	return rep
}

// followerSink adapts the Follower to the replication client's apply
// surface. The client calls it from a single goroutine.
type followerSink struct {
	f *Follower
}

func (sk *followerSink) Position() (gen, seq uint64, have bool) {
	sys := sk.f.sys.Load()
	if sys == nil {
		return 0, 0, false
	}
	gen, seq = sys.ReplPosition()
	return gen, seq, true
}

func (sk *followerSink) BeginSnapshot(gen, seq uint64) (repl.SnapshotInstaller, error) {
	st, err := durable.OpenStore(sk.f.opts.Dir, durable.StoreOptions{Metrics: sk.f.metrics})
	if err != nil {
		return nil, err
	}
	imp, err := st.BeginImport(gen)
	if err != nil {
		return nil, err
	}
	return &followerInstall{f: sk.f, imp: imp, gen: gen, seq: seq}, nil
}

func (sk *followerSink) Apply(rec repl.Record) error {
	sys := sk.f.sys.Load()
	if sys == nil {
		return errors.New("eil: record before snapshot")
	}
	if err := sys.ApplyReplicated(rec.Seq, rec.Kind, rec.Payload); err != nil {
		return err
	}
	// Mirror the applied record into the local ship buffer: if this
	// replica is promoted, survivors behind it tail-resume from here.
	if sk.f.shipLog != nil {
		sk.f.shipLog.Append(repl.Entry{Seq: rec.Seq, Kind: rec.Kind, Payload: rec.Payload})
	}
	// A shipped record is also evidence of the primary's head.
	if rec.Seq > sk.f.headSeq.Load() {
		sk.f.headSeq.Store(rec.Seq)
	}
	sk.f.observeLag()
	return nil
}

// Epoch reports the replica's adopted failover term (repl.EpochSink).
func (sk *followerSink) Epoch() uint64 { return sk.f.fenceEpoch.Load() }

// AdoptEpoch durably records a newer failover term (repl.EpochSink). The
// client only calls it on positions the primary sent while our state is
// a verified prefix of its stream, so stamping the local history with
// the new term is sound; any standing fence mark is resolved by the same
// evidence.
func (sk *followerSink) AdoptEpoch(epoch uint64) error {
	f := sk.f
	if err := durable.WriteEpoch(nil, f.opts.Dir, durable.EpochRecord{Epoch: epoch}); err != nil {
		return err
	}
	f.fenceEpoch.Store(epoch)
	if sys := f.sys.Load(); sys != nil {
		sys.upMu.Lock()
		sys.fenceEpoch.Store(epoch)
		sys.fencedBy.Store(0)
		sys.prevEpoch = 0
		sys.sealSeq = 0
		sys.upMu.Unlock()
	}
	return nil
}

func (sk *followerSink) Rotate(gen, seq uint64) error {
	f := sk.f
	sys := f.sys.Load()
	if sys == nil {
		return errors.New("eil: rotate before snapshot")
	}
	// Strict position equality is the generation-handoff tripwire: the
	// primary emits the rotation after the records it folds in, in stream
	// order, so any mismatch means frames were skipped or reordered.
	if cur := sys.seq.Load(); seq != cur {
		return fmt.Errorf("eil: rotate at seq %d but replica at %d: frames skipped", seq, cur)
	}
	sys.upstreamGen.Store(gen)
	if f.shipLog != nil {
		f.shipLog.Append(repl.Entry{Seq: seq, Rotate: true, Gen: gen})
	}
	if gen > f.headGen.Load() {
		f.headGen.Store(gen)
	}
	// Checkpoint locally: the primary just proved every record through seq
	// is durable in a snapshot, so this position is the natural restart
	// point for the replica too. A failed local checkpoint degrades
	// restart durability, not serving — log and continue streaming.
	f.ckptMu.Lock()
	_, err := sys.Checkpoint(f.opts.Dir)
	f.ckptMu.Unlock()
	if err != nil {
		f.metrics.Counter("eil_repl_follower_checkpoint_errors_total").Inc()
		f.logf("eil: follower checkpoint at gen %d seq %d: %v", gen, seq, err)
	} else {
		f.logf("eil: follower checkpointed at gen %d seq %d", gen, seq)
	}
	return nil
}

func (sk *followerSink) Advance(gen, seq uint64) {
	f := sk.f
	if gen > f.headGen.Load() {
		f.headGen.Store(gen)
	}
	if seq > f.headSeq.Load() {
		f.headSeq.Store(seq)
	}
	f.sawHead.Store(true)
	f.observeLag()
}

func (f *Follower) observeLag() {
	if lag, ok := f.Lag(); ok {
		f.metrics.Gauge("eil_repl_lag_records", "follower", f.opts.Name).Set(float64(lag))
	}
}

// followerInstall lands a bootstrap snapshot: raw component bytes stream
// into an unpublished generation, Commit publishes it and swaps the live
// System wholesale.
type followerInstall struct {
	f        *Follower
	imp      *durable.Import
	gen, seq uint64
}

func (fi *followerInstall) Component(name string, size int64, r io.Reader) error {
	return fi.imp.Component(name, r)
}

func (fi *followerInstall) Commit() error {
	fi.f.ckptMu.Lock()
	defer fi.f.ckptMu.Unlock()
	if err := fi.imp.Commit(); err != nil {
		return err
	}
	// A journal left over from this directory's previous life (an
	// ex-primary being re-synced after a fence) must not replay on top of
	// the fresh install: its records belong to the dead lineage.
	if err := os.Remove(filepath.Join(fi.f.opts.Dir, durable.WALName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("eil: remove stale journal: %w", err)
	}
	sys, err := loadSystemWith(fi.f.opts.Dir, fi.f.opts.Access, fi.f.metrics)
	if err != nil {
		return fmt.Errorf("eil: load installed snapshot: %w", err)
	}
	// The shipped replpos component carries the primary's own view (its
	// upstream gen is 0); the replica's upstream is the shipped generation.
	sys.upstreamGen.Store(fi.gen)
	sys.seq.Store(fi.seq)
	sys.ckptSeq = fi.seq
	sys.Tracer = fi.f.opts.Tracer
	fi.f.sys.Store(sys)
	// The mirrored ship history predates the install; restart it at the
	// installed position.
	fi.f.shipLog = repl.NewLog(fi.gen, fi.seq, 0, 0)
	fi.f.sawHead.Store(true)
	if fi.seq > fi.f.headSeq.Load() {
		fi.f.headSeq.Store(fi.seq)
	}
	if fi.gen > fi.f.headGen.Load() {
		fi.f.headGen.Store(fi.gen)
	}
	fi.f.epoch.Add(1)
	return nil
}

func (fi *followerInstall) Abort() { fi.imp.Abort() }

// ---------------------------------------------------------------------------
// Follower read surface: the full web Backend plus the eilserver backend
// extras, all delegating to the current replica state.

func (f *Follower) backend() (*System, error) {
	sys := f.sys.Load()
	if sys == nil {
		return nil, ErrNotSynced
	}
	return sys, nil
}

func (f *Follower) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	sys, err := f.backend()
	if err != nil {
		return core.Result{}, err
	}
	return sys.SearchCtx(ctx, user, q)
}

func (f *Follower) SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error) {
	sys, err := f.backend()
	if err != nil {
		return core.Result{}, nil, err
	}
	return sys.SearchExplain(ctx, user, q)
}

func (f *Follower) KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit {
	sys, err := f.backend()
	if err != nil {
		return nil
	}
	return sys.KeywordSearchCtx(ctx, query, limit)
}

func (f *Follower) KeywordCount(query string) int {
	sys, err := f.backend()
	if err != nil {
		return 0
	}
	return sys.KeywordCount(query)
}

func (f *Follower) ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	sys, err := f.backend()
	if err != nil {
		return nil, err
	}
	return sys.ExploreCtx(ctx, user, dealID, q)
}

func (f *Follower) SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error) {
	sys, err := f.backend()
	if err != nil {
		return nil, err
	}
	return sys.SimilarDeals(user, dealID, k)
}

func (f *Follower) Deal(user access.User, dealID string) (synopsis.Deal, error) {
	sys, err := f.backend()
	if err != nil {
		return synopsis.Deal{}, err
	}
	return sys.Deal(user, dealID)
}

func (f *Follower) Registry() *obs.Registry { return f.metrics }

func (f *Follower) RequestTracer() *trace.Tracer { return f.opts.Tracer }

func (f *Follower) Log() *qlog.Log { return nil }

func (f *Follower) CoreEngine() *core.Engine {
	if sys := f.sys.Load(); sys != nil {
		return sys.Engine
	}
	return nil
}

// NewHealth builds the replica's readiness registry: replication sync and
// staleness are the critical checks (a stale or unsynced replica must
// drain), plus the index check against the current state.
func (f *Follower) NewHealth(opts HealthOptions) *health.Registry {
	reg := health.NewRegistry(f.metrics)
	reg.Register("repl", true, func() health.Result {
		sys := f.sys.Load()
		st := f.client.Status()
		if sys == nil {
			return health.Failedf("initial sync not complete (client %s)", st.State)
		}
		lag, ok := f.Lag()
		if !ok {
			return health.Degradedf("no primary heartbeat yet (client %s)", st.State)
		}
		if f.opts.MaxLag > 0 && lag > f.opts.MaxLag {
			return health.Failedf("lag %d records exceeds bound %d", lag, f.opts.MaxLag)
		}
		return health.OKf("client %s, lag %d records, %d applied", st.State, lag, st.Applied)
	})
	reg.Register("index", true, func() health.Result {
		sys := f.sys.Load()
		if sys == nil || sys.Index == nil {
			return health.Failedf("no index attached")
		}
		return health.OKf("%d docs, epoch %d", sys.Index.DocCount(), sys.Index.Generation())
	})
	reg.Register("snapshots", false, func() health.Result {
		sys := f.sys.Load()
		if sys == nil {
			return health.OKf("no state yet")
		}
		gen, at := sys.LastCheckpoint()
		if at.IsZero() {
			return health.OKf("gen %d", gen)
		}
		return health.OKf("gen %d, %s old", gen, time.Since(at).Round(time.Second))
	})
	return reg
}

// AppSampler folds the replica's one-screen numbers into runtime samples,
// delegating to the current state's sampler (the registry is shared, so
// QPS and p99 come from this process's HTTP middleware either way).
func (f *Follower) AppSampler(sloEng *slo.Engine) func(prev, cur *runtimetel.Sample) {
	return func(prev, cur *runtimetel.Sample) {
		sys := f.sys.Load()
		if sys == nil {
			if sloEng != nil {
				sloEng.Tick(cur.Time)
			}
			return
		}
		sys.AppSampler(sloEng)(prev, cur)
	}
}

// EnableWAL is refused: a follower's journal is the primary's. Its local
// durability comes from checkpoints at shipped rotation points.
func (f *Follower) EnableWAL(dir string, syncEvery int) error {
	return errors.New("eil: a follower does not journal; its durability follows the primary's checkpoints")
}

// CloseWAL is a no-op (see EnableWAL).
func (f *Follower) CloseWAL() error { return nil }

// ---------------------------------------------------------------------------
// Router node adapters for primaries.

// routedSystem adapts a System as the primary read node.
type routedSystem struct {
	*System
	name string
}

func (n routedSystem) Name() string        { return n.name }
func (n routedSystem) Ready() bool         { return true }
func (n routedSystem) Lag() (uint64, bool) { return 0, true }

// RouterNode adapts the system as the router's primary node.
func (s *System) RouterNode(name string) router.Node { return routedSystem{s, name} }

// routedCluster adapts a Cluster as the primary read node.
type routedCluster struct {
	*Cluster
	name string
}

func (n routedCluster) Name() string        { return n.name }
func (n routedCluster) Ready() bool         { return true }
func (n routedCluster) Lag() (uint64, bool) { return 0, true }

// RouterNode adapts the cluster as the router's primary node.
func (c *Cluster) RouterNode(name string) router.Node { return routedCluster{c, name} }

// ---------------------------------------------------------------------------
// ClusterFollower: one follower per shard behind a scatter-gather view.

// ClusterFollower replicates every shard of a cluster primary (one
// replication connection per shard, all to the same listener) and serves
// reads through a coordinator engine over the replicated shards —
// the same scatter-gather searches a primary cluster runs.
type ClusterFollower struct {
	followers []*Follower
	ctl       *access.Controller
	metrics   *obs.Registry
	tracer    *trace.Tracer
	name      string
	maxLag    uint64

	mu           sync.Mutex
	cached       *Cluster
	cachedEpochs []uint64
}

// StartClusterFollower starts one follower per shard under opts.Dir
// (shard-NNNN subdirectories, mirroring the primary's layout).
func StartClusterFollower(shards int, opts FollowerOptions) (*ClusterFollower, error) {
	if shards < 1 {
		return nil, fmt.Errorf("eil: shard count %d < 1", shards)
	}
	if opts.Dir == "" || opts.Addr == "" {
		return nil, errors.New("eil: follower requires Dir and Addr")
	}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("follower-%d", os.Getpid())
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eil: cluster follower: %w", err)
	}
	err := durable.WriteFileAtomic(nil, filepath.Join(opts.Dir, clusterManifestName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(clusterManifest{Format: clusterManifestFormat, Shards: shards})
	})
	if err != nil {
		return nil, fmt.Errorf("eil: cluster follower: %w", err)
	}
	cf := &ClusterFollower{
		ctl:     opts.Access,
		metrics: metrics,
		tracer:  opts.Tracer,
		name:    opts.Name,
		maxLag:  opts.MaxLag,
	}
	for i := 0; i < shards; i++ {
		so := opts
		so.Dir = shardDir(opts.Dir, i)
		so.Shard = shardKey(i)
		so.Name = fmt.Sprintf("%s/%s", opts.Name, shardKey(i))
		so.Metrics = metrics
		sub, err := StartFollower(so)
		if err != nil {
			for _, started := range cf.followers {
				_ = started.Close()
			}
			return nil, fmt.Errorf("eil: shard %d: %w", i, err)
		}
		cf.followers = append(cf.followers, sub)
	}
	return cf, nil
}

// Followers exposes the per-shard followers (status surfaces, tests).
func (cf *ClusterFollower) Followers() []*Follower { return cf.followers }

// Close stops every shard follower.
func (cf *ClusterFollower) Close() error {
	var first error
	for i, sub := range cf.followers {
		if err := sub.Close(); err != nil && first == nil {
			first = fmt.Errorf("eil: shard %d: %w", i, err)
		}
	}
	return first
}

// backend returns the scatter-gather view over the current shard states,
// rebuilt only when some shard's state has swapped since the last call.
func (cf *ClusterFollower) backend() (*Cluster, error) {
	epochs := make([]uint64, len(cf.followers))
	for i, sub := range cf.followers {
		if sub.sys.Load() == nil {
			return nil, ErrNotSynced
		}
		epochs[i] = sub.Epoch()
	}
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.cached != nil {
		same := true
		for i := range epochs {
			if epochs[i] != cf.cachedEpochs[i] {
				same = false
				break
			}
		}
		if same {
			return cf.cached, nil
		}
	}
	shards := make([]*System, len(cf.followers))
	for i, sub := range cf.followers {
		shards[i] = sub.sys.Load()
	}
	cf.cached = newCluster(shards, cf.ctl, cf.metrics, cf.tracer, false)
	cf.cachedEpochs = epochs
	return cf.cached, nil
}

// Name identifies the follower (router.Node).
func (cf *ClusterFollower) Name() string { return cf.name }

// Ready reports whether every shard holds servable state (router.Node).
func (cf *ClusterFollower) Ready() bool {
	for _, sub := range cf.followers {
		if !sub.Ready() {
			return false
		}
	}
	return true
}

// Lag reports the worst shard's lag (router.Node); ok only once every
// shard has heard its primary's head.
func (cf *ClusterFollower) Lag() (uint64, bool) {
	var worst uint64
	for _, sub := range cf.followers {
		lag, ok := sub.Lag()
		if !ok {
			return 0, false
		}
		if lag > worst {
			worst = lag
		}
	}
	return worst, true
}

// WaitSynced blocks until every shard is within maxLag of its primary.
func (cf *ClusterFollower) WaitSynced(ctx context.Context, maxLag uint64) error {
	for _, sub := range cf.followers {
		if err := sub.WaitSynced(ctx, maxLag); err != nil {
			return err
		}
	}
	return nil
}

// Status reports every shard follower's replication view.
func (cf *ClusterFollower) Status() []FollowerReport {
	out := make([]FollowerReport, 0, len(cf.followers))
	for _, sub := range cf.followers {
		out = append(out, sub.Status())
	}
	return out
}

func (cf *ClusterFollower) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	c, err := cf.backend()
	if err != nil {
		return core.Result{}, err
	}
	return c.SearchCtx(ctx, user, q)
}

func (cf *ClusterFollower) SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error) {
	c, err := cf.backend()
	if err != nil {
		return core.Result{}, nil, err
	}
	return c.SearchExplain(ctx, user, q)
}

func (cf *ClusterFollower) KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit {
	c, err := cf.backend()
	if err != nil {
		return nil
	}
	return c.KeywordSearchCtx(ctx, query, limit)
}

func (cf *ClusterFollower) KeywordCount(query string) int {
	c, err := cf.backend()
	if err != nil {
		return 0
	}
	return c.KeywordCount(query)
}

func (cf *ClusterFollower) ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	c, err := cf.backend()
	if err != nil {
		return nil, err
	}
	return c.ExploreCtx(ctx, user, dealID, q)
}

func (cf *ClusterFollower) SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error) {
	c, err := cf.backend()
	if err != nil {
		return nil, err
	}
	return c.SimilarDeals(user, dealID, k)
}

func (cf *ClusterFollower) Deal(user access.User, dealID string) (synopsis.Deal, error) {
	c, err := cf.backend()
	if err != nil {
		return synopsis.Deal{}, err
	}
	return c.Deal(user, dealID)
}

func (cf *ClusterFollower) Registry() *obs.Registry { return cf.metrics }

func (cf *ClusterFollower) RequestTracer() *trace.Tracer { return cf.tracer }

func (cf *ClusterFollower) Log() *qlog.Log { return nil }

func (cf *ClusterFollower) CoreEngine() *core.Engine {
	if c, err := cf.backend(); err == nil {
		return c.Engine
	}
	return nil
}

// NewHealth builds the cluster replica's readiness registry: one critical
// repl check per shard plus a per-shard index check.
func (cf *ClusterFollower) NewHealth(opts HealthOptions) *health.Registry {
	reg := health.NewRegistry(cf.metrics)
	for i, sub := range cf.followers {
		i, sub := i, sub
		reg.Register(fmt.Sprintf("repl:shard-%d", i), true, func() health.Result {
			sys := sub.sys.Load()
			st := sub.client.Status()
			if sys == nil {
				return health.Failedf("initial sync not complete (client %s)", st.State)
			}
			lag, ok := sub.Lag()
			if !ok {
				return health.Degradedf("no primary heartbeat yet (client %s)", st.State)
			}
			if cf.maxLag > 0 && lag > cf.maxLag {
				return health.Failedf("lag %d records exceeds bound %d", lag, cf.maxLag)
			}
			return health.OKf("client %s, lag %d records", st.State, lag)
		})
	}
	return reg
}

// AppSampler delegates to the scatter-gather view when available.
func (cf *ClusterFollower) AppSampler(sloEng *slo.Engine) func(prev, cur *runtimetel.Sample) {
	return func(prev, cur *runtimetel.Sample) {
		c, err := cf.backend()
		if err != nil {
			if sloEng != nil {
				sloEng.Tick(cur.Time)
			}
			return
		}
		c.AppSampler(sloEng)(prev, cur)
	}
}

// EnableWAL is refused (see Follower.EnableWAL).
func (cf *ClusterFollower) EnableWAL(dir string, syncEvery int) error {
	return errors.New("eil: a follower does not journal; its durability follows the primary's checkpoints")
}

// CloseWAL is a no-op.
func (cf *ClusterFollower) CloseWAL() error { return nil }
