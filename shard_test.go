package eil

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/synth"
)

// clusterFixture ingests one synthetic corpus into both a monolithic
// System and an n-shard Cluster, each with Workers:1 so analysis order is
// deterministic and the two builds see bit-identical per-document stats.
func clusterFixture(t *testing.T, n int) (*synth.Corpus, *System, *Cluster) {
	t.Helper()
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Ingest(corpus.Docs, Options{Directory: corpus.Directory, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := IngestSharded(corpus.Docs, n, Options{Directory: corpus.Directory, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, mono, cluster
}

// differentialQueries is the identity-suite query set: the paper's ten
// Table-2 towers, text predicates of every flavour, conjunctions, the
// planted person, and limit/docs-per-deal variants.
// table2Towers mirrors eval.Table2Queries (the eval package imports this
// one, so the list is restated here rather than imported).
var table2Towers = []string{
	"End User Services",
	"Storage Management Services",
	"Server Systems Management",
	"Network Services",
	"Disaster Recovery Services",
	"Data Center Services",
	"Application Management Services",
	"Security Services",
	"eBusiness Services",
	"Asset Management",
}

func differentialQueries() []core.FormQuery {
	qs := []core.FormQuery{}
	for _, tw := range table2Towers {
		qs = append(qs,
			core.FormQuery{Tower: tw},
			core.FormQuery{Tower: tw, AllWords: []string{"service"}},
		)
	}
	qs = append(qs,
		core.FormQuery{AllWords: []string{"replication"}},
		core.FormQuery{ExactPhrase: "cross tower TSA"},
		core.FormQuery{AnyWords: []string{"backup", "restore", "migration"}},
		core.FormQuery{AllWords: []string{"storage"}, NoneWords: []string{"tape"}},
		core.FormQuery{Tower: "Storage Management Services", AllWords: []string{"replication"}},
		core.FormQuery{PersonName: synth.PlantedPerson},
		core.FormQuery{Tower: "End User Services", Limit: 3},
		core.FormQuery{Tower: "Network Services", AllWords: []string{"router"}, DocsPerDeal: 2},
		core.FormQuery{Tower: "Data Center Services", ExactPhrase: "cross tower TSA"},
	)
	return qs
}

func sortedCopy(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

// assertSameResult compares everything rank-relevant: activity order,
// exact scores on both sides of the combination, access level, matched
// towers (as sets — within-deal tower order is a display concern), and
// each activity's document list. Explain strings are narrative and
// legitimately differ between the two engines.
func assertSameResult(t *testing.T, label string, mono, sharded core.Result) {
	t.Helper()
	if mono.UnscopedFallback != sharded.UnscopedFallback {
		t.Errorf("%s: UnscopedFallback: mono=%v sharded=%v", label, mono.UnscopedFallback, sharded.UnscopedFallback)
	}
	if sharded.Degraded {
		t.Errorf("%s: sharded result degraded with healthy shards: %v", label, sharded.DegradedCauses)
	}
	if len(mono.Activities) != len(sharded.Activities) {
		t.Fatalf("%s: activity count: mono=%d sharded=%d", label, len(mono.Activities), len(sharded.Activities))
	}
	for i := range mono.Activities {
		m, s := mono.Activities[i], sharded.Activities[i]
		if m.DealID != s.DealID {
			t.Fatalf("%s: rank %d: mono=%s sharded=%s", label, i, m.DealID, s.DealID)
		}
		if m.Score != s.Score || m.SynopsisScore != s.SynopsisScore || m.DocScore != s.DocScore {
			t.Errorf("%s: %s scores: mono=(%v,%v,%v) sharded=(%v,%v,%v)", label, m.DealID,
				m.Score, m.SynopsisScore, m.DocScore, s.Score, s.SynopsisScore, s.DocScore)
		}
		if m.Level != s.Level {
			t.Errorf("%s: %s level: mono=%v sharded=%v", label, m.DealID, m.Level, s.Level)
		}
		mt, st := sortedCopy(m.MatchedTowers), sortedCopy(s.MatchedTowers)
		if len(mt) != len(st) {
			t.Errorf("%s: %s towers: mono=%v sharded=%v", label, m.DealID, m.MatchedTowers, s.MatchedTowers)
		} else {
			for j := range mt {
				if mt[j] != st[j] {
					t.Errorf("%s: %s towers: mono=%v sharded=%v", label, m.DealID, m.MatchedTowers, s.MatchedTowers)
					break
				}
			}
		}
		if len(m.Docs) != len(s.Docs) {
			t.Errorf("%s: %s doc count: mono=%d sharded=%d", label, m.DealID, len(m.Docs), len(s.Docs))
			continue
		}
		for j := range m.Docs {
			if m.Docs[j].Path != s.Docs[j].Path || m.Docs[j].Score != s.Docs[j].Score {
				t.Errorf("%s: %s doc %d: mono=(%s,%v) sharded=(%s,%v)", label, m.DealID, j,
					m.Docs[j].Path, m.Docs[j].Score, s.Docs[j].Path, s.Docs[j].Score)
			}
		}
	}
}

// TestShardedSearchMatchesMonolith is the differential identity suite: a
// 3-shard scatter-gather search must produce rankings identical — deal
// order, combined and per-side scores, documents — to the single-shard
// engine over the full evaluation query set.
func TestShardedSearchMatchesMonolith(t *testing.T) {
	_, mono, cluster := clusterFixture(t, 3)
	nonEmpty := 0
	for _, q := range differentialQueries() {
		mres, merr := mono.Search(admin(), q)
		sres, serr := cluster.Search(admin(), q)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("%+v: error mismatch: mono=%v sharded=%v", q, merr, serr)
		}
		if merr != nil {
			continue
		}
		assertSameResult(t, q.Tower+"/"+q.ExactPhrase, mres, sres)
		if len(mres.Activities) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 5 {
		t.Fatalf("only %d queries returned activities; differential suite is vacuous", nonEmpty)
	}
}

// TestShardedSearchMatchesMonolithManyShards re-runs a slice of the suite
// at a shard count that guarantees some shards own few or zero matching
// deals, exercising the relevant-shard skip and merge edge cases.
func TestShardedSearchMatchesMonolithManyShards(t *testing.T) {
	_, mono, cluster := clusterFixture(t, 5)
	for _, q := range []core.FormQuery{
		{Tower: "Storage Management Services", AllWords: []string{"replication"}},
		{Tower: "End User Services"},
		{ExactPhrase: "cross tower TSA"},
		{PersonName: synth.PlantedPerson},
	} {
		mres, merr := mono.Search(admin(), q)
		sres, serr := cluster.Search(admin(), q)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("%+v: error mismatch: mono=%v sharded=%v", q, merr, serr)
		}
		if merr == nil {
			assertSameResult(t, q.Tower+"/"+q.ExactPhrase, mres, sres)
		}
	}
}

// TestShardedKeywordSearchMatchesMonolith checks the baseline keyword path:
// same hit set, same scores. Cross-shard merge breaks score ties by path
// while the monolith breaks them by internal doc id, so both sides are
// normalized to (score desc, path asc) before comparison, and limit 0
// avoids truncation at an ambiguous tie boundary.
func TestShardedKeywordSearchMatchesMonolith(t *testing.T) {
	_, mono, cluster := clusterFixture(t, 3)
	for _, q := range []string{
		"storage replication",
		`"cross tower TSA"`,
		"storage -tape",
		"stor*",
		"network router",
	} {
		mhs := mono.KeywordSearch(q, 0)
		shs := cluster.KeywordSearch(q, 0)
		sort.Slice(mhs, func(i, j int) bool {
			if mhs[i].Score != mhs[j].Score {
				return mhs[i].Score > mhs[j].Score
			}
			return mhs[i].Path < mhs[j].Path
		})
		sort.Slice(shs, func(i, j int) bool {
			if shs[i].Score != shs[j].Score {
				return shs[i].Score > shs[j].Score
			}
			return shs[i].Path < shs[j].Path
		})
		if len(mhs) != len(shs) {
			t.Fatalf("%q: hit count: mono=%d sharded=%d", q, len(mhs), len(shs))
		}
		for i := range mhs {
			if mhs[i].Path != shs[i].Path || mhs[i].Score != shs[i].Score || mhs[i].DealID != shs[i].DealID {
				t.Errorf("%q: hit %d: mono=(%s,%v) sharded=(%s,%v)", q, i, mhs[i].Path, mhs[i].Score, shs[i].Path, shs[i].Score)
			}
		}
		if mc, sc := mono.KeywordCount(q), cluster.KeywordCount(q); mc != sc {
			t.Errorf("%q: count: mono=%d sharded=%d", q, mc, sc)
		}
	}
}

// TestShardedExploreMatchesMonolith drills into one activity on its owning
// shard; cluster-global statistics must reproduce the monolith's scores.
func TestShardedExploreMatchesMonolith(t *testing.T) {
	_, mono, cluster := clusterFixture(t, 3)
	res, err := mono.Search(admin(), core.FormQuery{Tower: "Storage Management Services", AllWords: []string{"replication"}})
	if err != nil || len(res.Activities) == 0 {
		t.Fatalf("probe search: %v (%d activities)", err, len(res.Activities))
	}
	for _, act := range res.Activities {
		q := core.FormQuery{AllWords: []string{"replication"}}
		mh, merr := mono.Explore(admin(), act.DealID, q)
		sh, serr := cluster.Explore(admin(), act.DealID, q)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("%s: error mismatch: mono=%v sharded=%v", act.DealID, merr, serr)
		}
		if len(mh) != len(sh) {
			t.Fatalf("%s: explore count: mono=%d sharded=%d", act.DealID, len(mh), len(sh))
		}
		for i := range mh {
			if mh[i].Path != sh[i].Path || mh[i].Score != sh[i].Score {
				t.Errorf("%s: doc %d: mono=(%s,%v) sharded=(%s,%v)", act.DealID, i, mh[i].Path, mh[i].Score, sh[i].Path, sh[i].Score)
			}
		}
	}
}

// TestShardedSimilarDealsMatchesMonolith: tower-significance vectors are
// per-deal, so the scatter-merge must reproduce the monolithic ranking.
func TestShardedSimilarDealsMatchesMonolith(t *testing.T) {
	corpus, mono, cluster := clusterFixture(t, 3)
	checked := 0
	for dealID := range corpus.Truth {
		mh, merr := mono.SimilarDeals(admin(), dealID, 5)
		sh, serr := cluster.SimilarDeals(admin(), dealID, 5)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("%s: error mismatch: mono=%v sharded=%v", dealID, merr, serr)
		}
		if merr != nil {
			continue
		}
		if len(mh) != len(sh) {
			t.Fatalf("%s: similar count: mono=%d sharded=%d", dealID, len(mh), len(sh))
		}
		for i := range mh {
			if mh[i].DealID != sh[i].DealID || mh[i].Score != sh[i].Score {
				t.Errorf("%s: similar %d: mono=(%s,%v) sharded=(%s,%v)", dealID, i, mh[i].DealID, mh[i].Score, sh[i].DealID, sh[i].Score)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no deals produced a similarity ranking")
	}
}

// probeShard finds a tower query hit and returns the shard that owns it,
// so chaos tests can kill the shard that provably holds matching deals.
func probeShard(t *testing.T, mono *System, tower string, n int) (string, int) {
	t.Helper()
	res, err := mono.Search(admin(), core.FormQuery{Tower: tower})
	if err != nil || len(res.Activities) == 0 {
		t.Fatalf("probe %q: %v (%d activities)", tower, err, len(res.Activities))
	}
	dealID := res.Activities[0].DealID
	return dealID, core.ShardFor(dealID, n)
}

// TestShardedSearchDeadSIAPIShardDegrades: killing one document shard must
// degrade — not fail — the search. The dead shard's deals drop to the
// synopsis-plus-contacts tier (no documents); survivors keep theirs.
func TestShardedSearchDeadSIAPIShardDegrades(t *testing.T) {
	_, mono, cluster := clusterFixture(t, 3)
	const tower = "End User Services"
	deadDeal, dead := probeShard(t, mono, tower, 3)

	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	cluster.Engine.Shards[dead].Faults = inj

	res, err := cluster.Search(admin(), core.FormQuery{Tower: tower, AllWords: []string{"service"}})
	if err != nil {
		t.Fatalf("dead shard surfaced as hard failure: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded with a dead document shard")
	}
	found := false
	for _, c := range res.DegradedCauses {
		if c == core.BackendSIAPI {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded causes %v missing %q", res.DegradedCauses, core.BackendSIAPI)
	}
	if len(res.Activities) == 0 {
		t.Fatal("degraded search returned no activities at all")
	}
	sawDead, sawHealthyDocs := false, false
	for _, act := range res.Activities {
		if act.DealID == deadDeal {
			sawDead = true
			if len(act.Docs) != 0 || act.DocScore != 0 {
				t.Errorf("dead shard's deal %s still carries documents (%d docs, docScore %v)", act.DealID, len(act.Docs), act.DocScore)
			}
		}
		if core.ShardFor(act.DealID, 3) != dead && len(act.Docs) > 0 {
			sawHealthyDocs = true
		}
	}
	if !sawDead {
		t.Errorf("dead shard's deal %s vanished instead of degrading to the synopsis tier", deadDeal)
	}
	if !sawHealthyDocs {
		t.Log("no healthy-shard activity carried documents for this query; document-survival assertion skipped")
	}
}

// TestShardedSearchDeadSynopsisShardDegrades: killing one synopsis shard
// removes only its deals from the business context; the search degrades
// and the surviving shards' activities still serve.
func TestShardedSearchDeadSynopsisShardDegrades(t *testing.T) {
	_, mono, cluster := clusterFixture(t, 3)
	const tower = "End User Services"
	deadDeal, dead := probeShard(t, mono, tower, 3)

	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	cluster.Engine.Shards[dead].Faults = inj

	res, err := cluster.Search(admin(), core.FormQuery{Tower: tower})
	if err != nil {
		t.Fatalf("dead synopsis shard surfaced as hard failure: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded with a dead synopsis shard")
	}
	found := false
	for _, c := range res.DegradedCauses {
		if c == core.BackendSynopsis {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded causes %v missing %q", res.DegradedCauses, core.BackendSynopsis)
	}
	for _, act := range res.Activities {
		if act.DealID == deadDeal {
			t.Errorf("deal %s served from a dead synopsis shard", deadDeal)
		}
	}
}

// TestShardedSearchAllDocShardsDead: with every document shard dead, a
// text-only query has no serving tier left and must surface the outage,
// while a concept+text query still serves the synopsis tier.
func TestShardedSearchAllDocShardsDead(t *testing.T) {
	_, _, cluster := clusterFixture(t, 3)
	for i := range cluster.Engine.Shards {
		inj := fault.New(uint64(7 + i))
		inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
		cluster.Engine.Shards[i].Faults = inj
	}

	_, err := cluster.Search(admin(), core.FormQuery{AllWords: []string{"replication"}})
	if err == nil {
		t.Fatal("text-only query succeeded with every document shard dead")
	}
	if !core.IsUnavailable(err) {
		t.Fatalf("error %v is not an unavailability", err)
	}

	res, err := cluster.Search(admin(), core.FormQuery{Tower: "End User Services", AllWords: []string{"service"}})
	if err != nil {
		t.Fatalf("concept+text query failed instead of degrading: %v", err)
	}
	if !res.Degraded {
		t.Fatal("concept+text result not marked degraded")
	}
	if len(res.Activities) == 0 {
		t.Fatal("synopsis tier empty with healthy synopsis shards")
	}
	for _, act := range res.Activities {
		if len(act.Docs) != 0 {
			t.Errorf("deal %s carries documents with every document shard dead", act.DealID)
		}
	}
}

// TestShardedBreakerOpensAndHealthDegrades: sustained shard failure must
// open that shard's circuit (visible in ShardBreakerStates) and flip the
// cluster health registry to degraded — the satellite-2 acceptance.
func TestShardedBreakerOpensAndHealthDegrades(t *testing.T) {
	_, _, cluster := clusterFixture(t, 3)
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	cluster.Engine.Shards[1].Faults = inj

	for i := 0; i < 12; i++ {
		cluster.Search(admin(), core.FormQuery{Tower: "End User Services", AllWords: []string{"service"}})
	}
	states := cluster.Engine.ShardBreakerStates(core.BackendSIAPI)
	if states["shard-1"] == "closed" || states["shard-1"] == "" {
		t.Fatalf("shard-1 siapi breaker still %q after sustained failure (states %v)", states["shard-1"], states)
	}
	for name, st := range states {
		if name != "shard-1" && st != "closed" {
			t.Errorf("healthy shard %s breaker %q", name, st)
		}
	}

	rep := cluster.NewHealth(HealthOptions{}).Evaluate()
	if rep.Verdict != health.VerdictDegraded {
		t.Fatalf("cluster health = %q with an open shard breaker, want degraded (causes %v)", rep.Verdict, rep.Causes)
	}
}

// TestShardedConcurrentScatter runs concurrent scatter-gather searches
// against a cluster with one slow shard and one dead shard. Run under
// -race this proves the fan-out, per-shard memo, stats memo, and breaker
// paths are data-race free; semantically every query must either succeed
// (possibly degraded) or report a clean unavailability.
func TestShardedConcurrentScatter(t *testing.T) {
	_, _, cluster := clusterFixture(t, 3)

	slow := fault.New(7)
	slow.Add(&fault.Rule{Site: "*", Mode: fault.ModeSlow, Latency: 2 * time.Millisecond})
	cluster.Engine.Shards[0].Faults = slow
	deadInj := fault.New(11)
	deadInj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	cluster.Engine.Shards[2].Faults = deadInj

	queries := differentialQueries()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(w*6+i)%len(queries)]
				if _, err := cluster.SearchCtx(context.Background(), admin(), q); err != nil && !core.IsUnavailable(err) {
					errc <- err
					return
				}
				cluster.KeywordSearchCtx(context.Background(), "storage replication", 10)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("concurrent search: %v", err)
	}
}

// TestClusterSaveLoadRoundTrip: per-shard snapshot stores plus the cluster
// manifest must reload into an equivalent cluster.
func TestClusterSaveLoadRoundTrip(t *testing.T) {
	_, _, cluster := clusterFixture(t, 3)
	dir := t.TempDir()
	if err := cluster.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !IsCluster(dir) {
		t.Fatal("IsCluster=false on a saved cluster directory")
	}
	loaded, err := LoadCluster(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Shards) != 3 {
		t.Fatalf("loaded %d shards, want 3", len(loaded.Shards))
	}
	for _, q := range []core.FormQuery{
		{Tower: "Storage Management Services", AllWords: []string{"replication"}},
		{ExactPhrase: "cross tower TSA"},
	} {
		orig, oerr := cluster.Search(admin(), q)
		got, gerr := loaded.Search(admin(), q)
		if (oerr == nil) != (gerr == nil) {
			t.Fatalf("%+v: error mismatch after reload: %v vs %v", q, oerr, gerr)
		}
		if oerr == nil {
			assertSameResult(t, "reload:"+q.Tower+q.ExactPhrase, orig, got)
		}
	}
	if oc, lc := cluster.KeywordCount("storage"), loaded.KeywordCount("storage"); oc != lc {
		t.Fatalf("keyword count after reload: %d vs %d", oc, lc)
	}
}

// TestClusterUpdateRouting: cross-shard batches split by deal hash; a new
// deal lands on exactly one shard and removal empties it everywhere.
func TestClusterUpdateRouting(t *testing.T) {
	_, _, cluster := clusterFixture(t, 3)
	const dealID = "DEAL SHARDED NEW"
	docs := newDealDocs(t, dealID)
	if err := cluster.AddDocuments(docs); err != nil {
		t.Fatal(err)
	}
	owner := core.ShardFor(dealID, 3)
	for i, s := range cluster.Shards {
		if _, err := s.Synopses.Get(dealID); (err == nil) != (i == owner) {
			t.Fatalf("shard %d Get(%s) err=%v; owner is %d", i, dealID, err, owner)
		}
	}
	if _, err := cluster.Deal(admin(), dealID); err != nil {
		t.Fatalf("cluster Deal after add: %v", err)
	}
	res, err := cluster.Search(admin(), core.FormQuery{ExactPhrase: "cross tower TSA"})
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, act := range res.Activities {
		if act.DealID == dealID {
			seen = true
		}
	}
	if !seen {
		t.Fatal("new deal not searchable after cluster AddDocuments")
	}

	if err := cluster.RemoveDeal(dealID); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Deal(admin(), dealID); err == nil {
		t.Fatal("deal still served after cluster RemoveDeal")
	}
	res, err = cluster.Search(admin(), core.FormQuery{ExactPhrase: "cross tower TSA"})
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range res.Activities {
		if act.DealID == dealID {
			t.Fatal("removed deal still in search results")
		}
	}
}

// TestShardForStable pins the routing hash: rebalancing on a hash change
// would orphan every shard's data, so the assignment is part of the
// on-disk format.
func TestShardForStable(t *testing.T) {
	for _, id := range []string{"", "DEAL A", "DEAL B", "DEAL C"} {
		i := core.ShardFor(id, 3)
		if i < 0 || i > 2 {
			t.Fatalf("ShardFor(%q,3)=%d out of range", id, i)
		}
		if j := core.ShardFor(id, 3); j != i {
			t.Fatalf("ShardFor(%q,3) unstable: %d then %d", id, i, j)
		}
	}
	if core.ShardFor("anything", 1) != 0 {
		t.Error("single shard must own everything")
	}
}

// TestShardedStreamingIngestMatchesBatch: IngestShardedFrom pulling from
// the synth streaming generator must build the same cluster as the batch
// path over Generate's slice — same rankings, same keyword counts — while
// never holding the corpus as a slice.
func TestShardedStreamingIngestMatchesBatch(t *testing.T) {
	cfg := synth.SmallConfig()
	corpus, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := IngestSharded(corpus.Docs, 3, Options{Directory: corpus.Directory, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream := synth.NewStream(cfg)
	streamed, err := IngestShardedFrom(stream, 3, Options{Directory: stream.Directory(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	user := admin()
	for _, q := range differentialQueries()[:8] {
		rb, err := batch.Search(user, q)
		if err != nil {
			t.Fatalf("batch search: %v", err)
		}
		rs, err := streamed.Search(user, q)
		if err != nil {
			t.Fatalf("streamed search: %v", err)
		}
		assertSameResult(t, "stream-vs-batch", rb, rs)
	}
	for _, kw := range []string{"replication", "cross tower TSA", "backup"} {
		if b, s := batch.KeywordCount(kw), streamed.KeywordCount(kw); b != s {
			t.Errorf("keyword %q count: batch=%d streamed=%d", kw, b, s)
		}
	}
}
