package eil

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/qlog"
	"repro/internal/synth"
)

func testSystem(t *testing.T, opts Options) (*synth.Corpus, *System) {
	t.Helper()
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if opts.Directory == nil {
		opts.Directory = corpus.Directory
	}
	sys, err := Ingest(corpus.Docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return corpus, sys
}

func admin() access.User {
	return access.User{ID: "a", Name: "Admin", Roles: []access.Role{access.RoleAdmin}}
}

func TestIngestPopulatesEverything(t *testing.T) {
	corpus, sys := testSystem(t, Options{})
	if sys.Index.DocCount() != len(corpus.Docs) {
		t.Fatalf("indexed %d of %d docs", sys.Index.DocCount(), len(corpus.Docs))
	}
	if sys.Stats.Failed != 0 {
		t.Fatalf("failed docs: %+v", sys.Stats.Errors)
	}
	ids, err := sys.Synopses.DealIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(corpus.DealIDs) {
		t.Fatalf("synopses for %d of %d deals", len(ids), len(corpus.DealIDs))
	}
}

func TestSearchEndToEnd(t *testing.T) {
	corpus, sys := testSystem(t, Options{})
	res, err := sys.Search(admin(), core.FormQuery{Tower: "Storage Management Services"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) == 0 {
		t.Fatal("no activities")
	}
	// Every hit truly has the tower (concept precision on clean evidence).
	for _, a := range res.Activities {
		truth := corpus.Truth[a.DealID]
		if truth == nil || !truth.HasTower("Storage Management Services") {
			t.Fatalf("false activity %s", a.DealID)
		}
	}
}

func TestKeywordBaseline(t *testing.T) {
	_, sys := testSystem(t, Options{})
	hits := sys.KeywordSearch(`"cross tower TSA"`, 10)
	if len(hits) == 0 {
		t.Fatal("keyword baseline found nothing")
	}
	if n := sys.KeywordCount(`"cross tower TSA"`); n < len(hits) {
		t.Fatalf("count %d < hits %d", n, len(hits))
	}
	if sys.KeywordCount("zzzznonexistent") != 0 {
		t.Fatal("ghost keyword matched")
	}
}

func TestDealAccessControl(t *testing.T) {
	ctl := access.NewController()
	corpus, sys := testSystem(t, Options{Access: ctl})
	dealID := corpus.DealIDs[0]
	sales := access.User{ID: "s", Roles: []access.Role{access.RoleSales}}
	if _, err := sys.Deal(sales, dealID); err != nil {
		t.Fatalf("sales denied synopsis: %v", err)
	}
	nobody := access.User{ID: "n"}
	if _, err := sys.Deal(nobody, dealID); err == nil {
		t.Fatal("roleless user saw a synopsis")
	}
}

func TestIngestFromFS(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := crawler.WriteTree(root, corpus.Docs, corpus.Raw); err != nil {
		t.Fatal(err)
	}
	reader, err := crawler.NewFSReader(root)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := IngestFrom(reader, Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Index.DocCount() != len(corpus.Docs) {
		t.Fatalf("fs ingest: %d of %d docs", sys.Index.DocCount(), len(corpus.Docs))
	}
	res, err := sys.Search(admin(), core.FormQuery{PersonName: synth.PlantedPerson})
	if err != nil || len(res.Activities) == 0 {
		t.Fatalf("planted person lost through fs round trip: %v, %v", res.Activities, err)
	}
}

func TestBlobOptionDegrades(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Ingest(corpus.Docs, Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Ingest(corpus.Docs, Options{Directory: corpus.Directory, BlobParsing: true})
	if err != nil {
		t.Fatal(err)
	}
	count := func(s *System) int {
		total := 0
		ids, _ := s.Synopses.DealIDs()
		for _, id := range ids {
			d, err := s.Synopses.Get(id)
			if err == nil {
				total += len(d.People)
			}
		}
		return total
	}
	if count(blob) >= count(full) {
		t.Fatalf("blob parsing did not lose contacts: %d vs %d", count(blob), count(full))
	}
}

func TestWorkersOption(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	one, err := Ingest(corpus.Docs, Options{Directory: corpus.Directory, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Ingest(corpus.Docs, Options{Directory: corpus.Directory, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Parallelism must not change results: compare synopses.
	idsA, _ := one.Synopses.DealIDs()
	idsB, _ := many.Synopses.DealIDs()
	if len(idsA) != len(idsB) {
		t.Fatalf("deal counts differ: %d vs %d", len(idsA), len(idsB))
	}
	for i := range idsA {
		a, _ := one.Synopses.Get(idsA[i])
		b, _ := many.Synopses.Get(idsA[i])
		if len(a.People) != len(b.People) || len(a.Towers) != len(b.Towers) {
			t.Fatalf("deal %s differs under parallelism: %d/%d people, %d/%d towers",
				idsA[i], len(a.People), len(b.People), len(a.Towers), len(b.Towers))
		}
	}
}

func TestQueryLogRecords(t *testing.T) {
	_, sys := testSystem(t, Options{})
	sys.QueryLog = qlog.New(32)
	if _, err := sys.Search(admin(), core.FormQuery{Tower: "End User Services"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Search(admin(), core.FormQuery{AllWords: []string{"replication"}}); err != nil {
		t.Fatal(err)
	}
	sys.KeywordSearch("cross tower", 5)
	s := sys.QueryLog.Summarize(5)
	if s.Total != 3 || s.Keyword != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Fallbacks != 1 {
		t.Fatalf("fallback count = %d", s.Fallbacks)
	}
	if len(s.TopConcepts) == 0 || s.TopConcepts[0].Concept != "End User Services" {
		t.Fatalf("top concepts = %+v", s.TopConcepts)
	}
	entries := sys.QueryLog.Entries()
	if entries[0].Summary != "tower=End User Services" {
		t.Fatalf("summary rendering = %q", entries[0].Summary)
	}
}

func TestDedupOption(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if corpus.PlantedDuplicates == 0 {
		t.Skip("no duplicates planted at this seed/size")
	}
	plain, err := Ingest(corpus.Docs, Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	deduped, err := Ingest(corpus.Docs, Options{Directory: corpus.Directory, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deduped.Duplicates) < corpus.PlantedDuplicates {
		t.Fatalf("dedup dropped %d, generator planted %d", len(deduped.Duplicates), corpus.PlantedDuplicates)
	}
	if deduped.Index.DocCount() != plain.Index.DocCount()-len(deduped.Duplicates) {
		t.Fatalf("doc counts: %d plain, %d deduped, %d dropped",
			plain.Index.DocCount(), deduped.Index.DocCount(), len(deduped.Duplicates))
	}
	// Every dropped path is a planted copy or a legitimate near-duplicate;
	// all planted copies must be among them.
	dropped := map[string]bool{}
	for _, p := range deduped.Duplicates {
		dropped[p] = true
	}
	for path := range corpus.Raw {
		if strings.Contains(path, "copy-of-") && !dropped[path] {
			t.Fatalf("planted copy survived: %s", path)
		}
	}
}
