package eil_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§2 and §4) against the paper-scale synthetic corpus
// (23 deals, ~15k documents). Each benchmark measures the steady-state cost
// of its experiment's queries and, on the first iteration, reports the
// paper-vs-measured numbers through b.Log so `go test -bench . -v` doubles
// as the reproduction record (the eileval command prints the same tables).
//
//	Table 2   -> BenchmarkTable2
//	Figure 4  -> BenchmarkFigure4
//	Figure 5  -> BenchmarkFigure5
//	Figure 6  -> BenchmarkFigure6
//	Figure 7  -> BenchmarkMetaQuery2 (the keyword funnel + EIL people search)
//	MQ3       -> BenchmarkMetaQuery3
//	Figures 8-9 -> BenchmarkMetaQuery4
//	§2 study  -> BenchmarkEmailStudy
//	§4 rollout -> BenchmarkIngestScale
//
// Ablations (DESIGN.md §5): BenchmarkAblationScoping, ...Ranking,
// ...Directory, ...Structure, ...CPEThreshold.
import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/siapi"
	"repro/internal/studies"
	"repro/internal/synth"
	"repro/internal/textproc"
)

// benchFixture shares one paper-scale ingest across all benchmarks.
func benchFixture(b *testing.B) *eval.Fixture {
	b.Helper()
	f, err := eval.EvalFixture()
	if err != nil {
		b.Fatal(err)
	}
	return f
}

var logOnce sync.Map

// logFirst emits msg once per benchmark name, so repeated iterations and
// -count runs stay readable.
func logFirst(b *testing.B, format string, args ...any) {
	if _, done := logOnce.LoadOrStore(b.Name(), true); !done {
		b.Logf(format, args...)
	}
}

func BenchmarkTable2(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Table2(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			eilWins, kwWins, ties := res.WinsLosses()
			var lines string
			for qi, row := range res.Rows {
				lines += fmt.Sprintf("  Q%-2d %-32s EIL %s | KW %s\n", qi+1, row.Query, row.EIL, row.KW)
			}
			logFirst(b, "Table 2 (paper: EIL wins F on 8/10, KW recall 1.0 on 8/10):\n%s  EIL wins %d, KW wins %d, ties %d", lines, eilWins, kwWins, ties)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eval.Fig4(f)
		if i == 0 {
			logFirst(b, "Figure 4 (paper: 261 docs -> 1132 with subtypes, 4.3x): %d -> %d (%.1fx)",
				r.CanonicalDocs, r.ExpandedDocs, r.Expansion)
		}
		b.ReportMetric(float64(r.ExpandedDocs), "docs")
	}
}

func BenchmarkFigure5(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deals, err := eval.Fig5(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			correct := 0
			for _, d := range deals {
				if d.Correct {
					correct++
				}
			}
			logFirst(b, "Figure 5 (EIL deal list for EUS): %d deals, %d truly in scope, towers significance-ordered",
				len(deals), correct)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deal, err := eval.Fig6(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "Figure 6 (synopsis of top EUS deal %s): customer=%s industry=%s consultant=%s term=%s/%dmo tcv=%s intl=%v, %d towers, %d contacts",
				deal.Overview.DealID, deal.Overview.Customer, deal.Overview.Industry,
				deal.Overview.Consultant, deal.Overview.TermStart, deal.Overview.TermMonths,
				deal.Overview.TCVBand, deal.Overview.International, len(deal.Towers), len(deal.People))
		}
	}
}

func BenchmarkMetaQuery2(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.MQ2(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "Meta-query 2 funnel (paper: 0 -> 4 -> 97 docs): %d -> %d -> %d; EIL: deal %v, %d contacts, CSEs %v",
				r.KWStep1Docs, r.KWStep2Docs, r.KWStep3Docs, r.EILDeals, len(r.People), r.CSEs)
		}
	}
}

func BenchmarkMetaQuery3(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.MQ3(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "Meta-query 3 (paper: 149 keyword docs, mostly empty fields): %d keyword docs, %d with values; EIL returns %d contacts directly",
				r.KWDocs, r.ValueDocs, len(r.EILContacts))
		}
	}
}

func BenchmarkMetaQuery4(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.MQ4(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "Meta-query 4 (Figures 8-9, activities first): %d activities, planted deal found=%v",
				len(r.Activities), r.PlantedFound)
		}
	}
}

func BenchmarkEmailStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := studies.Run(2008)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "§2 study (paper: MQ1 38%%, MQ2 17%%, MQ3 36%%, MQ4 29%%, social 63/120): MQ1 %.0f%%, MQ2 %.0f%%, MQ3 %.0f%%, MQ4 %.0f%%, social %d/120 (categorizer acc %.2f, NB acc %.2f)",
				r.Percent(studies.MQ1), r.Percent(studies.MQ2), r.Percent(studies.MQ3),
				r.Percent(studies.MQ4), r.Measured[studies.Social], r.Accuracy, r.NBAccuracy)
		}
	}
}

// BenchmarkIngestScale measures offline-pipeline throughput on a reduced
// production profile (the paper reports >500k docs from ~1000 engagements
// in rollout; this profile keeps bench time sane while scaling the same
// code path — pass -benchtime to push further).
func BenchmarkIngestScale(b *testing.B) {
	cfg := synth.Config{Seed: 42, Deals: 50, NoiseDocsPerDeal: 100}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "§4 rollout scale profile: %d deals, %d docs ingested, %d index terms",
				len(corpus.DealIDs), sys.Index.DocCount(), sys.Index.TermCount())
		}
		b.ReportMetric(float64(sys.Index.DocCount()), "docs/ingest")
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func BenchmarkAblationScoping(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationScoping(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "scoping ablation: scoped search considered %d docs vs %d unscoped (same results: %v)",
				r.ScopedDocsConsidered, r.UnscopedDocsConsidered, r.SameActivitySet)
		}
	}
}

func BenchmarkAblationRanking(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationRanking(f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "ranking ablation (rank of planted deal among %d): combined #%d, synopsis-only #%d, doc-only #%d",
				r.Activities, r.CombinedRank, r.SynopsisRank, r.DocRank)
		}
	}
}

func BenchmarkAblationDirectory(b *testing.B) {
	cfg := synth.SmallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationDirectory(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "directory ablation: phone completeness %.2f with enrichment vs %.2f without; %.2f validated (%d contacts)",
				r.WithPhoneRate, r.WithoutPhoneRate, r.ValidatedRate, r.Contacts)
		}
	}
}

func BenchmarkAblationStructure(b *testing.B) {
	cfg := synth.SmallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationStructure(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "structure ablation (§3.3): roster recall %.2f structured vs %.2f blob",
				r.StructuredRecall, r.BlobRecall)
		}
	}
}

func BenchmarkAblationEntity(b *testing.B) {
	cfg := synth.SmallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationEntity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFirst(b, "entity-vs-conventions ablation (§3.2.1): conventions P=%.2f R=%.2f vs entity+cooccurrence P=%.2f R=%.2f",
				r.ConventionPrecision, r.ConventionRecall, r.EntityPrecision, r.EntityRecall)
		}
	}
}

func BenchmarkAblationCPEThreshold(b *testing.B) {
	cfg := synth.SmallConfig()
	thresholds := []float64{0.5, 1.0, 2.0, 4.0, 8.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := eval.AblationCPEThreshold(cfg, thresholds)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var lines string
			for _, p := range points {
				lines += fmt.Sprintf("  threshold %.1f: P=%.2f R=%.2f F=%.2f\n",
					p.MinScopeWeight, p.MeanPrecision, p.MeanRecall, p.MeanF)
			}
			logFirst(b, "CPE threshold sweep (§3.4):\n%s", lines)
		}
	}
}

// BenchmarkSearchLatency measures the online query path alone (concept +
// phrase, the Figure 8 query) at paper scale.
func BenchmarkSearchLatency(b *testing.B) {
	f := benchFixture(b)
	q := core.FormQuery{Tower: "Storage Management Services", ExactPhrase: "data replication"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Sys.Search(f.User(), q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeywordLatency measures the baseline search-box path.
func BenchmarkKeywordLatency(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Sys.KeywordSearch(`"data replication" storage`, 20)
	}
}

// --- PR 2 performance benchmarks (index hot paths) ---

// BenchmarkIndexAdd measures single-document ingestion into the index —
// tokenization plus the merge critical section.
func BenchmarkIndexAdd(b *testing.B) {
	ix := index.New(textproc.DefaultAnalyzer)
	body := "storage management services with data replication between sites " +
		"and a transition plan covering help desk, desktop, and network towers"
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := ix.Add(index.Document{
			ExtID: fmt.Sprintf("bench/doc-%d", i),
			Fields: []index.Field{
				{Name: "title", Text: "Technical Solution", Weight: 2},
				{Name: "body", Text: body},
				{Name: "tower", Text: "Storage Management Services", Keyword: true},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexAddBatch is BenchmarkIndexAdd through the parallel segment
// builder, the path the ingest pipeline uses.
func BenchmarkIndexAddBatch(b *testing.B) {
	body := "storage management services with data replication between sites " +
		"and a transition plan covering help desk, desktop, and network towers"
	const batch = 256
	docs := make([]index.Document, batch)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range docs {
			docs[j] = index.Document{
				ExtID: fmt.Sprintf("bench/%d-%d", i, j),
				Fields: []index.Field{
					{Name: "title", Text: "Technical Solution", Weight: 2},
					{Name: "body", Text: body},
				},
			}
		}
		ix := index.New(textproc.DefaultAnalyzer)
		if _, err := ix.AddBatch(docs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batch, "docs/op")
}

// BenchmarkSearchTopK measures the bounded top-k query path against the
// paper-scale index, bypassing the result cache.
func BenchmarkSearchTopK(b *testing.B) {
	f := benchFixture(b)
	q := f.Sys.SIAPI.Compile(siapi.ParseKeywords(`"data replication" storage migration`))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Sys.Index.Search(q, 10)
	}
}

// BenchmarkSearchCached measures the repeat-query path: after the first
// iteration every search is served from the epoch-invalidated LRU.
func BenchmarkSearchCached(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Sys.KeywordSearch(`"data replication" storage`, 20)
	}
}
